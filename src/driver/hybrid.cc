#include "src/driver/hybrid.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <span>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "src/i2c/codes.h"
#include "src/i2c/stack.h"

namespace efeu::driver {

namespace {

// Host-time source for the vm-host cost counter. One VM slice per boundary
// pump is tens of nanoseconds, so the timer must be cheap relative to the
// quantity it measures: on x86 rdtsc costs about half a steady_clock::now()
// pair. Ticks convert to seconds through a once-per-process calibration
// against steady_clock (invariant TSC keeps the rate stable).
#if defined(__x86_64__) || defined(__i386__)
uint64_t HostTicks() { return __rdtsc(); }

double TicksPerSecond() {
  static const double rate = [] {
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t tick_start = HostTicks();
    // 2 ms keeps the calibration error well under 1% and is paid once per
    // process, outside any timed region.
    while (std::chrono::steady_clock::now() - wall_start < std::chrono::milliseconds(2)) {
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    return static_cast<double>(HostTicks() - tick_start) / seconds;
  }();
  return rate;
}
#else
uint64_t HostTicks() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

double TicksPerSecond() { return 1e9; }
#endif

// Smallest observable cost of an empty HostTicks() pair: the timer latency
// that lands inside every timed interval. Calibrated once per process; the
// minimum over many trials is interference-free, so subtracting it never
// over-corrects.
uint64_t TimerBias() {
  static const uint64_t bias = [] {
    uint64_t best = ~uint64_t{0};
    for (int i = 0; i < 4096; ++i) {
      const uint64_t start = HostTicks();
      const uint64_t stop = HostTicks();
      best = std::min(best, stop - start);
    }
    return best;
  }();
  return bias;
}

// Controller layers, top to bottom.
const char* kLayers[] = {"CEepDriver", "CTransaction", "CByte", "CSymbol"};

// Index of the topmost hardware layer in kLayers; 4 = none (Electrical).
int FirstHardwareLayer(SplitPoint split) {
  switch (split) {
    case SplitPoint::kEepDriver:
      return 0;
    case SplitPoint::kTransaction:
      return 1;
    case SplitPoint::kByte:
      return 2;
    case SplitPoint::kSymbol:
      return 3;
    case SplitPoint::kElectrical:
      return 4;
  }
  return 4;
}

}  // namespace

const char* SplitPointName(SplitPoint split) {
  switch (split) {
    case SplitPoint::kElectrical:
      return "Electrical";
    case SplitPoint::kSymbol:
      return "Symbol";
    case SplitPoint::kByte:
      return "Byte";
    case SplitPoint::kTransaction:
      return "Transaction";
    case SplitPoint::kEepDriver:
      return "EepDriver";
  }
  return "?";
}

std::string FormatExecCounters(const DriverMetrics& metrics) {
  std::string out;
  auto field = [&out](const char* name, uint64_t value) {
    if (!out.empty()) {
      out += ' ';
    }
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("instr_retired", metrics.instructions_retired);
  field("mmio_bursts", metrics.mmio_bursts);
  field("irqs_coalesced", metrics.irqs_coalesced);
  field("irqs", metrics.irq_count);
  char host[48];
  std::snprintf(host, sizeof(host), " vm_host_ms=%.3f", metrics.vm_host_seconds * 1e3);
  out += host;
  return out;
}

HybridDriver::HybridDriver(const HybridConfig& config)
    : config_(config), rtl_(config.timing.clock_ns) {
  if (config_.shared_compilation != nullptr) {
    compilation_ = config_.shared_compilation;
  } else {
    DiagnosticEngine diag;
    compilation_ = i2c::CompileControllerStack(diag);
  }
  assert(compilation_ != nullptr && "controller stack failed to compile");
  const esi::SystemInfo& info = compilation_->system();

  // ---- Bus, topology, devices, adapter --------------------------------
  adapter_ = std::make_unique<sim::BusAdapter>(&bus_, config_.timing.half_cycle_ticks,
                                               !config_.ablate_fixed_hold_adapter);
  rtl_.AddComponent(adapter_.get());
  // Devices hang off the controller's bus directly, or off one mux channel
  // when the mux topology is enabled.
  sim::I2cBus* device_bus = &bus_;
  if (config_.mux_topology.enabled) {
    std::vector<sim::I2cBus*> channels;
    for (int c = 0; c < config_.mux_topology.mux.channels; ++c) {
      downstream_buses_.push_back(std::make_unique<sim::I2cBus>());
      channels.push_back(downstream_buses_.back().get());
    }
    mux_ = std::make_unique<sim::I2cMux>(&bus_, channels, config_.mux_topology.mux);
    rtl_.AddComponent(mux_.get());
    device_bus = downstream_buses_[static_cast<size_t>(
        config_.mux_topology.device_channel)].get();
  }
  if (config_.enable_second_master) {
    sim::SecondMasterConfig master_config = config_.second_master;
    master_config.clock_ns = config_.timing.clock_ns;
    second_master_ = std::make_unique<sim::SecondMaster>(&bus_, master_config);
    rtl_.AddComponent(second_master_.get());
  }
  sim::EepromConfig eeprom_config = config_.eeprom;
  eeprom_config.clock_ns = config_.timing.clock_ns;
  eeprom_ = std::make_unique<sim::Eeprom24aa512>(device_bus, eeprom_config);
  rtl_.AddComponent(eeprom_.get());
  for (const sim::EepromConfig& extra : config_.extra_eeproms) {
    sim::EepromConfig cfg = extra;
    cfg.clock_ns = config_.timing.clock_ns;
    extra_eeproms_.push_back(std::make_unique<sim::Eeprom24aa512>(device_bus, cfg));
    rtl_.AddComponent(extra_eeproms_.back().get());
  }
  for (const sim::MfdConfig& mfd_config : config_.mfd_devices) {
    mfds_.push_back(std::make_unique<sim::MfdRegFileDevice>(device_bus, mfd_config));
    rtl_.AddComponent(mfds_.back().get());
  }
  if (config_.capture_waveform) {
    bus_.EnableCapture(true);
    rtl_.SetPostTickHook([this](double now) { bus_.Capture(now); });
  }
  // Fault injection: the driver owns the live plan; the adapter injects the
  // electrical faults, the primary EEPROM the device-side ones, the topology
  // components the fabric ones. The recovery driver releases both lines
  // until a bus-recovery sequence runs, so an inactive plan leaves the bus
  // byte-identical to the ideal one.
  fault_plan_ = config_.fault_plan;
  adapter_->SetFaultPlan(&fault_plan_);
  eeprom_->SetFaultPlan(&fault_plan_);
  if (mux_ != nullptr) {
    mux_->SetFaultPlan(&fault_plan_);
  }
  if (second_master_ != nullptr) {
    second_master_->SetFaultPlan(&fault_plan_);
  }
  for (const std::unique_ptr<sim::MfdRegFileDevice>& mfd : mfds_) {
    mfd->SetFaultPlan(&fault_plan_);
  }
  recovery_driver_id_ = bus_.AddDriver();
  last_status_ = i2c::kCeResOk;

  // ---- Boundary channels -------------------------------------------------
  int first_hw = FirstHardwareLayer(config_.split);
  std::string upper = first_hw == 0 ? "CWorld" : kLayers[first_hw - 1];
  std::string lower = first_hw == 4 ? "Electrical" : kLayers[first_hw];
  std::string hw_top = first_hw == 4 ? "" : kLayers[first_hw];
  const esi::ChannelInfo* down_channel =
      first_hw == 4 ? info.FindChannel("CSymbol", "Electrical") : info.FindChannel(upper, lower);
  const esi::ChannelInfo* up_channel =
      first_hw == 4 ? info.FindChannel("Electrical", "CSymbol") : info.FindChannel(lower, upper);
  assert(down_channel != nullptr && up_channel != nullptr);
  down_words_ = down_channel->flat_size;
  up_words_ = up_channel->flat_size;

  regfile_ = std::make_unique<rtl::MmioRegfile>(down_words_, up_words_);
  rtl::HsWire* down_wire = rtl_.CreateWire(down_words_);
  rtl::HsWire* up_wire = rtl_.CreateWire(up_words_);
  regfile_->BindDown(down_wire);
  regfile_->BindUp(up_wire);
  regfile_->set_disable_auto_reset(config_.ablate_no_auto_reset);
  rtl_.AddComponent(regfile_.get());

  // ---- Hardware modules ---------------------------------------------------
  if (first_hw == 4) {
    // Electrical split: the register file talks straight to the bus adapter.
    adapter_->BindDown(down_wire);
    adapter_->BindUp(up_wire);
  } else {
    for (int i = first_hw; i < 4; ++i) {
      const ir::Module* module = compilation_->FindModule(kLayers[i]);
      assert(module != nullptr);
      hw_modules_.push_back(std::make_unique<rtl::RtlModule>(module, kLayers[i]));
      rtl_.AddComponent(hw_modules_.back().get());
    }
    // Top hardware module <- register file.
    rtl::RtlModule& top = *hw_modules_.front();
    top.BindPort(top.module().FindPort(down_channel, /*is_send=*/false), down_wire);
    top.BindPort(top.module().FindPort(up_channel, /*is_send=*/true), up_wire);
    // Chain between hardware modules.
    for (size_t i = 0; i + 1 < hw_modules_.size(); ++i) {
      rtl::RtlModule& upper_module = *hw_modules_[i];
      rtl::RtlModule& lower_module = *hw_modules_[i + 1];
      const esi::ChannelInfo* d =
          info.FindChannel(upper_module.name(), lower_module.name());
      const esi::ChannelInfo* u =
          info.FindChannel(lower_module.name(), upper_module.name());
      rtl::HsWire* dw = rtl_.CreateWire(d->flat_size);
      rtl::HsWire* uw = rtl_.CreateWire(u->flat_size);
      upper_module.BindPort(upper_module.module().FindPort(d, true), dw);
      lower_module.BindPort(lower_module.module().FindPort(d, false), dw);
      lower_module.BindPort(lower_module.module().FindPort(u, true), uw);
      upper_module.BindPort(upper_module.module().FindPort(u, false), uw);
    }
    // Bottom hardware module (CSymbol) <-> bus adapter.
    rtl::RtlModule& bottom = *hw_modules_.back();
    const esi::ChannelInfo* to_elec = info.FindChannel("CSymbol", "Electrical");
    const esi::ChannelInfo* from_elec = info.FindChannel("Electrical", "CSymbol");
    rtl::HsWire* aw_down = rtl_.CreateWire(to_elec->flat_size);
    rtl::HsWire* aw_up = rtl_.CreateWire(from_elec->flat_size);
    bottom.BindPort(bottom.module().FindPort(to_elec, true), aw_down);
    bottom.BindPort(bottom.module().FindPort(from_elec, false), aw_up);
    adapter_->BindDown(aw_down);
    adapter_->BindUp(aw_up);
  }

  // ---- Runtime monitors --------------------------------------------------
  if (config_.enable_monitors) {
    monitor_spec_ = monitor::MonitorSpec::FromSystem(info, down_channel, up_channel);
    shadow_ = std::make_unique<monitor::ShadowChecker>(&monitor_spec_);
    monitor::BusWatcherOptions watcher_options = config_.watcher;
    if (config_.split == SplitPoint::kElectrical) {
      // At the Electrical split every half cycle crosses the MMIO boundary,
      // so the software (MMIO accesses, interrupt entry/exit, VM steps)
      // paces the bus and legal low runs stretch by orders of magnitude.
      // Widen the window accordingly; detection stays bounded.
      watcher_options.stuck_low_limit *= 64;
      watcher_options.handshake_limit *= 4;
    }
    watcher_ = std::make_unique<monitor::BusWatcher>(&bus_, regfile_.get(), watcher_options);
    // Added after every active component: the watcher observes the cycle's
    // committed state and drives nothing.
    rtl_.AddComponent(watcher_.get());
  }

  // ---- Software side ------------------------------------------------------
  sw_empty_ = first_hw == 0;
  if (!sw_empty_) {
    std::vector<int> procs;
    for (int i = 0; i < first_hw; ++i) {
      const ir::Module* module = compilation_->FindModule(kLayers[i]);
      assert(module != nullptr);
      procs.push_back(sw_.AddProcess(module, kLayers[i]));
    }
    for (size_t i = 0; i + 1 < procs.size(); ++i) {
      const esi::ChannelInfo* d = info.FindChannel(kLayers[i], kLayers[i + 1]);
      const esi::ChannelInfo* u = info.FindChannel(kLayers[i + 1], kLayers[i]);
      sw_.Connect(sw_.FindPort(procs[i], d, true), sw_.FindPort(procs[i + 1], d, false));
      sw_.Connect(sw_.FindPort(procs[i + 1], u, true), sw_.FindPort(procs[i], u, false));
    }
    const esi::ChannelInfo* world_in = info.FindChannel("CWorld", "CEepDriver");
    const esi::ChannelInfo* world_out = info.FindChannel("CEepDriver", "CWorld");
    top_in_ = sw_.FindPort(procs.front(), world_in, /*is_send=*/false);
    top_out_ = sw_.FindPort(procs.front(), world_out, /*is_send=*/true);
    int bottom = procs.back();
    boundary_down_ = sw_.FindPort(bottom, down_channel, /*is_send=*/true);
    boundary_up_ = sw_.FindPort(bottom, up_channel, /*is_send=*/false);
    sw_.SetExecMode(config_.exec_mode);
    sw_.Precompile();
    // Let every layer reach its initial blocking point (startup, not timed).
    RunSw();
    last_sw_steps_ = sw_.TotalSteps();
  }
  // Let the hardware reach its initial handshakes.
  for (int i = 0; i < 32; ++i) {
    rtl_.Tick();
  }
}

HybridDriver::~HybridDriver() = default;

vm::SystemState HybridDriver::RunSw() {
  // A boundary-pump slice retires ~10 IR instructions, so the timer pair's
  // own latency is a sizeable fraction of the quantity under measurement;
  // subtracting the calibrated empty-pair cost removes that inclusion bias
  // (min-based calibration cannot over-subtract).
  const uint64_t start = HostTicks();
  vm::SystemState state = sw_.Run();
  const uint64_t delta = HostTicks() - start;
  vm_host_ticks_ += delta - std::min(delta, TimerBias());
  return state;
}

double HybridDriver::vm_host_seconds() const {
  return static_cast<double>(vm_host_ticks_) / TicksPerSecond();
}

double HybridDriver::now_ns() const { return std::max(sw_time_ns_, rtl_.time_ns()); }

void HybridDriver::SyncRtl() { rtl_.TickUntil(sw_time_ns_); }

void HybridDriver::Busy(double ns) {
  sw_time_ns_ += ns;
  cpu_busy_ns_ += ns;
}

double HybridDriver::BurstCost(double first_ns, int words) const {
  return first_ns + config_.timing.mmio_burst_word_ns * static_cast<double>(std::max(0, words - 1));
}

void HybridDriver::Idle(double ns) {
  sw_time_ns_ += ns;
  SyncRtl();
}

void HybridDriver::ShadowBusy(size_t words) {
  Busy(config_.timing.sw_instr_ns * static_cast<double>(4 + 3 * words));
}

bool HybridDriver::WaitUpMessage() {
  // A realistic driver timeout, relative to when this wait started.
  const double deadline = now_ns() + config_.recovery.wait_timeout_ns;
  if (!config_.interrupt_driven) {
    // Boundary fault: a corrupted STATUS read makes the poll loop see "not
    // ready" for `corrupt` polls even after the message landed.
    int corrupt = fault_plan_.Consult(sim::FaultKind::kCorruptedMmioRead);
    // Polling: spin on the UP_VALID register.
    while (true) {
      Busy(config_.timing.mmio_read_ns);
      SyncRtl();
      if (regfile_->UpFull()) {
        if (corrupt == 0) {
          return true;
        }
        --corrupt;
      }
      if (sw_time_ns_ > deadline) {
        if (shadow_) {
          ShadowBusy(0);
          shadow_->OnWaitTimeout();
        }
        return false;
      }
    }
  }
  // Interrupt coalescing: within the drain window after the last real IRQ
  // the driver polls instead of sleeping, so a burst of boundary messages
  // pays one interrupt. The window is bounded — if it expires empty, the
  // driver re-arms the sleeping wait below, so monitor detection latency is
  // bounded by irq_coalesce_window_ns plus the normal interrupt path.
  if (config_.irq_coalesce_window_ns > 0 && now_ns() <= irq_drain_deadline_ns_) {
    int corrupt = fault_plan_.Consult(sim::FaultKind::kCorruptedMmioRead);
    while (now_ns() <= irq_drain_deadline_ns_) {
      Busy(config_.timing.mmio_read_ns);
      SyncRtl();
      if (regfile_->UpFull()) {
        if (corrupt == 0) {
          ++irqs_coalesced_;
          return true;
        }
        --corrupt;
      }
    }
  }
  // Interrupt-driven: the CPU sleeps in the blocking UIO read; wall time
  // follows the hardware.
  SyncRtl();
  // Boundary fault: a spurious IRQ edge wakes the driver with nothing in the
  // register file; it pays the full interrupt path and goes back to sleep.
  if (fault_plan_.Consult(sim::FaultKind::kSpuriousInterrupt) > 0) {
    double spurious_busy = config_.timing.irq_overhead_ns * config_.timing.irq_busy_fraction;
    sw_time_ns_ += config_.timing.irq_overhead_ns - spurious_busy;
    Busy(spurious_busy);
    ++irq_count_;
    Busy(config_.timing.mmio_read_ns);  // status read: nothing pending
    SyncRtl();
    Busy(config_.timing.irq_exit_ns);
    if (shadow_) {
      ShadowBusy(0);
      shadow_->OnSpuriousWakeup();
    }
  }
  // Boundary fault: the IRQ edge for this message never reaches the CPU, so
  // the blocking read sleeps until its timeout.
  const bool dropped = fault_plan_.Consult(sim::FaultKind::kDroppedInterrupt) > 0;
  while (dropped || !regfile_->irq()) {
    rtl_.Tick();
    if (rtl_.time_ns() > deadline) {
      if (shadow_) {
        ShadowBusy(0);
        shadow_->OnWaitTimeout();
      }
      return false;
    }
  }
  sw_time_ns_ = std::max(sw_time_ns_, rtl_.time_ns());
  // Part of the interrupt path is scheduler latency (core idle/available);
  // the rest is busy kernel+userspace work.
  double busy_part = config_.timing.irq_overhead_ns * config_.timing.irq_busy_fraction;
  sw_time_ns_ += config_.timing.irq_overhead_ns - busy_part;
  Busy(busy_part);
  ++irq_count_;
  // Read the status/valid register once after wakeup.
  Busy(config_.timing.mmio_read_ns);
  SyncRtl();
  Busy(config_.timing.irq_exit_ns);
  // Boundary fault: the post-wakeup status read is garbage; the driver
  // cannot trust the message and reports the wait as failed.
  if (fault_plan_.Consult(sim::FaultKind::kCorruptedMmioRead) > 0) {
    if (shadow_) {
      ShadowBusy(0);
      shadow_->OnWaitTimeout();
    }
    return false;
  }
  if (regfile_->UpFull()) {
    irq_drain_deadline_ns_ = now_ns() + config_.irq_coalesce_window_ns;
    return true;
  }
  return false;
}

bool HybridDriver::PumpOnce() {
  if (!sw_empty_) {
    vm::SystemState state = RunSw();
    assert(state != vm::SystemState::kFailed);
    (void)state;
    uint64_t steps = sw_.TotalSteps();
    Busy(static_cast<double>(steps - last_sw_steps_) * config_.timing.sw_instr_ns);
    last_sw_steps_ = steps;

    if (sw_.WantsToSend(top_out_)) {
      return true;  // Result available; consumed by RunOperation.
    }
    if (sw_.WantsToSend(boundary_down_)) {
      std::optional<std::vector<int32_t>> msg = sw_.TakeMessage(boundary_down_);
      assert(msg.has_value());
      if (shadow_) {
        ShadowBusy(msg->size());
        shadow_->OnDownMessage(*msg);
      }
      // In the talk protocol the previous send was necessarily consumed
      // before its reply arrived, so no valid-flag readback is needed.
      assert(config_.ablate_no_auto_reset || !regfile_->DownPending());
      if (config_.mmio_bursts && down_words_ > 1) {
        Busy(BurstCost(config_.timing.mmio_write_ns, down_words_));
        SyncRtl();
        regfile_->WriteDown(*msg);
        ++mmio_bursts_;
      } else {
        for (int i = 0; i < down_words_; ++i) {
          Busy(config_.timing.mmio_write_ns);
          SyncRtl();
          regfile_->WriteDownWord(i, (*msg)[i]);
        }
      }
      Busy(config_.timing.mmio_write_ns);
      SyncRtl();
      // Boundary fault: the DOWN_VALID doorbell write is silently dropped on
      // the interconnect; hardware never learns about the message.
      if (fault_plan_.Consult(sim::FaultKind::kLostDoorbell) == 0) {
        regfile_->SetDownValid();
      }
      return false;
    }
    if (sw_.WantsToRecv(boundary_up_)) {
      Busy(config_.timing.mmio_write_ns);
      SyncRtl();
      // Boundary fault: the UP_READY write is lost, so the up ready/valid
      // handshake never completes and the message never lands.
      if (fault_plan_.Consult(sim::FaultKind::kStalledUpMessage) == 0) {
        regfile_->ArmUp();
      }
      if (!WaitUpMessage()) {
        // The hardware missed its deadline with the software stack blocked
        // mid-protocol: surface a terminal failure instead of hanging.
        pump_dead_ = true;
        return true;
      }
      // With bursts the span aliases the latch registers straight through
      // shadow checking and channel delivery (no intermediate copy); the
      // latch cannot be overwritten before the next ArmUp().
      std::span<const int32_t> msg;
      std::vector<int32_t> copy;
      if (config_.mmio_bursts && up_words_ > 1) {
        Busy(BurstCost(config_.timing.mmio_read_ns, up_words_));
        msg = regfile_->ReadUp();
        ++mmio_bursts_;
      } else {
        copy.resize(up_words_);
        for (int i = 0; i < up_words_; ++i) {
          Busy(config_.timing.mmio_read_ns);
          copy[i] = regfile_->ReadUpWord(i);
        }
        msg = copy;
      }
      SyncRtl();
      regfile_->ConsumeUp();
      if (shadow_) {
        ShadowBusy(msg.size());
        shadow_->OnUpMessage(msg);
      }
      bool delivered = sw_.DeliverMessage(boundary_up_, msg);
      assert(delivered);
      (void)delivered;
      return false;
    }
    assert(false && "software stack quiescent with no pending boundary operation");
    return false;
  }
  return true;
}

bool HybridDriver::RunOperation(const std::vector<int32_t>& request,
                                std::vector<int32_t>* reply) {
  if (sw_empty_) {
    // Whole stack in hardware: the application performs the MMIO itself.
    Busy(config_.timing.op_setup_ns);
    assert(config_.ablate_no_auto_reset || !regfile_->DownPending());
    if (config_.mmio_bursts && down_words_ > 1) {
      Busy(BurstCost(config_.timing.mmio_write_ns, down_words_));
      SyncRtl();
      regfile_->WriteDown(request);
      ++mmio_bursts_;
    } else {
      for (int i = 0; i < down_words_; ++i) {
        Busy(config_.timing.mmio_write_ns);
        SyncRtl();
        regfile_->WriteDownWord(i, request[i]);
      }
    }
    Busy(config_.timing.mmio_write_ns);
    SyncRtl();
    if (shadow_) {
      ShadowBusy(request.size());
      shadow_->OnDownMessage(request);
    }
    if (fault_plan_.Consult(sim::FaultKind::kLostDoorbell) == 0) {
      regfile_->SetDownValid();
    }
    Busy(config_.timing.mmio_write_ns);
    SyncRtl();
    if (fault_plan_.Consult(sim::FaultKind::kStalledUpMessage) == 0) {
      regfile_->ArmUp();
    }
    if (!WaitUpMessage()) {
      return false;
    }
    reply->resize(up_words_);
    if (config_.mmio_bursts && up_words_ > 1) {
      Busy(BurstCost(config_.timing.mmio_read_ns, up_words_));
      std::span<const int32_t> up = regfile_->ReadUp();
      std::copy(up.begin(), up.end(), reply->begin());
      ++mmio_bursts_;
    } else {
      for (int i = 0; i < up_words_; ++i) {
        Busy(config_.timing.mmio_read_ns);
        (*reply)[i] = regfile_->ReadUpWord(i);
      }
    }
    SyncRtl();
    regfile_->ConsumeUp();
    if (shadow_) {
      ShadowBusy(reply->size());
      shadow_->OnUpMessage(*reply);
    }
    Busy(config_.timing.op_setup_ns);
    return true;
  }

  // Let the top layer return to its request-receive point first.
  RunSw();
  bool delivered = sw_.DeliverMessage(top_in_, request);
  assert(delivered && "stack not ready for a new operation");
  (void)delivered;
  constexpr int kMaxPumps = 1 << 22;
  const double op_deadline =
      config_.recovery.enabled ? now_ns() + config_.recovery.op_deadline_ns : 0;
  for (int i = 0; i < kMaxPumps; ++i) {
    if (PumpOnce()) {
      if (pump_dead_) {
        pump_dead_ = false;
        return false;
      }
      std::optional<std::vector<int32_t>> result = sw_.TakeMessage(top_out_);
      assert(result.has_value());
      *reply = std::move(*result);
      return true;
    }
    if (config_.recovery.enabled && now_ns() > op_deadline) {
      return false;
    }
  }
  return false;
}

bool HybridDriver::Transact(const std::vector<int32_t>& request,
                            std::vector<int32_t>* reply) {
  const RecoveryPolicy& policy = config_.recovery;
  if (wedged_) {
    last_status_ = i2c::kCeResFail;
    return false;
  }
  double backoff = policy.initial_backoff_ns;
  const double deadline = now_ns() + policy.op_deadline_ns;
  for (int attempt = 1;; ++attempt) {
    ++recovery_counters_.attempts;
    if (!RunOperation(request, reply)) {
      // The stack itself stopped responding (stuck bus, dead hardware): the
      // software layers are blocked mid-protocol, so this is terminal.
      ++recovery_counters_.timeouts;
      wedged_ = true;
      last_status_ = i2c::kCeResFail;
      if (policy.enabled && policy.bus_recovery) {
        // A bus owned by a competing master is busy, not stuck: nine pulses
        // would fight the owner mid-byte. The supervisor's WaitBusFree rung
        // handles that case; the pulses stay for genuinely stuck lines.
        if (second_master_ == nullptr || !second_master_->holding()) {
          RecoverBus();
        }
      }
      return false;
    }
    last_status_ = (*reply)[0];
    if (last_status_ == i2c::kCeResOk) {
      return true;
    }
    if (last_status_ == i2c::kCeResNack) {
      ++recovery_counters_.nacks;
    } else {
      ++recovery_counters_.failures;
      if (policy.enabled && policy.bus_recovery) {
        RecoverBus();
      }
    }
    if (!policy.enabled || attempt >= policy.max_attempts) {
      return false;
    }
    if (now_ns() + backoff > deadline) {
      ++recovery_counters_.deadline_hits;
      return false;
    }
    ++recovery_counters_.retries;
    recovery_counters_.backoff_ns += backoff;
    Idle(backoff);
    backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_ns);
  }
}

void HybridDriver::SoftReset() {
  ++recovery_counters_.soft_resets;
  // Hardware side: every layer FSM, the adapter and the register file back
  // to their initial state. Component resets publish deasserted handshake
  // flags at their next Commit at the earliest, so clear the wires directly
  // too — a peer must not observe a stale pre-reset valid/ready.
  for (const std::unique_ptr<rtl::RtlModule>& module : hw_modules_) {
    module->Reset();
  }
  adapter_->Reset();
  regfile_->SoftReset();
  if (watcher_) {
    watcher_->Reset();
  }
  if (shadow_) {
    shadow_->Reset();
  }
  rtl_.ResetWires();
  bus_.SetDriver(recovery_driver_id_, /*scl=*/true, /*sda=*/true);
  // Software side: coroutine reinit, then run every layer back to its
  // initial blocking point (startup, not timed).
  if (!sw_empty_) {
    sw_.Reset();
    RunSw();
    last_sw_steps_ = sw_.TotalSteps();
  }
  wedged_ = false;
  pump_dead_ = false;
  irq_drain_deadline_ns_ = 0;
  // The reset may have been provoked by a mux that silently lost (or never
  // took) its routing; drop the cached select so the next operation re-
  // programs and re-verifies it.
  mux_selected_ = false;
  last_status_ = i2c::kCeResOk;
  // One SOFT_RESET register write, then let the hardware settle into its
  // initial handshakes again.
  Busy(config_.timing.mmio_write_ns);
  SyncRtl();
  for (int i = 0; i < 32; ++i) {
    rtl_.Tick();
  }
  sw_time_ns_ = std::max(sw_time_ns_, rtl_.time_ns());
}

bool HybridDriver::Probe() {
  ++recovery_counters_.reprobes;
  // Behind a mux the device is unreachable until the select is re-verified
  // (the preceding SoftReset dropped the cache).
  if (!EnsureMuxSelected()) {
    return false;
  }
  // A single-byte read from offset 0, bypassing the retry ladder: one
  // attempt, straight answer.
  std::vector<int32_t> request(20, 0);
  request[0] = i2c::kCeActRead;
  request[1] = config_.eeprom.address;
  request[2] = 0;
  request[3] = 1;
  std::vector<int32_t> reply;
  if (!RunOperation(request, &reply)) {
    return false;
  }
  return reply[0] == i2c::kCeResOk && reply[1] == 1;
}

void HybridDriver::RecoverBus() {
  ++recovery_counters_.bus_recoveries;
  const double half_ns = config_.timing.half_cycle_ticks * config_.timing.clock_ns;
  // Nine clock pulses: a responder left mid-read releases SDA within nine
  // clocks; the manufactured STOP then returns every device FSM to idle.
  for (int i = 0; i < 9; ++i) {
    bus_.SetDriver(recovery_driver_id_, /*scl=*/false, /*sda=*/true);
    Idle(half_ns);
    bus_.SetDriver(recovery_driver_id_, /*scl=*/true, /*sda=*/true);
    Idle(half_ns);
  }
  bus_.SetDriver(recovery_driver_id_, /*scl=*/true, /*sda=*/false);
  Idle(half_ns);
  bus_.SetDriver(recovery_driver_id_, /*scl=*/true, /*sda=*/true);
  Idle(half_ns);
}

bool HybridDriver::WaitBusFree() {
  if (second_master_ == nullptr) {
    return true;  // single-master bus: nothing to wait for, no time spent
  }
  const double deadline = now_ns() + config_.recovery.bus_free_timeout_ns;
  const double poll_ns = config_.timing.half_cycle_ticks * config_.timing.clock_ns;
  bool found_owned = false;
  int idle_polls = 0;
  // Two consecutive idle samples a half cycle apart: a single high read
  // could land inside the owner's clock high phase.
  while (idle_polls < 2) {
    SyncRtl();
    if (bus_.scl() && bus_.sda()) {
      ++idle_polls;
    } else {
      idle_polls = 0;
      found_owned = true;
    }
    if (now_ns() > deadline) {
      return false;
    }
    Idle(poll_ns);
  }
  if (found_owned) {
    ++recovery_counters_.arbitration_waits;
  }
  return true;
}

bool HybridDriver::SelectMuxOnce(int mask) {
  std::vector<int32_t> request(20, 0);
  request[0] = i2c::kCeActWrite;
  request[1] = config_.mux_topology.mux.address;
  request[2] = 0;
  request[3] = 1;
  request[4] = mask;
  std::vector<int32_t> reply;
  if (!Transact(request, &reply)) {
    return false;
  }
  // The mux ACKs a select even when its latch is stuck; only the read-back
  // proves the control register took the mask. (A misrouted latch passes
  // this check by design -- that one surfaces as NACKs on the device and is
  // healed by the re-select after the supervisor's reset rung.)
  request[0] = i2c::kCeActRead;
  request[4] = 0;
  if (!Transact(request, &reply)) {
    return false;
  }
  return reply[0] == i2c::kCeResOk && reply[1] == 1 && (reply[2] & 0xFF) == mask;
}

bool HybridDriver::EnsureMuxSelected() {
  if (!config_.mux_topology.enabled || mux_selected_) {
    return true;
  }
  const int mask = 1 << config_.mux_topology.device_channel;
  const int attempts = config_.recovery.enabled ? config_.recovery.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    ++recovery_counters_.mux_selects;
    if (SelectMuxOnce(mask)) {
      mux_selected_ = true;
      return true;
    }
    if (wedged_) {
      return false;
    }
  }
  return false;
}

bool HybridDriver::Read(int offset, int length, std::vector<uint8_t>* out) {
  return ReadFrom(config_.eeprom.address, offset, length, out);
}

bool HybridDriver::Write(int offset, const std::vector<uint8_t>& data) {
  return WriteTo(config_.eeprom.address, offset, data);
}

bool HybridDriver::ReadFrom(int bus_address, int offset, int length,
                            std::vector<uint8_t>* out) {
  assert(length >= 1 && length <= 14);
  if (!EnsureMuxSelected()) {
    last_status_ = i2c::kCeResFail;
    return false;
  }
  std::vector<int32_t> request(20, 0);
  request[0] = i2c::kCeActRead;
  request[1] = bus_address;
  request[2] = offset;
  request[3] = length;
  std::vector<int32_t> reply;
  if (!Transact(request, &reply)) {
    return false;
  }
  if (reply[1] != length) {
    return false;
  }
  if (out != nullptr) {
    out->clear();
    for (int i = 0; i < length; ++i) {
      out->push_back(static_cast<uint8_t>(reply[2 + i]));
    }
  }
  return true;
}

bool HybridDriver::WriteTo(int bus_address, int offset, const std::vector<uint8_t>& data) {
  assert(!data.empty() && data.size() <= 14);
  if (!EnsureMuxSelected()) {
    last_status_ = i2c::kCeResFail;
    return false;
  }
  std::vector<int32_t> request(20, 0);
  request[0] = i2c::kCeActWrite;
  request[1] = bus_address;
  request[2] = offset;
  request[3] = static_cast<int32_t>(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    request[4 + i] = data[i];
  }
  std::vector<int32_t> reply;
  return Transact(request, &reply);
}

DriverMetrics HybridDriver::MeasureReads(int ops, int length) {
  DriverMetrics metrics;
  // Warm-up read so the measurement covers steady state.
  std::vector<uint8_t> data;
  if (!Read(0, length, &data)) {
    metrics.functional = false;
    metrics.note = "warm-up read failed";
    return metrics;
  }
  bus_.ClearSamples();
  double start_busy = cpu_busy_ns_;
  double start_time = now_ns();
  uint64_t start_irqs = irq_count_;
  uint64_t start_steps = sw_.TotalSteps();
  uint64_t start_bursts = mmio_bursts_;
  uint64_t start_coalesced = irqs_coalesced_;
  const uint64_t start_vm_host_ticks = vm_host_ticks_;
  for (int i = 0; i < ops; ++i) {
    if (!Read(0, length, &data)) {
      metrics.functional = false;
      metrics.note = "read failed";
      return metrics;
    }
  }
  metrics.elapsed_ns = now_ns() - start_time;
  metrics.cpu_usage = (cpu_busy_ns_ - start_busy) / metrics.elapsed_ns;
  metrics.irq_count = irq_count_ - start_irqs;
  metrics.instructions_retired = sw_.TotalSteps() - start_steps;
  metrics.mmio_bursts = mmio_bursts_ - start_bursts;
  metrics.irqs_coalesced = irqs_coalesced_ - start_coalesced;
  metrics.vm_host_seconds =
      static_cast<double>(vm_host_ticks_ - start_vm_host_ticks) / TicksPerSecond();
  metrics.frequency = sim::AnalyzeSclFrequency(bus_.samples());
  metrics.recovery = recovery_counters_;
  metrics.faults_injected = fault_plan_.faults_injected();
  metrics.monitor = MonitorCounters();
  if (config_.split == SplitPoint::kElectrical && config_.interrupt_driven) {
    // Platform constraint reproduced from the paper (section 5.2): the
    // interrupt-driven Electrical driver does not function correctly due to
    // excessive interrupts — one per bus half cycle exceeds what the Linux
    // UIO interrupt path sustains.
    metrics.functional = false;
    metrics.note = "does not function: excessive interrupts (one per half cycle)";
  }
  return metrics;
}

monitor::TripCounters HybridDriver::MonitorCounters() const {
  monitor::TripCounters merged;
  if (shadow_) {
    merged.Merge(shadow_->counters());
  }
  if (watcher_) {
    merged.Merge(watcher_->counters());
  }
  return merged;
}

uint64_t HybridDriver::ConsumeMonitorTrips() {
  const uint64_t total = MonitorCounters().total;
  const uint64_t fresh = total - consumed_monitor_trips_;
  consumed_monitor_trips_ = total;
  return fresh;
}

std::vector<const ir::Module*> HybridDriver::HardwareModules() const {
  std::vector<const ir::Module*> modules;
  for (const auto& module : hw_modules_) {
    modules.push_back(&module->module());
  }
  return modules;
}

}  // namespace efeu::driver
