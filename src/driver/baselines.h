// The two baselines of the paper's evaluation (section 5): the Linux
// "bit-banging" GPIO driver (all software, pacing the bus with udelay and
// paying GPIO access costs per half cycle) and the Xilinx AXI IIC IP (a
// transaction-level hardware engine with FIFO service interrupts).

#ifndef SRC_DRIVER_BASELINES_H_
#define SRC_DRIVER_BASELINES_H_

#include <memory>
#include <vector>

#include "src/driver/hybrid.h"
#include "src/driver/timing.h"
#include "src/ir/compile.h"
#include "src/monitor/bus_watcher.h"
#include "src/monitor/monitor_spec.h"
#include "src/monitor/shadow_checker.h"
#include "src/rtl/system.h"
#include "src/sim/eeprom.h"
#include "src/sim/i2c_bus.h"
#include "src/sim/xilinx_ip.h"
#include "src/vm/system.h"

namespace efeu::driver {

// Linux i2c-gpio style bit-banging: the full (verified, generated) stack runs
// in software; every electrical half cycle costs two GPIO writes, the
// configured udelay, and two GPIO reads for sampling. The CPU spins the
// whole time.
class BitBangDriver {
 public:
  BitBangDriver(const TimingModel& timing, const sim::EepromConfig& eeprom,
                bool capture_waveform = false, const sim::FaultPlan& fault_plan = {},
                const RecoveryPolicy& recovery = {});
  ~BitBangDriver();

  bool Read(int offset, int length, std::vector<uint8_t>* out);
  bool Write(int offset, const std::vector<uint8_t>& data);
  DriverMetrics MeasureReads(int ops, int length);

  // Supervision-ladder entry points (all-software driver: coroutine reinit
  // plus releasing the GPIO lines) and a single-byte re-probe.
  void SoftReset();
  bool Probe();

  // Runtime monitors: a ShadowChecker on the CWorld request/reply boundary
  // plus a BusWatcher on the GPIO-driven bus. No-op until enabled.
  void EnableMonitors(monitor::BusWatcherOptions options = {});
  bool monitors_enabled() const { return shadow_ != nullptr; }
  monitor::TripCounters MonitorCounters() const;
  // Trips since the last call (the supervisor's escalation input).
  uint64_t ConsumeMonitorTrips();

  sim::I2cBus& bus() { return bus_; }
  sim::Eeprom24aa512& eeprom() { return *eeprom_; }
  sim::FaultPlan& fault_plan() { return fault_plan_; }
  const RecoveryCounters& recovery_counters() const { return recovery_counters_; }
  int32_t last_status() const { return last_status_; }
  bool wedged() const { return wedged_; }

 private:
  bool RunOperation(const std::vector<int32_t>& request, std::vector<int32_t>* reply);
  bool Transact(const std::vector<int32_t>& request, std::vector<int32_t>* reply);
  void RecoverBus();
  void Busy(double ns);
  void Idle(double ns);
  void SyncRtl();

  TimingModel timing_;
  std::unique_ptr<ir::Compilation> compilation_;
  rtl::RtlSystem rtl_;
  sim::I2cBus bus_;
  int gpio_driver_id_ = -1;
  bool gpio_sda_ = true;
  bool gpio_scl_ = true;
  std::unique_ptr<sim::Eeprom24aa512> eeprom_;
  vm::System sw_;
  vm::PortRef top_in_;
  vm::PortRef top_out_;
  vm::PortRef levels_out_;  // CSymbol -> Electrical
  vm::PortRef levels_in_;   // Electrical -> CSymbol
  uint64_t last_sw_steps_ = 0;
  double sw_time_ns_ = 0;
  double cpu_busy_ns_ = 0;
  int eeprom_address_;

  // Fault injection and recovery (mirrors HybridDriver).
  sim::FaultPlan fault_plan_;
  RecoveryPolicy recovery_;
  RecoveryCounters recovery_counters_;
  int32_t last_status_ = 0;
  bool wedged_ = false;

  // Runtime monitors (null until EnableMonitors).
  monitor::MonitorSpec monitor_spec_;
  std::unique_ptr<monitor::ShadowChecker> shadow_;
  std::unique_ptr<monitor::BusWatcher> watcher_;
  uint64_t consumed_monitor_trips_ = 0;
};

// Xilinx AXI IIC baseline: hardware engine plus an interrupt-driven driver
// that services the FIFO per payload byte.
class XilinxIpDriver {
 public:
  XilinxIpDriver(const TimingModel& timing, const sim::EepromConfig& eeprom,
                 bool capture_waveform = false, const sim::FaultPlan& fault_plan = {});
  ~XilinxIpDriver();

  bool Read(int offset, int length, std::vector<uint8_t>* out);
  bool Write(int offset, const std::vector<uint8_t>& data);
  DriverMetrics MeasureReads(int ops, int length);

  // Supervision-ladder entry points: the AXI IIC SOFTR-style engine reset
  // and a single-byte re-probe.
  void SoftReset();
  bool Probe();

  // Runtime monitors. The IP has no generated boundary, so only the wire
  // watcher and the wait/interrupt checks apply (null message spec).
  void EnableMonitors(monitor::BusWatcherOptions options = {});
  bool monitors_enabled() const { return shadow_ != nullptr; }
  monitor::TripCounters MonitorCounters() const;
  uint64_t ConsumeMonitorTrips();

  sim::I2cBus& bus() { return bus_; }
  sim::Eeprom24aa512& eeprom() { return *eeprom_; }
  sim::FaultPlan& fault_plan() { return fault_plan_; }
  const RecoveryCounters& recovery_counters() const { return recovery_counters_; }
  int32_t last_status() const { return last_status_; }
  bool wedged() const { return wedged_; }

 private:
  // One transaction on the engine; waits for the completion interrupt.
  bool RunEngine(int payload_bytes);

  TimingModel timing_;
  rtl::RtlSystem rtl_;
  sim::I2cBus bus_;
  std::unique_ptr<sim::XilinxIpEngine> engine_;
  std::unique_ptr<sim::Eeprom24aa512> eeprom_;
  double cpu_busy_ns_ = 0;
  uint64_t irq_count_ = 0;
  int eeprom_address_;

  // Boundary fault injection and supervision surface (mirrors HybridDriver;
  // the engine itself has no wire-fault consult points, but dropped and
  // spurious completion interrupts hit this driver like any other).
  sim::FaultPlan fault_plan_;
  RecoveryCounters recovery_counters_;
  int32_t last_status_ = 0;
  bool wedged_ = false;

  // Runtime monitors (null until EnableMonitors).
  std::unique_ptr<monitor::ShadowChecker> shadow_;
  std::unique_ptr<monitor::BusWatcher> watcher_;
  uint64_t consumed_monitor_trips_ = 0;
};

}  // namespace efeu::driver

#endif  // SRC_DRIVER_BASELINES_H_
