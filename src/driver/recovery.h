// Retry/timeout/backoff policy for the generated drivers, modeled on what a
// production Linux I2C client does around a flaky bus: bounded exponential
// backoff between attempts, a per-transaction deadline, a hardware-response
// timeout, and the standard 9-clock-pulse bus-recovery sequence (a responder
// left mid-read holding SDA releases it after at most nine clocks, after
// which a manufactured STOP returns every device FSM to idle).

#ifndef SRC_DRIVER_RECOVERY_H_
#define SRC_DRIVER_RECOVERY_H_

#include <cstdint>

namespace efeu::driver {

struct RecoveryPolicy {
  // Disabled (default) preserves the pre-recovery behavior exactly: one
  // attempt per operation, failures surfaced to the caller.
  bool enabled = false;
  // Attempts per operation (first try included).
  int max_attempts = 8;
  // Exponential backoff between attempts, spent idle (the CPU sleeps; the
  // device's write cycle keeps running).
  double initial_backoff_ns = 50e3;
  double max_backoff_ns = 3.2e6;
  double backoff_multiplier = 2.0;
  // Per-operation deadline across all attempts and backoffs.
  double op_deadline_ns = 4e7;
  // Issue the 9-pulse + STOP sequence after a non-NACK failure or timeout.
  bool bus_recovery = true;
  // How long a single wait for the hardware (MMIO up-message or IRQ) may
  // take before the driver declares the stack wedged instead of hanging.
  double wait_timeout_ns = 5e7;
  // Multi-master topologies: how long the supervisor's arbitration rung
  // waits for a competing master to release the bus (both lines high) before
  // escalating to the soft reset anyway. Covers the longest modeled
  // occupancy (sim::SecondMaster) with headroom.
  double bus_free_timeout_ns = 2e7;
};

struct RecoveryCounters {
  uint64_t attempts = 0;        // operations issued into the stack, retries included
  uint64_t retries = 0;         // re-issues after a recoverable failure
  uint64_t nacks = 0;           // attempts that ended in CE_RES_NACK
  uint64_t failures = 0;        // attempts that ended in CE_RES_FAIL
  uint64_t timeouts = 0;        // stack/hardware waits that hit the deadline
  uint64_t bus_recoveries = 0;  // 9-pulse sequences issued
  uint64_t deadline_hits = 0;   // operations abandoned at the deadline
  double backoff_ns = 0;        // idle time spent backing off
  // Supervision-ladder stages (driver::Supervisor).
  uint64_t soft_resets = 0;       // hardware soft-reset + coroutine reinit
  uint64_t reprobes = 0;          // post-reset device re-probes
  uint64_t degraded_entries = 0;  // transitions into degraded mode
  // Topology recovery (mux + multi-master; zero on point-to-point stacks).
  uint64_t arbitration_waits = 0;  // bus-free waits that found the bus owned
  uint64_t mux_selects = 0;        // mux select+verify attempts issued
};

}  // namespace efeu::driver

#endif  // SRC_DRIVER_RECOVERY_H_
