// Cross-boundary supervision (the staged degradation ladder): a health FSM
// wrapped uniformly around the hybrid, bit-bang and Xilinx-baseline drivers.
// The wrapped driver's own RecoveryPolicy covers the first two rungs (retry/
// backoff and 9-pulse bus recovery); the supervisor escalates through the
// rest when an operation still fails:
//
//   healthy --op fails--> recovering: hardware soft-reset + coroutine reinit,
//   then (from the second ladder cycle) a full device re-probe before the
//   operation is retried. A page write that keeps failing falls back to
//   degraded mode (single-byte writes). Only when every rung is exhausted
//   does the supervisor declare the pair wedged; wedged is terminal.
//
// Duck-typed over the driver: needs Read/Write/SoftReset/Probe plus the
// recovery_counters()/last_status()/wedged() surface all three drivers share.

#ifndef SRC_DRIVER_SUPERVISOR_H_
#define SRC_DRIVER_SUPERVISOR_H_

#include <cstdint>
#include <vector>

#include "src/driver/recovery.h"

namespace efeu::driver {

enum class HealthState {
  kHealthy,     // operations complete without supervisor intervention
  kDegraded,    // functional, but page writes run as single-byte writes
  kRecovering,  // mid-ladder: a reset/re-probe cycle is in flight
  kWedged,      // every rung exhausted; all further operations fail fast
};

inline const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kRecovering:
      return "recovering";
    case HealthState::kWedged:
      return "wedged";
  }
  return "?";
}

struct SupervisorOptions {
  // Soft-reset (+ re-probe) cycles per operation before giving up.
  int max_ladder_cycles = 3;
  // Consecutive page writes that needed the reset ladder (failed their first
  // try) before proactively entering degraded mode; a page write the whole
  // ladder cannot complete falls back to single bytes immediately.
  int page_fail_threshold = 2;
  // Consecutive supervised operations that complete without the ladder (and
  // without a monitor trip) while degraded before page mode is trusted
  // again. 0 keeps degraded mode sticky for the supervisor's lifetime.
  int degraded_recovery_threshold = 8;
  // Monitor trips without an intervening clean operation before the
  // supervisor forces a soft reset on the wrapped driver (rung 3 of the
  // ladder, entered from the runtime monitors instead of a failed op).
  int trip_reset_threshold = 3;
};

template <typename Driver>
class Supervisor {
 public:
  explicit Supervisor(Driver* driver, SupervisorOptions options = {})
      : driver_(driver), options_(options) {}

  HealthState health() const { return health_; }
  Driver& driver() { return *driver_; }

  // The driver's counters with the supervisor-level degraded-mode entries
  // folded in (the driver itself never touches degraded_entries).
  RecoveryCounters counters() const {
    RecoveryCounters merged = driver_->recovery_counters();
    merged.degraded_entries += degraded_entries_;
    return merged;
  }

  // Monitor trips observed since construction, and trips since the last
  // clean operation (the escalation input).
  uint64_t monitor_trips() const { return monitor_trips_; }

  // Runtime-monitor input to the ladder: a bus watcher or shadow checker
  // flagged a spec violation outside any supervised operation. One trip
  // demotes the pair to recovering (the next operation re-runs the ladder
  // from a clean slate); trip_reset_threshold trips without an intervening
  // clean operation force the soft reset immediately.
  void NoteMonitorTrip() {
    if (health_ == HealthState::kWedged) {
      return;
    }
    ++monitor_trips_;
    clean_streak_ = 0;
    health_ = HealthState::kRecovering;
    if (options_.trip_reset_threshold > 0 &&
        ++trips_since_clean_op_ >= options_.trip_reset_threshold) {
      driver_->SoftReset();
      trips_since_clean_op_ = 0;
    }
  }

  bool Read(int offset, int length, std::vector<uint8_t>* out) {
    if (health_ == HealthState::kWedged) {
      return false;
    }
    PollMonitors();
    bool first_try_failed = false;
    if (RunLadder([&] { return driver_->Read(offset, length, out); }, &first_try_failed)) {
      NoteOperationSucceeded(first_try_failed);
      PollMonitors();
      return true;
    }
    PollMonitors();
    health_ = HealthState::kWedged;
    return false;
  }

  bool Write(int offset, const std::vector<uint8_t>& data) {
    if (health_ == HealthState::kWedged) {
      return false;
    }
    PollMonitors();
    const bool page = data.size() > 1;
    if (page && degraded_) {
      bool any_ladder = false;
      if (!WriteSingleBytes(offset, data, &any_ladder)) {
        return false;
      }
      NoteOperationSucceeded(any_ladder);
      PollMonitors();
      return true;
    }
    bool first_try_failed = false;
    if (RunLadder([&] { return driver_->Write(offset, data); }, &first_try_failed)) {
      if (page) {
        if (first_try_failed) {
          // The write completed, but only through a reset cycle. A page
          // write that keeps needing the ladder degrades proactively
          // instead of betting the next one on it too.
          if (++consecutive_page_failures_ >= options_.page_fail_threshold) {
            EnterDegraded();
          }
        } else {
          consecutive_page_failures_ = 0;
        }
        if (degraded_) {
          health_ = HealthState::kDegraded;
        }
      }
      NoteOperationSucceeded(first_try_failed);
      PollMonitors();
      return true;
    }
    if (page) {
      // Last rung before wedged: the device may still take one byte at a
      // time. The failed ladder left the stack down; reset it first.
      EnterDegraded();
      driver_->SoftReset();
      bool any_ladder = false;
      if (WriteSingleBytes(offset, data, &any_ladder)) {
        NoteOperationSucceeded(/*needed_ladder=*/true);
        PollMonitors();
        return true;
      }
      return false;
    }
    health_ = HealthState::kWedged;
    return false;
  }

  // Addressed operations for composite devices (the MFD register file),
  // run through the same ladder as Read/Write. WriteTo deliberately skips
  // the degraded single-byte fallback: a register write is an atomic 16-bit
  // pair, and splitting it would tear the register. Only instantiated for
  // drivers exposing ReadFrom/WriteTo (the supervisor stays duck-typed).
  bool ReadFrom(int bus_address, int offset, int length, std::vector<uint8_t>* out) {
    if (health_ == HealthState::kWedged) {
      return false;
    }
    PollMonitors();
    bool first_try_failed = false;
    if (RunLadder([&] { return driver_->ReadFrom(bus_address, offset, length, out); },
                  &first_try_failed)) {
      NoteOperationSucceeded(first_try_failed);
      PollMonitors();
      return true;
    }
    PollMonitors();
    health_ = HealthState::kWedged;
    return false;
  }

  bool WriteTo(int bus_address, int offset, const std::vector<uint8_t>& data) {
    if (health_ == HealthState::kWedged) {
      return false;
    }
    PollMonitors();
    bool first_try_failed = false;
    if (RunLadder([&] { return driver_->WriteTo(bus_address, offset, data); },
                  &first_try_failed)) {
      NoteOperationSucceeded(first_try_failed);
      PollMonitors();
      return true;
    }
    PollMonitors();
    health_ = HealthState::kWedged;
    return false;
  }

 private:
  // Drains trips the wrapped driver's runtime monitors recorded since the
  // last poll and feeds them into the ladder. Compiled out for drivers
  // without monitors (e.g. test fakes), keeping the supervisor duck-typed.
  void PollMonitors() {
    if constexpr (requires { driver_->ConsumeMonitorTrips(); }) {
      for (uint64_t trips = driver_->ConsumeMonitorTrips(); trips > 0; --trips) {
        NoteMonitorTrip();
      }
    }
  }

  template <typename Op>
  bool RunLadder(Op op, bool* first_try_failed = nullptr) {
    // Rungs 1-2 (retry/backoff, bus recovery) run inside the driver's own
    // RecoveryPolicy on this first attempt.
    if (op()) {
      Recovered();
      return true;
    }
    if (first_try_failed != nullptr) {
      *first_try_failed = true;
    }
    for (int cycle = 0; cycle < options_.max_ladder_cycles; ++cycle) {
      health_ = HealthState::kRecovering;
      // Rung 3: hardware soft reset + coroutine reinit.
      driver_->SoftReset();
      // Arbitration rung (multi-master topologies): the failure may mean a
      // competing master owns the bus, in which case retrying against a
      // seized bus just burns ladder cycles — wait for both lines to idle
      // before the retry. This must run AFTER the reset: a wedged stack's
      // own FSM can be stuck driving SDA low, and only the reset releases
      // our side of the wires so the wait observes the competing master
      // alone. Compiled out for drivers without the surface; a timed-out
      // wait still falls through to the retry below.
      if constexpr (requires { driver_->WaitBusFree(); }) {
        driver_->WaitBusFree();
      }
      if (cycle > 0) {
        // Rung 4: full device re-probe before trusting the stack again.
        if (!driver_->Probe()) {
          // A failed probe can strand the stack mid-protocol; clean up so
          // the next cycle starts from the initial state.
          driver_->SoftReset();
          continue;
        }
      }
      if (op()) {
        Recovered();
        return true;
      }
    }
    return false;
  }

  bool WriteSingleBytes(int offset, const std::vector<uint8_t>& data, bool* any_ladder) {
    for (size_t i = 0; i < data.size(); ++i) {
      std::vector<uint8_t> one = {data[i]};
      bool first_try_failed = false;
      if (!RunLadder([&] { return driver_->Write(offset + static_cast<int>(i), one); },
                     &first_try_failed)) {
        health_ = HealthState::kWedged;
        return false;
      }
      if (first_try_failed) {
        *any_ladder = true;
      }
    }
    return true;
  }

  void Recovered() {
    health_ = degraded_ ? HealthState::kDegraded : HealthState::kHealthy;
  }

  // A supervised operation completed. Clean completions (no ladder) while
  // degraded accumulate toward re-promotion; any ladder use restarts the
  // streak. Every success clears the monitor-trip escalation counter.
  void NoteOperationSucceeded(bool needed_ladder) {
    trips_since_clean_op_ = 0;
    if (needed_ladder) {
      clean_streak_ = 0;
      return;
    }
    if (degraded_ && options_.degraded_recovery_threshold > 0 &&
        ++clean_streak_ >= options_.degraded_recovery_threshold) {
      ExitDegraded();
    }
  }

  // Counts DISTINCT degradation episodes: the edge guard means a ladder that
  // re-enters degraded via recovering (without an intervening promotion to
  // healthy) cannot bump the counter twice, and only ExitDegraded re-arms
  // it. degraded_entries is therefore "how many times the pair fell back to
  // single-byte mode", not "how many rungs ended in degraded".
  void EnterDegraded() {
    if (!degraded_) {
      degraded_ = true;
      ++degraded_entries_;
    }
    clean_streak_ = 0;
  }

  void ExitDegraded() {
    degraded_ = false;
    clean_streak_ = 0;
    consecutive_page_failures_ = 0;
    health_ = HealthState::kHealthy;
  }

  Driver* driver_;
  SupervisorOptions options_;
  HealthState health_ = HealthState::kHealthy;
  bool degraded_ = false;
  int consecutive_page_failures_ = 0;
  int clean_streak_ = 0;
  int trips_since_clean_op_ = 0;
  uint64_t degraded_entries_ = 0;
  uint64_t monitor_trips_ = 0;
};

}  // namespace efeu::driver

#endif  // SRC_DRIVER_SUPERVISOR_H_
