// Driver-side client for the register-file MFD device (sim::MfdRegFileDevice):
// 16-bit register accessors over the unmodified byte-oriented controller
// stack, plus the leicaefi-style IRQ-chip top half — read STATUS once, fan
// the pending bits out to per-cell handlers, acknowledge everything observed
// with a single write-1-to-clear. Duck-typed over any driver exposing
// ReadFrom/WriteTo, so it runs bare (HybridDriver) or supervised
// (Supervisor<HybridDriver>) without change.

#ifndef SRC_DRIVER_MFD_H_
#define SRC_DRIVER_MFD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/regfile_device.h"

namespace efeu::driver {

template <typename Driver>
class MfdClient {
 public:
  // Handlers receive the full STATUS word their cell bit was set in.
  using CellHandler = std::function<void(uint16_t status)>;

  MfdClient(Driver* driver, int bus_address)
      : driver_(driver), address_(bus_address) {}

  bool ReadReg(int index, uint16_t* value) {
    std::vector<uint8_t> bytes;
    if (!driver_->ReadFrom(address_, index, 2, &bytes) || bytes.size() != 2) {
      return false;
    }
    *value = static_cast<uint16_t>((bytes[0] << 8) | bytes[1]);
    return true;
  }

  bool WriteReg(int index, uint16_t value) {
    return driver_->WriteTo(
        address_, index,
        {static_cast<uint8_t>(value >> 8), static_cast<uint8_t>(value & 0xFF)});
  }

  // Chip identification: true when the ID register carries the 0xEF magic.
  bool ProbeId(uint16_t* id) {
    if (!ReadReg(sim::kMfdRegId, id)) {
      return false;
    }
    return (*id & 0xFF00) == 0xEF00;
  }

  bool EnableIrqs(uint16_t mask) { return WriteReg(sim::kMfdRegIrqEnable, mask); }

  void SetCellHandler(int cell, CellHandler handler) {
    if (cell >= static_cast<int>(handlers_.size())) {
      handlers_.resize(static_cast<size_t>(cell) + 1);
    }
    handlers_[static_cast<size_t>(cell)] = std::move(handler);
  }

  // The IRQ-chip top half. Returns the number of cell handlers invoked, 0
  // when nothing was pending, -1 on a bus failure. Pending bits without a
  // registered handler are still acknowledged (the real driver logs and
  // masks those; here they just clear).
  int DispatchIrqs() {
    uint16_t status = 0;
    if (!ReadReg(sim::kMfdRegIrqStatus, &status)) {
      return -1;
    }
    if (status == 0) {
      return 0;
    }
    int dispatched = 0;
    for (size_t cell = 0; cell < handlers_.size(); ++cell) {
      if (((status >> cell) & 1) != 0 && handlers_[cell]) {
        handlers_[cell](status);
        ++dispatched;
      }
    }
    // One W1C ack for every bit observed in this pass; a bit raised after
    // the status read survives the ack and triggers the next dispatch.
    if (!WriteReg(sim::kMfdRegIrqStatus, status)) {
      return -1;
    }
    irqs_dispatched_ += static_cast<uint64_t>(dispatched);
    return dispatched;
  }

  uint64_t irqs_dispatched() const { return irqs_dispatched_; }

 private:
  Driver* driver_;
  int address_;
  std::vector<CellHandler> handlers_;
  uint64_t irqs_dispatched_ = 0;
};

}  // namespace efeu::driver

#endif  // SRC_DRIVER_MFD_H_
