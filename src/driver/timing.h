// The platform timing model standing in for the paper's Zynq UltraScale+
// testbed (quad-core Cortex-A53 + 16nm FPGA @ 100 MHz): per-instruction
// software cost, MMIO access latencies over AXI, GPIO and interrupt
// overheads. The constants are calibrated so the evaluation reproduces the
// paper's qualitative crossovers (section 5); EXPERIMENTS.md records the
// calibration.

#ifndef SRC_DRIVER_TIMING_H_
#define SRC_DRIVER_TIMING_H_

namespace efeu::driver {

struct TimingModel {
  // FPGA clock (100 MHz).
  double clock_ns = 10.0;
  // Target I2C Fast Mode: 400 kHz SCL -> 1.25 us per half cycle.
  int half_cycle_ticks = 125;

  // Cortex-A53 executing the generated C: average cost per ESM-level IR
  // instruction (memory traffic included).
  double sw_instr_ns = 9.0;
  // Posted MMIO write / blocking MMIO read over AXI into the PL.
  double mmio_write_ns = 130.0;
  double mmio_read_ns = 420.0;
  // Pipelined beat cost within one AXI burst (HybridConfig::mmio_bursts):
  // the first beat pays the full single-access cost, each further beat this.
  double mmio_burst_word_ns = 30.0;
  // GPIO register access via the Linux gpiod path (bit-banging baseline);
  // includes the spinlock-polled wait the kernel driver uses.
  double gpio_write_ns = 400.0;
  double gpio_read_ns = 300.0;
  // The i2c-gpio udelay=1 half-cycle delay.
  double gpio_udelay_ns = 1000.0;
  // Interrupt path: PL IRQ -> GIC -> kernel -> UIO blocking-read wakeup.
  double irq_overhead_ns = 5200.0;
  // Fraction of the interrupt path the core spends busy (the rest is
  // scheduler latency while the core is available to other work).
  double irq_busy_fraction = 0.62;
  // Userspace work to re-arm and return from the wait.
  double irq_exit_ns = 800.0;
  // Fixed per-operation application cost (issuing the request, consuming
  // the result) when the whole stack is in hardware.
  double op_setup_ns = 400.0;

  // Baseline: Xilinx AXI IIC IP.
  double xilinx_setup_writes = 8;      // MMIO writes per transaction setup
  double xilinx_byte_irq_ns = 3400.0;  // FIFO-service interrupt handling per byte
  int xilinx_interbyte_gap_ticks = 55; // engine stall per byte awaiting FIFO service
};

}  // namespace efeu::driver

#endif  // SRC_DRIVER_TIMING_H_
