// The hybrid hardware/software driver runtime (paper sections 3.5 and 5):
// instantiates the generated controller stack with the software/hardware
// boundary at a chosen layer interface. Layers above the split run in the
// software VM on a modeled CPU timeline; layers at/below the split run as
// clocked FSMs in the RTL simulator; the generated MMIO-AXI Lite register
// file couples the two, with polling or interrupt-driven waits on the
// software side. A behavioural 24AA512 EEPROM hangs off the simulated
// open-drain bus.

#ifndef SRC_DRIVER_HYBRID_H_
#define SRC_DRIVER_HYBRID_H_

#include <memory>
#include <string>
#include <vector>

#include "src/driver/recovery.h"
#include "src/driver/timing.h"
#include "src/ir/compile.h"
#include "src/monitor/bus_watcher.h"
#include "src/monitor/monitor_spec.h"
#include "src/monitor/shadow_checker.h"
#include "src/rtl/regfile.h"
#include "src/rtl/rtl_module.h"
#include "src/rtl/system.h"
#include "src/sim/bus_adapter.h"
#include "src/sim/eeprom.h"
#include "src/sim/fault_plan.h"
#include "src/sim/i2c_bus.h"
#include "src/sim/mux.h"
#include "src/sim/regfile_device.h"
#include "src/sim/second_master.h"
#include "src/sim/waveform.h"
#include "src/vm/system.h"

namespace efeu::driver {

// Denoted by the topmost hardware layer, like the paper: Electrical has only
// the bus adapter in hardware; EepDriver has the whole stack in hardware.
enum class SplitPoint {
  kElectrical,
  kSymbol,
  kByte,
  kTransaction,
  kEepDriver,
};

const char* SplitPointName(SplitPoint split);

// Optional bus-fabric growth between the controller and its devices. All of
// it is off by default: an unconfigured driver builds the exact
// point-to-point bus it always did, byte for byte.
struct MuxTopologyConfig {
  bool enabled = false;
  sim::MuxConfig mux;
  // Downstream channel the modeled devices (EEPROMs, MFDs) hang off; the
  // driver must program the mux before they are reachable.
  int device_channel = 0;
};

struct HybridConfig {
  SplitPoint split = SplitPoint::kByte;
  bool interrupt_driven = false;
  // Execution tier for the software layers above the split (src/vm/
  // exec_mode.h): interp / threaded / compiled. Semantics are identical
  // across tiers; only the per-instruction dispatch cost on the host — and
  // therefore bench wall-time, not the modeled timeline — changes.
  vm::ExecMode exec_mode = vm::ExecMode::kInterp;
  // Batch the hybrid boundary: move adjacent MMIO data words as one AXI
  // burst (first beat at full cost, later beats at mmio_burst_word_ns)
  // instead of one bus transaction per word. The doorbell/ready writes stay
  // separate accesses, so every boundary fault point is preserved.
  bool mmio_bursts = false;
  // Interrupt coalescing: after an IRQ-driven wakeup the driver keeps
  // polling the status register for this long before re-arming the sleeping
  // wait, so back-to-back up-messages ride one interrupt. The window bounds
  // the extra latency of the monitors' view: the shadow checker still sees
  // every message no later than the drain deadline. 0 disables.
  double irq_coalesce_window_ns = 0.0;
  TimingModel timing;
  // Modeled EEPROM (the responder on the bus).
  sim::EepromConfig eeprom;
  // Additional EEPROMs sharing the bus (distinct addresses) — the
  // interoperability scenario the paper motivates.
  std::vector<sim::EepromConfig> extra_eeproms;
  // Register-file MFD devices (sim::MfdRegFileDevice) sharing the device
  // segment, driven through MfdClient over the unmodified controller stack.
  std::vector<sim::MfdConfig> mfd_devices;
  // Bus mux between controller and devices; the driver gains a select+verify
  // step (EnsureMuxSelected) and the kMuxStuck/kMuxMisroute fault surface.
  MuxTopologyConfig mux_topology;
  // A competing bus master (multi-master arbitration): kArbitrationLoss
  // seizes the bus at a START, and the supervisor gains the WaitBusFree rung.
  bool enable_second_master = false;
  sim::SecondMasterConfig second_master;
  // Share one compiled controller stack across many drivers (the compilation
  // is const after construction). Null = compile privately, as before; the
  // fleet passes one compilation to thousands of stacks.
  std::shared_ptr<const ir::Compilation> shared_compilation;
  bool capture_waveform = false;
  // Deterministic fault injection on the simulated bus and the primary
  // EEPROM (extra EEPROMs stay ideal). Default-constructed = inactive.
  sim::FaultPlan fault_plan;
  // Retry/timeout/backoff policy; disabled by default.
  RecoveryPolicy recovery;
  // Ablations (see bench/bench_ablation.cc and DESIGN.md).
  bool ablate_no_auto_reset = false;
  bool ablate_fixed_hold_adapter = false;
  // Runtime assertion monitors synthesized from the boundary's ESI spec: a
  // BusWatcher RTL component on the bus/regfile plus a ShadowChecker FSM on
  // every boundary event. Off by default — an unmonitored driver is
  // byte-identical to one built before monitors existed.
  bool enable_monitors = false;
  // Tick limits for the bus watcher; the defaults suit the default timing
  // model (64 bus cycles stuck, ~0.7 ms handshake stall).
  monitor::BusWatcherOptions watcher;
};

struct DriverMetrics {
  bool functional = true;
  std::string note;
  sim::FrequencyStats frequency;
  double cpu_usage = 0;  // busy fraction of one core (0..1)
  double elapsed_ns = 0;
  uint64_t irq_count = 0;
  // Execution-path counters (DESIGN.md "Execution modes").
  uint64_t instructions_retired = 0;  // software-VM IR instructions executed
  uint64_t mmio_bursts = 0;           // word loops replaced by one AXI burst
  uint64_t irqs_coalesced = 0;        // up-messages drained without a new IRQ
  // Host wall-clock spent inside the software VM (the part the execution
  // tier accelerates; everything else — RTL sim, bus model — is shared).
  // Instruction throughput = instructions_retired / vm_host_seconds.
  double vm_host_seconds = 0;
  // Recovery cost of the whole driver lifetime so far.
  RecoveryCounters recovery;
  uint64_t faults_injected = 0;
  // Runtime-monitor outcome (bus watcher + shadow checker merged); all
  // zeros when monitors are disabled.
  monitor::TripCounters monitor;
};

// One-line execution-path counter summary ("instr_retired=... mmio_bursts=..."
// style, like FormatRecoveryCounters) for bench output and soak reports.
std::string FormatExecCounters(const DriverMetrics& metrics);

class HybridDriver {
 public:
  explicit HybridDriver(const HybridConfig& config);
  ~HybridDriver();

  HybridDriver(const HybridDriver&) = delete;
  HybridDriver& operator=(const HybridDriver&) = delete;

  // EEPROM operations through the full generated stack. Lengths up to 14
  // bytes (two offset bytes share the 16-byte transaction payload).
  bool Read(int offset, int length, std::vector<uint8_t>* out);
  bool Write(int offset, const std::vector<uint8_t>& data);
  // Same, addressing a specific device on the bus.
  bool ReadFrom(int bus_address, int offset, int length, std::vector<uint8_t>* out);
  bool WriteTo(int bus_address, int offset, const std::vector<uint8_t>& data);

  // Runs `ops` consecutive reads of `length` bytes and reports the measured
  // SCL frequency, CPU usage and interrupt count (paper sections 5.2/5.3).
  DriverMetrics MeasureReads(int ops, int length);

  // Hardware soft reset + coroutine reinit (the supervision ladder's third
  // rung): returns every hardware FSM, the register file, the bus adapter
  // and every software layer to its initial state, clears the wedged flag
  // and releases the bus. Device-internal state (e.g. an EEPROM mid-read) is
  // NOT touched — run bus recovery first if the device may be mid-transfer.
  void SoftReset();
  // Re-probe after a reset: a single-byte read from the device, bypassing
  // the retry ladder. True if the device answered with data.
  bool Probe();

  // Multi-master rung: waits until the bus has been idle (both lines high)
  // for two consecutive polls or bus_free_timeout_ns elapsed. A no-op
  // returning true unless a second master is configured, so the supervised
  // single-master timeline is untouched. Counts arbitration_waits when the
  // wait actually found the bus owned.
  bool WaitBusFree();
  // Mux rung: programs the mux's channel mask for the device segment and
  // verifies it by read-back, retrying per the recovery policy. Cached until
  // the next SoftReset; a no-op returning true without a mux.
  bool EnsureMuxSelected();

  sim::I2cBus& bus() { return bus_; }
  sim::Eeprom24aa512& eeprom() { return *eeprom_; }
  sim::Eeprom24aa512& extra_eeprom(int index) { return *extra_eeproms_[index]; }
  // Topology components; null/empty unless configured.
  sim::I2cMux* mux() { return mux_.get(); }
  sim::SecondMaster* second_master() { return second_master_.get(); }
  sim::MfdRegFileDevice& mfd(int index) { return *mfds_[index]; }
  sim::I2cBus& downstream_bus(int channel) { return *downstream_buses_[channel]; }
  double now_ns() const;
  double cpu_busy_ns() const { return cpu_busy_ns_; }
  uint64_t irq_count() const { return irq_count_; }
  uint64_t mmio_bursts() const { return mmio_bursts_; }
  uint64_t irqs_coalesced() const { return irqs_coalesced_; }
  // Cumulative IR instructions executed by the software layers.
  uint64_t instructions_retired() const { return sw_.TotalSteps(); }
  // Configured execution tier for the software layers (the effective tier
  // degrades to threaded when the compiled tier is unavailable).
  vm::ExecMode exec_mode() const { return sw_.exec_mode(); }
  // Cumulative host wall-clock spent inside the software VM.
  double vm_host_seconds() const;
  // The live fault plan (the driver's own copy of config.fault_plan; its
  // trace grows as faults fire).
  sim::FaultPlan& fault_plan() { return fault_plan_; }
  const RecoveryCounters& recovery_counters() const { return recovery_counters_; }
  // CE_RES_* code of the last completed operation attempt.
  int32_t last_status() const { return last_status_; }
  // True once the stack missed a hardware deadline mid-protocol; every
  // further operation fails fast instead of hanging.
  bool wedged() const { return wedged_; }

  // -- Runtime monitors ---------------------------------------------------
  bool monitors_enabled() const { return shadow_ != nullptr; }
  // Bus watcher + shadow checker trips, merged.
  monitor::TripCounters MonitorCounters() const;
  // Trips observed since the last call (the supervisor's escalation input;
  // see Supervisor::PollMonitors). Always 0 with monitors disabled.
  uint64_t ConsumeMonitorTrips();
  const monitor::ShadowChecker* shadow_checker() const { return shadow_.get(); }
  const monitor::BusWatcher* bus_watcher() const { return watcher_.get(); }

  // The software stack's VM, exposed for instrumentation (trace recording,
  // observers). Mutating its processes mid-operation voids the warranty.
  vm::System& software_system() { return sw_; }

  // The modules placed in hardware for this split (resource estimation).
  std::vector<const ir::Module*> HardwareModules() const;
  // Boundary message sizes in 32-bit words (MMIO register file sizing).
  int down_words() const { return down_words_; }
  int up_words() const { return up_words_; }
  const ir::Compilation& compilation() const { return *compilation_; }

 private:
  // Runs the software stack, accumulating host time into vm_host_ticks_
  // (the tier-sensitive share of driver cost). Timed with the cheapest
  // monotonic source available (rdtsc on x86): one VM slice per boundary
  // pump is tens of nanoseconds, so a steady_clock pair would be a
  // measurable fraction of the quantity under measurement.
  vm::SystemState RunSw();
  // Advances the RTL domain to the software timeline.
  void SyncRtl();
  // Adds busy CPU time (also advances the software clock).
  void Busy(double ns);
  // Modeled cost of an AXI burst of `words` beats whose first beat costs
  // `first_ns` (single-access cost) and later beats pipeline.
  double BurstCost(double first_ns, int words) const;
  // Advances wall time without CPU work (sleeping between retries); the
  // hardware — including a device write cycle — keeps running.
  void Idle(double ns);
  // Bills the shadow checker's per-event cost (a bounds compare per message
  // word plus loop overhead) against the modeled CPU — the checker is driver
  // software and pays for its instructions like any other code path.
  void ShadowBusy(size_t words);
  // One step of the host event loop; returns true when the top-level result
  // message became available (stored in result_) or the hardware missed its
  // deadline (pump_dead_).
  bool PumpOnce();
  // Waits until the register file has an up-message (polling or IRQ).
  bool WaitUpMessage();
  // Runs a full operation: sends `request` into the top of the stack and
  // returns the stack's reply.
  bool RunOperation(const std::vector<int32_t>& request, std::vector<int32_t>* reply);
  // RunOperation wrapped in the configured retry/backoff/deadline policy.
  bool Transact(const std::vector<int32_t>& request, std::vector<int32_t>* reply);
  // One mux select + read-back verification round trip.
  bool SelectMuxOnce(int mask);
  // The 9-clock-pulse + STOP bus-recovery sequence, driven over the
  // driver-owned bus driver (i2c_recover_bus style).
  void RecoverBus();

  HybridConfig config_;
  std::shared_ptr<const ir::Compilation> compilation_;

  // RTL side.
  rtl::RtlSystem rtl_;
  sim::I2cBus bus_;
  std::unique_ptr<sim::BusAdapter> adapter_;
  std::unique_ptr<sim::Eeprom24aa512> eeprom_;
  std::vector<std::unique_ptr<sim::Eeprom24aa512>> extra_eeproms_;
  // Topology (all empty/null on a point-to-point bus).
  std::vector<std::unique_ptr<sim::I2cBus>> downstream_buses_;
  std::unique_ptr<sim::I2cMux> mux_;
  std::unique_ptr<sim::SecondMaster> second_master_;
  std::vector<std::unique_ptr<sim::MfdRegFileDevice>> mfds_;
  bool mux_selected_ = false;
  std::unique_ptr<rtl::MmioRegfile> regfile_;
  std::vector<std::unique_ptr<rtl::RtlModule>> hw_modules_;

  // Software side.
  vm::System sw_;
  bool sw_empty_ = false;       // whole stack in hardware
  vm::PortRef top_in_;          // CWorld -> CEepDriver injection point
  vm::PortRef top_out_;         // CEepDriver -> CWorld result point
  vm::PortRef boundary_down_;   // software layer's send into hardware
  vm::PortRef boundary_up_;     // software layer's receive from hardware
  uint64_t last_sw_steps_ = 0;

  double sw_time_ns_ = 0;
  double cpu_busy_ns_ = 0;
  uint64_t vm_host_ticks_ = 0;
  uint64_t irq_count_ = 0;
  uint64_t mmio_bursts_ = 0;
  uint64_t irqs_coalesced_ = 0;
  // End of the post-IRQ polled drain window (interrupt coalescing).
  double irq_drain_deadline_ns_ = 0;
  int down_words_ = 0;
  int up_words_ = 0;

  // Runtime monitors (null unless config.enable_monitors).
  monitor::MonitorSpec monitor_spec_;
  std::unique_ptr<monitor::ShadowChecker> shadow_;
  std::unique_ptr<monitor::BusWatcher> watcher_;
  uint64_t consumed_monitor_trips_ = 0;

  // Fault injection and recovery.
  sim::FaultPlan fault_plan_;
  RecoveryCounters recovery_counters_;
  int recovery_driver_id_ = -1;
  int32_t last_status_ = 0;
  bool wedged_ = false;
  bool pump_dead_ = false;
};

}  // namespace efeu::driver

#endif  // SRC_DRIVER_HYBRID_H_
