// FPGA resource estimation (paper section 5.4): Look-Up Table and Flip-Flop
// counts per generated module, derived from the same IR the Verilog backend
// prints — register bits from the frame slots and port registers, logic from
// the instruction mix and FSM state decode. The coefficients are calibrated
// against the paper's Vivado reports (Figures 12 and 13); EXPERIMENTS.md
// records the calibration.

#ifndef SRC_DRIVER_RESOURCES_H_
#define SRC_DRIVER_RESOURCES_H_

#include <map>
#include <string>
#include <vector>

#include "src/driver/recovery.h"
#include "src/ir/ir.h"

namespace efeu::driver {

struct ResourceEstimate {
  int luts = 0;
  int ffs = 0;

  ResourceEstimate& operator+=(const ResourceEstimate& other) {
    luts += other.luts;
    ffs += other.ffs;
    return *this;
  }
};

ResourceEstimate EstimateModule(const ir::Module& module);

// The generated MMIO-AXI Lite register file for a boundary with the given
// message sizes (in 32-bit words).
ResourceEstimate EstimateAxiLiteDriver(int down_words, int up_words);

// The hand-written bus adapter (106 lines of VHDL in the paper).
ResourceEstimate EstimateBusAdapter();

// The Xilinx AXI IIC IP baseline (0.33% LUTs / 0.16% FFs of the XCZU devices
// per the paper).
ResourceEstimate EstimateXilinxIp();

// The hardware-side recovery watchdog a robust split needs: a deadline
// counter on the up-message path plus the 9-pulse bus-recovery sequencer
// (roughly the i2c_recover_bus portion of a Linux adapter, in logic).
ResourceEstimate EstimateRecoveryWatchdog(int up_words);

// One-line human-readable rendering of the recovery counters for benchmark
// tables and demos.
std::string FormatRecoveryCounters(const RecoveryCounters& counters);

// Total programmable-logic resources of the evaluation MPSoC (ZU9EG class).
inline constexpr int kFpgaTotalLuts = 117120;
inline constexpr int kFpgaTotalFfs = 234240;

}  // namespace efeu::driver

#endif  // SRC_DRIVER_RESOURCES_H_
