// Semantic model of an ESI specification (the "Efeu System Information"):
// layers, enums, interfaces and directed channels. This is the registry every
// later stage consults — the ESM type checker to resolve talk/read stubs and
// interface struct types, the backends to lay out messages and MMIO register
// maps, and the runtime to wire processes together.

#ifndef SRC_ESI_SYSTEM_INFO_H_
#define SRC_ESI_SYSTEM_INFO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/esi/ast.h"
#include "src/esi/type.h"
#include "src/support/diagnostics.h"
#include "src/support/source_buffer.h"

namespace efeu::esi {

struct EnumInfo {
  std::string name;
  std::vector<std::string> members;

  // Returns the member's ordinal value, or -1 if absent.
  int ValueOf(std::string_view member) const;
};

struct FieldInfo {
  std::string name;
  Type type;
  // Offset of the first int32 slot of this field within the flattened message.
  int flat_offset = 0;
};

// One direction of an interface: a message type carried from layer `from` to
// layer `to`.
struct ChannelInfo {
  std::string from;
  std::string to;
  std::vector<FieldInfo> fields;
  // Total number of int32 slots in a flattened message.
  int flat_size = 0;
  // Where the channel was declared in the ESI file (for lint diagnostics).
  SourceLocation location;

  // Name of the generated struct type visible in ESM, e.g. "CEepDriverToCTransaction".
  std::string MessageStructName() const { return from + "To" + to; }

  const FieldInfo* FindField(std::string_view name) const;
};

struct InterfaceInfo {
  std::string first;
  std::string second;
  // Channel first -> second (declared with "=>"); may be absent for one-way
  // interfaces.
  std::optional<ChannelInfo> to_second;
  // Channel second -> first (declared with "<=").
  std::optional<ChannelInfo> to_first;

  bool Connects(std::string_view a, std::string_view b) const {
    return (first == a && second == b) || (first == b && second == a);
  }
};

class SystemInfo {
 public:
  // Runs semantic analysis over a parsed file. Returns nullopt (with
  // diagnostics) on error.
  static std::optional<SystemInfo> Build(const EsiFile& file, const SourceBuffer& buffer,
                                         DiagnosticEngine& diag);

  const std::vector<std::string>& layers() const { return layers_; }
  const std::vector<EnumInfo>& enums() const { return enums_; }
  const std::vector<InterfaceInfo>& interfaces() const { return interfaces_; }

  bool HasLayer(std::string_view name) const;
  const EnumInfo* FindEnum(std::string_view name) const;
  // Looks a member name up across all enums (member names are globally unique,
  // like Promela mtype constants). Sets *value to the ordinal when found.
  const EnumInfo* FindEnumByMember(std::string_view member, int* value) const;
  const InterfaceInfo* FindInterface(std::string_view a, std::string_view b) const;
  // Directed lookup: the channel carrying messages from `from` to `to`.
  const ChannelInfo* FindChannel(std::string_view from, std::string_view to) const;
  // Finds the channel whose generated struct name is `struct_name`.
  const ChannelInfo* FindChannelByStructName(std::string_view struct_name) const;

  // All layers adjacent to `layer` through some interface.
  std::vector<std::string> Neighbors(std::string_view layer) const;

 private:
  std::vector<std::string> layers_;
  std::vector<EnumInfo> enums_;
  std::vector<InterfaceInfo> interfaces_;
};

}  // namespace efeu::esi

#endif  // SRC_ESI_SYSTEM_INFO_H_
