// Recursive-descent parser for ESI.

#ifndef SRC_ESI_PARSER_H_
#define SRC_ESI_PARSER_H_

#include <optional>

#include "src/esi/ast.h"
#include "src/esi/token.h"
#include "src/support/diagnostics.h"
#include "src/support/source_buffer.h"

namespace efeu::esi {

class Parser {
 public:
  Parser(const SourceBuffer& buffer, DiagnosticEngine& diag);

  // Parses the whole buffer. Returns nullopt after reporting errors.
  std::optional<EsiFile> ParseFile();

 private:
  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Match(TokenKind kind);
  bool Expect(TokenKind kind, const char* context);

  bool ParseLayer(EsiFile& file);
  bool ParseEnum(EsiFile& file);
  bool ParseInterface(EsiFile& file);
  bool ParseChannel(ChannelDecl& channel);
  bool ParseField(FieldDecl& field);
  std::optional<Type> ParseType();

  const SourceBuffer& buffer_;
  DiagnosticEngine& diag_;
  std::vector<Token> tokens_;
  size_t index_ = 0;
};

// Convenience wrapper: lex + parse.
std::optional<EsiFile> ParseEsi(const SourceBuffer& buffer, DiagnosticEngine& diag);

}  // namespace efeu::esi

#endif  // SRC_ESI_PARSER_H_
