#include "src/esi/type.h"

namespace efeu {

int Type::BitWidth() const {
  switch (kind) {
    case ScalarKind::kBit:
    case ScalarKind::kBool:
      return 1;
    case ScalarKind::kU8:
    case ScalarKind::kEnum:
      return 8;
    case ScalarKind::kI16:
      return 16;
    case ScalarKind::kI32:
      return 32;
  }
  return 32;
}

int32_t Type::Truncate(int64_t value) const {
  switch (kind) {
    case ScalarKind::kBit:
    case ScalarKind::kBool:
      return value != 0 ? 1 : 0;
    case ScalarKind::kU8:
    case ScalarKind::kEnum:
      return static_cast<int32_t>(static_cast<uint8_t>(value));
    case ScalarKind::kI16:
      return static_cast<int32_t>(static_cast<int16_t>(value));
    case ScalarKind::kI32:
      return static_cast<int32_t>(value);
  }
  return static_cast<int32_t>(value);
}

std::string Type::ToString() const {
  std::string base;
  switch (kind) {
    case ScalarKind::kBit:
      base = "bit";
      break;
    case ScalarKind::kBool:
      base = "bool";
      break;
    case ScalarKind::kU8:
      base = "u8";
      break;
    case ScalarKind::kI16:
      base = "i16";
      break;
    case ScalarKind::kI32:
      base = "i32";
      break;
    case ScalarKind::kEnum:
      base = enum_name;
      break;
  }
  if (IsArray()) {
    base += "[" + std::to_string(array_size) + "]";
  }
  return base;
}

}  // namespace efeu
