// AST for ESI files: layer declarations, enums, and interfaces made of two
// directed channels (paper Figure 4).

#ifndef SRC_ESI_AST_H_
#define SRC_ESI_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "src/esi/type.h"
#include "src/support/source_location.h"

namespace efeu::esi {

struct LayerDecl {
  std::string name;
  SourceLocation location;
};

struct EnumDecl {
  std::string name;
  std::vector<std::string> members;
  SourceLocation location;
};

struct FieldDecl {
  Type type;
  std::string name;
  SourceLocation location;
};

// In `interface <A, B>`, `=>` declares the channel A -> B and `<=` the channel
// B -> A.
enum class ChannelDirection {
  kFirstToSecond,  // =>
  kSecondToFirst,  // <=
};

struct ChannelDecl {
  ChannelDirection direction = ChannelDirection::kFirstToSecond;
  std::vector<FieldDecl> fields;
  SourceLocation location;
};

struct InterfaceDecl {
  std::string first;
  std::string second;
  std::vector<ChannelDecl> channels;
  SourceLocation location;
};

struct EsiFile {
  std::vector<LayerDecl> layers;
  std::vector<EnumDecl> enums;
  std::vector<InterfaceDecl> interfaces;
};

}  // namespace efeu::esi

#endif  // SRC_ESI_AST_H_
