#include "src/esi/system_info.h"

#include <algorithm>
#include <set>

#include "src/support/reserved_words.h"

namespace efeu::esi {

int EnumInfo::ValueOf(std::string_view member) const {
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i] == member) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const FieldInfo* ChannelInfo::FindField(std::string_view name) const {
  for (const FieldInfo& field : fields) {
    if (field.name == name) {
      return &field;
    }
  }
  return nullptr;
}

namespace {

// Lays out the channel's fields into flat int32 slots and validates them.
bool BuildChannel(const SystemInfo& info, const ChannelDecl& decl, std::string from,
                  std::string to, const SourceBuffer& buffer, DiagnosticEngine& diag,
                  ChannelInfo& out) {
  out.from = std::move(from);
  out.to = std::move(to);
  out.flat_size = 0;
  out.location = decl.location;
  std::set<std::string> seen;
  for (const FieldDecl& field : decl.fields) {
    if (!seen.insert(field.name).second) {
      diag.Error(buffer, field.location, "duplicate field name '" + field.name + "'");
      return false;
    }
    if (IsPromelaReservedWord(field.name)) {
      diag.Error(buffer, field.location,
                 "field name '" + field.name + "' is a reserved word");
      return false;
    }
    Type type = field.type;
    if (type.IsEnum() && info.FindEnum(type.enum_name) == nullptr) {
      diag.Error(buffer, field.location, "unknown type '" + type.enum_name + "'");
      return false;
    }
    FieldInfo field_info;
    field_info.name = field.name;
    field_info.type = type;
    field_info.flat_offset = out.flat_size;
    out.flat_size += type.FlatSize();
    out.fields.push_back(std::move(field_info));
  }
  return true;
}

}  // namespace

std::optional<SystemInfo> SystemInfo::Build(const EsiFile& file, const SourceBuffer& buffer,
                                            DiagnosticEngine& diag) {
  SystemInfo info;

  // Layers.
  for (const LayerDecl& layer : file.layers) {
    if (info.HasLayer(layer.name)) {
      diag.Error(buffer, layer.location, "duplicate layer '" + layer.name + "'");
      return std::nullopt;
    }
    if (IsPromelaReservedWord(layer.name)) {
      diag.Error(buffer, layer.location, "layer name '" + layer.name + "' is a reserved word");
      return std::nullopt;
    }
    info.layers_.push_back(layer.name);
  }

  // Enums; member names are globally unique (they become Promela mtype
  // constants, which share one namespace).
  std::set<std::string> all_members;
  for (const EnumDecl& decl : file.enums) {
    if (info.FindEnum(decl.name) != nullptr) {
      diag.Error(buffer, decl.location, "duplicate enum '" + decl.name + "'");
      return std::nullopt;
    }
    EnumInfo enum_info;
    enum_info.name = decl.name;
    for (const std::string& member : decl.members) {
      if (!all_members.insert(member).second) {
        diag.Error(buffer, decl.location,
                   "enum member '" + member + "' already defined in another enum");
        return std::nullopt;
      }
      if (IsPromelaReservedWord(member)) {
        diag.Error(buffer, decl.location, "enum member '" + member + "' is a reserved word");
        return std::nullopt;
      }
      enum_info.members.push_back(member);
    }
    info.enums_.push_back(std::move(enum_info));
  }

  // Interfaces.
  for (const InterfaceDecl& decl : file.interfaces) {
    if (!info.HasLayer(decl.first)) {
      diag.Error(buffer, decl.location, "interface references undeclared layer '" + decl.first + "'");
      return std::nullopt;
    }
    if (!info.HasLayer(decl.second)) {
      diag.Error(buffer, decl.location,
                 "interface references undeclared layer '" + decl.second + "'");
      return std::nullopt;
    }
    if (decl.first == decl.second) {
      diag.Error(buffer, decl.location, "interface endpoints must be distinct layers");
      return std::nullopt;
    }
    if (info.FindInterface(decl.first, decl.second) != nullptr) {
      diag.Error(buffer, decl.location,
                 "duplicate interface between '" + decl.first + "' and '" + decl.second + "'");
      return std::nullopt;
    }
    InterfaceInfo iface;
    iface.first = decl.first;
    iface.second = decl.second;
    for (const ChannelDecl& channel : decl.channels) {
      ChannelInfo channel_info;
      bool is_forward = channel.direction == ChannelDirection::kFirstToSecond;
      std::string from = is_forward ? decl.first : decl.second;
      std::string to = is_forward ? decl.second : decl.first;
      if (!BuildChannel(info, channel, from, to, buffer, diag, channel_info)) {
        return std::nullopt;
      }
      std::optional<ChannelInfo>& slot = is_forward ? iface.to_second : iface.to_first;
      if (slot.has_value()) {
        diag.Error(buffer, channel.location,
                   "interface declares two channels in the same direction");
        return std::nullopt;
      }
      slot = std::move(channel_info);
    }
    if (!iface.to_second.has_value() && !iface.to_first.has_value()) {
      diag.Error(buffer, decl.location, "interface declares no channels");
      return std::nullopt;
    }
    info.interfaces_.push_back(std::move(iface));
  }

  return info;
}

bool SystemInfo::HasLayer(std::string_view name) const {
  return std::find(layers_.begin(), layers_.end(), name) != layers_.end();
}

const EnumInfo* SystemInfo::FindEnum(std::string_view name) const {
  for (const EnumInfo& info : enums_) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

const EnumInfo* SystemInfo::FindEnumByMember(std::string_view member, int* value) const {
  for (const EnumInfo& info : enums_) {
    int v = info.ValueOf(member);
    if (v >= 0) {
      if (value != nullptr) {
        *value = v;
      }
      return &info;
    }
  }
  return nullptr;
}

const InterfaceInfo* SystemInfo::FindInterface(std::string_view a, std::string_view b) const {
  for (const InterfaceInfo& iface : interfaces_) {
    if (iface.Connects(a, b)) {
      return &iface;
    }
  }
  return nullptr;
}

const ChannelInfo* SystemInfo::FindChannel(std::string_view from, std::string_view to) const {
  const InterfaceInfo* iface = FindInterface(from, to);
  if (iface == nullptr) {
    return nullptr;
  }
  if (iface->first == from) {
    return iface->to_second.has_value() ? &*iface->to_second : nullptr;
  }
  return iface->to_first.has_value() ? &*iface->to_first : nullptr;
}

const ChannelInfo* SystemInfo::FindChannelByStructName(std::string_view struct_name) const {
  for (const InterfaceInfo& iface : interfaces_) {
    for (const std::optional<ChannelInfo>* slot : {&iface.to_second, &iface.to_first}) {
      if (slot->has_value() && (*slot)->MessageStructName() == struct_name) {
        return &**slot;
      }
    }
  }
  return nullptr;
}

std::vector<std::string> SystemInfo::Neighbors(std::string_view layer) const {
  std::vector<std::string> result;
  for (const InterfaceInfo& iface : interfaces_) {
    if (iface.first == layer) {
      result.push_back(iface.second);
    } else if (iface.second == layer) {
      result.push_back(iface.first);
    }
  }
  return result;
}

}  // namespace efeu::esi
