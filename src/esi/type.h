// The value type system shared by ESI interface fields and ESM variables.
// Supported types follow the paper: bit/bool, unsigned byte (u8), 16- and
// 32-bit integers (i16/i32), enumerations, and 1-dimensional arrays.

#ifndef SRC_ESI_TYPE_H_
#define SRC_ESI_TYPE_H_

#include <cstdint>
#include <string>

namespace efeu {

enum class ScalarKind {
  kBit,
  kBool,
  kU8,
  kI16,
  kI32,
  kEnum,
};

struct Type {
  ScalarKind kind = ScalarKind::kI32;
  // Set when kind == kEnum.
  std::string enum_name;
  // 0 means scalar; > 0 means a 1-D array of that many elements.
  int array_size = 0;

  bool IsArray() const { return array_size > 0; }
  bool IsEnum() const { return kind == ScalarKind::kEnum; }
  bool IsBoolish() const { return kind == ScalarKind::kBit || kind == ScalarKind::kBool; }

  // Number of int32 slots a value of this type occupies when flattened into a
  // message or a stack frame.
  int FlatSize() const { return IsArray() ? array_size : 1; }

  // Storage width in bits of one element; drives value truncation semantics
  // and the hardware resource estimate. Enums are conservatively 8 bits wide
  // (they are bytes in the generated C and Promela mtype).
  int BitWidth() const;

  // Truncates `value` to this type's storage, mirroring C assignment to the
  // corresponding narrow type (u8 wraps, i16 sign-extends, bit/bool -> 0/1).
  int32_t Truncate(int64_t value) const;

  std::string ToString() const;

  bool operator==(const Type& other) const {
    return kind == other.kind && enum_name == other.enum_name && array_size == other.array_size;
  }

  static Type Bit() { return Type{ScalarKind::kBit, "", 0}; }
  static Type Bool() { return Type{ScalarKind::kBool, "", 0}; }
  static Type U8() { return Type{ScalarKind::kU8, "", 0}; }
  static Type I16() { return Type{ScalarKind::kI16, "", 0}; }
  static Type I32() { return Type{ScalarKind::kI32, "", 0}; }
  static Type Enum(std::string name) { return Type{ScalarKind::kEnum, std::move(name), 0}; }
  Type Array(int size) const {
    Type copy = *this;
    copy.array_size = size;
    return copy;
  }
  Type Element() const {
    Type copy = *this;
    copy.array_size = 0;
    return copy;
  }
};

}  // namespace efeu

#endif  // SRC_ESI_TYPE_H_
