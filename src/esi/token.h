// Tokens of the ESI interface-description language.

#ifndef SRC_ESI_TOKEN_H_
#define SRC_ESI_TOKEN_H_

#include <string>
#include <string_view>

#include "src/support/source_location.h"

namespace efeu::esi {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  // Keywords.
  kKwLayer,
  kKwEnum,
  kKwInterface,
  // Punctuation.
  kLBrace,    // {
  kRBrace,    // }
  kLBracket,  // [
  kRBracket,  // ]
  kLAngle,    // <
  kRAngle,    // >
  kComma,
  kSemicolon,
  kArrowTo,    // =>  (channel first -> second)
  kArrowFrom,  // <=  (channel second -> first)
  kError,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_value = 0;
  SourceLocation location;

  bool Is(TokenKind k) const { return kind == k; }
};

std::string_view TokenKindName(TokenKind kind);

}  // namespace efeu::esi

#endif  // SRC_ESI_TOKEN_H_
