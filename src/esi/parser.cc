#include "src/esi/parser.h"

#include <string>

#include "src/esi/lexer.h"

namespace efeu::esi {

Parser::Parser(const SourceBuffer& buffer, DiagnosticEngine& diag)
    : buffer_(buffer), diag_(diag) {
  Lexer lexer(buffer, diag);
  tokens_ = lexer.Tokenize();
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = index_ + ahead;
  if (i >= tokens_.size()) {
    i = tokens_.size() - 1;  // The trailing kEof.
  }
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& token = tokens_[index_];
  if (index_ + 1 < tokens_.size()) {
    ++index_;
  }
  return token;
}

bool Parser::Match(TokenKind kind) {
  if (Peek().Is(kind)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Expect(TokenKind kind, const char* context) {
  if (Match(kind)) {
    return true;
  }
  diag_.Error(buffer_, Peek().location,
              std::string("expected ") + std::string(TokenKindName(kind)) + " " + context +
                  ", found " + std::string(TokenKindName(Peek().kind)));
  return false;
}

std::optional<EsiFile> Parser::ParseFile() {
  EsiFile file;
  while (!Peek().Is(TokenKind::kEof)) {
    bool ok = false;
    switch (Peek().kind) {
      case TokenKind::kKwLayer:
        ok = ParseLayer(file);
        break;
      case TokenKind::kKwEnum:
        ok = ParseEnum(file);
        break;
      case TokenKind::kKwInterface:
        ok = ParseInterface(file);
        break;
      default:
        diag_.Error(buffer_, Peek().location,
                    "expected 'layer', 'enum' or 'interface' declaration, found " +
                        std::string(TokenKindName(Peek().kind)));
        break;
    }
    if (!ok) {
      return std::nullopt;
    }
  }
  return file;
}

bool Parser::ParseLayer(EsiFile& file) {
  SourceLocation loc = Peek().location;
  Advance();  // 'layer'
  if (!Peek().Is(TokenKind::kIdentifier)) {
    diag_.Error(buffer_, Peek().location, "expected layer name");
    return false;
  }
  LayerDecl layer;
  layer.name = Advance().text;
  layer.location = loc;
  file.layers.push_back(std::move(layer));
  return Expect(TokenKind::kSemicolon, "after layer declaration");
}

bool Parser::ParseEnum(EsiFile& file) {
  EnumDecl decl;
  decl.location = Peek().location;
  Advance();  // 'enum'
  if (!Peek().Is(TokenKind::kIdentifier)) {
    diag_.Error(buffer_, Peek().location, "expected enum name");
    return false;
  }
  decl.name = Advance().text;
  if (!Expect(TokenKind::kLBrace, "after enum name")) {
    return false;
  }
  while (!Peek().Is(TokenKind::kRBrace)) {
    if (!Peek().Is(TokenKind::kIdentifier)) {
      diag_.Error(buffer_, Peek().location, "expected enum member name");
      return false;
    }
    decl.members.push_back(Advance().text);
    if (!Match(TokenKind::kComma)) {
      break;
    }
  }
  if (!Expect(TokenKind::kRBrace, "to close enum")) {
    return false;
  }
  Match(TokenKind::kSemicolon);  // Trailing semicolon is optional.
  if (decl.members.empty()) {
    diag_.Error(buffer_, decl.location, "enum '" + decl.name + "' has no members");
    return false;
  }
  file.enums.push_back(std::move(decl));
  return true;
}

bool Parser::ParseInterface(EsiFile& file) {
  InterfaceDecl decl;
  decl.location = Peek().location;
  Advance();  // 'interface'
  if (!Expect(TokenKind::kLAngle, "after 'interface'")) {
    return false;
  }
  if (!Peek().Is(TokenKind::kIdentifier)) {
    diag_.Error(buffer_, Peek().location, "expected first layer name in interface");
    return false;
  }
  decl.first = Advance().text;
  if (!Expect(TokenKind::kComma, "between interface layer names")) {
    return false;
  }
  if (!Peek().Is(TokenKind::kIdentifier)) {
    diag_.Error(buffer_, Peek().location, "expected second layer name in interface");
    return false;
  }
  decl.second = Advance().text;
  if (!Expect(TokenKind::kRAngle, "after interface layer names") ||
      !Expect(TokenKind::kLBrace, "to open interface body")) {
    return false;
  }
  while (!Peek().Is(TokenKind::kRBrace)) {
    ChannelDecl channel;
    if (!ParseChannel(channel)) {
      return false;
    }
    decl.channels.push_back(std::move(channel));
    if (!Match(TokenKind::kComma)) {
      break;
    }
  }
  if (!Expect(TokenKind::kRBrace, "to close interface")) {
    return false;
  }
  Match(TokenKind::kSemicolon);
  file.interfaces.push_back(std::move(decl));
  return true;
}

bool Parser::ParseChannel(ChannelDecl& channel) {
  channel.location = Peek().location;
  if (Match(TokenKind::kArrowTo)) {
    channel.direction = ChannelDirection::kFirstToSecond;
  } else if (Match(TokenKind::kArrowFrom)) {
    channel.direction = ChannelDirection::kSecondToFirst;
  } else {
    diag_.Error(buffer_, Peek().location, "expected '=>' or '<=' to start a channel");
    return false;
  }
  if (!Expect(TokenKind::kLBrace, "to open channel body")) {
    return false;
  }
  while (!Peek().Is(TokenKind::kRBrace)) {
    FieldDecl field;
    if (!ParseField(field)) {
      return false;
    }
    channel.fields.push_back(std::move(field));
  }
  return Expect(TokenKind::kRBrace, "to close channel");
}

bool Parser::ParseField(FieldDecl& field) {
  field.location = Peek().location;
  std::optional<Type> type = ParseType();
  if (!type.has_value()) {
    return false;
  }
  field.type = *type;
  if (!Peek().Is(TokenKind::kIdentifier)) {
    diag_.Error(buffer_, Peek().location, "expected field name");
    return false;
  }
  field.name = Advance().text;
  if (Match(TokenKind::kLBracket)) {
    if (!Peek().Is(TokenKind::kIntLiteral)) {
      diag_.Error(buffer_, Peek().location, "expected array size");
      return false;
    }
    int64_t size = Advance().int_value;
    if (size < 1 || size > 1024) {
      diag_.Error(buffer_, field.location, "array size must be between 1 and 1024");
      return false;
    }
    field.type.array_size = static_cast<int>(size);
    if (!Expect(TokenKind::kRBracket, "after array size")) {
      return false;
    }
  }
  return Expect(TokenKind::kSemicolon, "after field declaration");
}

std::optional<Type> Parser::ParseType() {
  if (!Peek().Is(TokenKind::kIdentifier)) {
    diag_.Error(buffer_, Peek().location, "expected type name");
    return std::nullopt;
  }
  std::string name = Advance().text;
  if (name == "bit") {
    return Type::Bit();
  }
  if (name == "bool") {
    return Type::Bool();
  }
  if (name == "u8") {
    return Type::U8();
  }
  if (name == "i16") {
    return Type::I16();
  }
  if (name == "i32") {
    return Type::I32();
  }
  // Anything else is resolved as an enum reference during semantic analysis.
  return Type::Enum(name);
}

std::optional<EsiFile> ParseEsi(const SourceBuffer& buffer, DiagnosticEngine& diag) {
  Parser parser(buffer, diag);
  return parser.ParseFile();
}

}  // namespace efeu::esi
