#include "src/esi/lexer.h"

#include <cctype>

namespace efeu::esi {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of file";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kKwLayer:
      return "'layer'";
    case TokenKind::kKwEnum:
      return "'enum'";
    case TokenKind::kKwInterface:
      return "'interface'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLAngle:
      return "'<'";
    case TokenKind::kRAngle:
      return "'>'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kArrowTo:
      return "'=>'";
    case TokenKind::kArrowFrom:
      return "'<='";
    case TokenKind::kError:
      return "invalid token";
  }
  return "unknown";
}

char Lexer::Peek(size_t ahead) const {
  std::string_view text = buffer_.text();
  return pos_ + ahead < text.size() ? text[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = Peek();
  ++pos_;
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::AtEnd() const { return pos_ >= buffer_.text().size(); }

SourceLocation Lexer::Here() const {
  return SourceLocation{line_, column_, static_cast<uint32_t>(pos_)};
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') {
        Advance();
      }
    } else if (c == '/' && Peek(1) == '*') {
      SourceLocation start = Here();
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
        Advance();
      }
      if (AtEnd()) {
        diag_.Error(buffer_, start, "unterminated block comment");
        return;
      }
      Advance();
      Advance();
    } else {
      return;
    }
  }
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  Token token;
  token.location = Here();
  if (AtEnd()) {
    token.kind = TokenKind::kEof;
    return token;
  }
  char c = Peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string text;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
      text += Advance();
    }
    token.text = text;
    if (text == "layer") {
      token.kind = TokenKind::kKwLayer;
    } else if (text == "enum") {
      token.kind = TokenKind::kKwEnum;
    } else if (text == "interface") {
      token.kind = TokenKind::kKwInterface;
    } else {
      token.kind = TokenKind::kIdentifier;
    }
    return token;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    int64_t value = 0;
    std::string text;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      char digit = Advance();
      text += digit;
      value = value * 10 + (digit - '0');
    }
    token.kind = TokenKind::kIntLiteral;
    token.text = text;
    token.int_value = value;
    return token;
  }
  switch (c) {
    case '{':
      Advance();
      token.kind = TokenKind::kLBrace;
      return token;
    case '}':
      Advance();
      token.kind = TokenKind::kRBrace;
      return token;
    case '[':
      Advance();
      token.kind = TokenKind::kLBracket;
      return token;
    case ']':
      Advance();
      token.kind = TokenKind::kRBracket;
      return token;
    case ',':
      Advance();
      token.kind = TokenKind::kComma;
      return token;
    case ';':
      Advance();
      token.kind = TokenKind::kSemicolon;
      return token;
    case '<':
      Advance();
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kArrowFrom;
      } else {
        token.kind = TokenKind::kLAngle;
      }
      return token;
    case '>':
      Advance();
      token.kind = TokenKind::kRAngle;
      return token;
    case '=':
      Advance();
      if (Peek() == '>') {
        Advance();
        token.kind = TokenKind::kArrowTo;
        return token;
      }
      break;
    default:
      break;
  }
  diag_.Error(buffer_, token.location, std::string("unexpected character '") + c + "'");
  Advance();
  token.kind = TokenKind::kError;
  token.text = std::string(1, c);
  return token;
}

std::vector<Token> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Token token = Next();
    bool done = token.Is(TokenKind::kEof);
    tokens.push_back(std::move(token));
    if (done) {
      break;
    }
  }
  return tokens;
}

}  // namespace efeu::esi
