// Hand-written lexer for ESI. Skips // and /* */ comments, tracks source
// locations for diagnostics.

#ifndef SRC_ESI_LEXER_H_
#define SRC_ESI_LEXER_H_

#include <vector>

#include "src/esi/token.h"
#include "src/support/diagnostics.h"
#include "src/support/source_buffer.h"

namespace efeu::esi {

class Lexer {
 public:
  Lexer(const SourceBuffer& buffer, DiagnosticEngine& diag) : buffer_(buffer), diag_(diag) {}

  // Tokenizes the whole buffer. The returned vector always ends with kEof.
  std::vector<Token> Tokenize();

 private:
  Token Next();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const;
  void SkipWhitespaceAndComments();
  SourceLocation Here() const;

  const SourceBuffer& buffer_;
  DiagnosticEngine& diag_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace efeu::esi

#endif  // SRC_ESI_LEXER_H_
