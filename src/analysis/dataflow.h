// Forward dataflow over a lowered ir::Module: a per-slot-record interval
// domain plus a may-uninitialized bit, with branch-pruned block feasibility.
// The lint rules consume it through DataflowObserver callbacks; every
// interval-based rule fires only on *definite* violations (the proven range
// lies entirely outside the legal one), so over-approximation can only cause
// false negatives, never false positives.

#ifndef SRC_ANALYSIS_DATAFLOW_H_
#define SRC_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "src/ir/ir.h"

namespace efeu::analysis {

// A non-empty range of int32 values, tracked in int64 so transfer functions
// can detect wraparound (the executor computes in int64 and casts back).
struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;

  static Interval Exact(int64_t v);
  static Interval Of(int64_t lo, int64_t hi);
  // The whole int32 range.
  static Interval Full();
  // The values representable by `type`'s storage (after truncation):
  // bit/bool [0,1], u8/enum [0,255], i16 [-32768,32767], i32 full.
  static Interval Storage(const Type& type);

  bool IsExact() const { return lo == hi; }
  bool Contains(int64_t v) const { return lo <= v && v <= hi; }
  bool Intersects(const Interval& other) const { return lo <= other.hi && other.lo <= hi; }
  bool DefinitelyZero() const { return lo == 0 && hi == 0; }
  bool DefinitelyNonZero() const { return lo > 0 || hi < 0; }

  bool operator==(const Interval& other) const { return lo == other.lo && hi == other.hi; }
};

Interval Join(const Interval& a, const Interval& b);
// The result range of truncating every value in `v` to `type` (mirrors
// Type::Truncate, including u8/i16 wraparound).
Interval TruncateInterval(const Interval& v, const Type& type);
Interval EvalUnOpInterval(esm::UnaryOp op, const Interval& a);
Interval EvalBinOpInterval(esm::BinaryOp op, const Interval& a, const Interval& b);

// Abstract value of one slot *record* (one ir::SlotInfo entry). Arrays are
// handled per-base: all elements share one record, writes to any element
// initialize it and join into its interval.
struct SlotState {
  Interval interval = Interval::Exact(0);  // Frames start zeroed.
  // No write (or message arrival) has definitely happened yet. The zero the
  // executor supplies is still a *value*, so this is a lint fact, not an
  // undefined-behaviour fact.
  bool maybe_uninit = true;

  bool operator==(const SlotState& other) const {
    return interval == other.interval && maybe_uninit == other.maybe_uninit;
  }
};

struct BlockState {
  std::vector<SlotState> records;  // One per module.slots entry.
  // False until some feasible path reaches the block. Branches whose
  // condition interval is definite propagate to only one successor, so this
  // is strictly stronger than graph reachability.
  bool feasible = false;
};

// Rule hooks invoked during the post-fixpoint replay of every feasible block.
// `record` indexes module.slots.
class DataflowObserver {
 public:
  virtual ~DataflowObserver() = default;
  // A kVar record is read while its maybe_uninit bit is still set.
  virtual void OnUninitRead(int block, const ir::Inst& inst, int record) {}
  // A truncating write whose source interval has no overlap with the
  // destination type's storage range (every value changes).
  virtual void OnTruncationLoss(int block, const ir::Inst& inst, int record,
                                const Interval& src, const Type& type) {}
  // A kLoadIdx/kStoreIdx whose index interval lies entirely outside
  // [0, bound) — the executor would always fail here.
  virtual void OnDefiniteOutOfBounds(int block, const ir::Inst& inst, int base_record,
                                     const Interval& index, int bound) {}
};

struct DataflowFacts {
  // Converged state at each block's entry. blocks with feasible == false were
  // never reached on any feasible path.
  std::vector<BlockState> block_entry;
  // Index of the slot record covering each frame offset, or -1.
  std::vector<int> record_of;
};

struct DataflowOptions {
  // Model the reset entry path instead of cold boot: kVar records enter the
  // process with their full storage range (the stale values a soft reset can
  // leave behind — the Verilog watchdog reset returns every FSM to its
  // initial state but does not scrub persistent storage) rather than the
  // zeroed frame. Reads that are initialization-dominated only under the
  // frames-start-zeroed assumption surface as uninit reads in this mode; the
  // reset-safety rule reports the delta against a normal run.
  bool stale_entry = false;
};

// Runs the forward fixpoint (with widening on loops), then replays every
// feasible block once against `observer` (may be null) using the converged
// entry states.
DataflowFacts RunDataflow(const ir::Module& module, DataflowObserver* observer);
DataflowFacts RunDataflow(const ir::Module& module, DataflowObserver* observer,
                          const DataflowOptions& options);

}  // namespace efeu::analysis

#endif  // SRC_ANALYSIS_DATAFLOW_H_
