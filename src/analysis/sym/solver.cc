#include "src/analysis/sym/solver.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/ir/opcode_info.h"

namespace efeu::analysis::sym {

ExprPtr Expr::Leaf(int record, uint64_t gen, SymVal val, Type type, bool refinable) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLeaf;
  e->record = record;
  e->gen = gen;
  e->leaf_val = std::move(val);
  e->leaf_type = std::move(type);
  e->refinable = refinable;
  return e;
}

ExprPtr Expr::Const(int32_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->cval = v;
  return e;
}

ExprPtr Expr::Un(esm::UnaryOp op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUn;
  e->un = op;
  e->size = 1 + (a != nullptr ? a->size : 0);
  e->a = std::move(a);
  return e;
}

ExprPtr Expr::Bin(esm::BinaryOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBin;
  e->bin = op;
  e->size = 1 + (a != nullptr ? a->size : 0) + (b != nullptr ? b->size : 0);
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr Expr::Trunc(Type type, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kTrunc;
  e->trunc_type = std::move(type);
  e->size = 1 + (a != nullptr ? a->size : 0);
  e->a = std::move(a);
  return e;
}

namespace {

using LeafKey = std::pair<int, uint64_t>;  // (record, generation)

void CollectLeaves(const ExprPtr& e, std::map<LeafKey, const Expr*>* leaves) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == Expr::Kind::kLeaf) {
    leaves->emplace(LeafKey{e->record, e->gen}, e.get());
    return;
  }
  CollectLeaves(e->a, leaves);
  CollectLeaves(e->b, leaves);
}

// Exact scalar evaluation under an assignment of leaf values, with the IR's
// partial semantics: returns false on division by zero.
bool ConcreteEval(const Expr* e, const std::map<LeafKey, int32_t>& assignment, int32_t* out) {
  switch (e->kind) {
    case Expr::Kind::kConst:
      *out = e->cval;
      return true;
    case Expr::Kind::kLeaf:
      *out = assignment.at(LeafKey{e->record, e->gen});
      return true;
    case Expr::Kind::kUn: {
      int32_t a = 0;
      if (!ConcreteEval(e->a.get(), assignment, &a)) {
        return false;
      }
      *out = ir::EvalUnOp(e->un, a);
      return true;
    }
    case Expr::Kind::kBin: {
      int32_t a = 0;
      int32_t b = 0;
      if (!ConcreteEval(e->a.get(), assignment, &a) ||
          !ConcreteEval(e->b.get(), assignment, &b)) {
        return false;
      }
      return ir::EvalBinOp(e->bin, a, b, out);
    }
    case Expr::Kind::kTrunc: {
      int32_t a = 0;
      if (!ConcreteEval(e->a.get(), assignment, &a)) {
        return false;
      }
      *out = e->trunc_type.Truncate(a);
      return true;
    }
  }
  return false;
}

// The candidate values a type's storage admits, or empty when too many to
// enumerate (i16/i32).
std::vector<int32_t> StorageCandidates(const Type& type) {
  if (type.IsBoolish()) {
    return {0, 1};
  }
  if (type.BitWidth() == 8) {
    std::vector<int32_t> vals(256);
    for (int i = 0; i < 256; ++i) {
      vals[i] = i;
    }
    return vals;
  }
  return {};
}

struct Enumeration {
  std::vector<const Expr*> leaves;
  std::vector<std::vector<int32_t>> candidates;
  int64_t combos = 0;
};

// Prepares pointwise enumeration over `e`'s distinct leaves; returns false
// when some leaf has no tracked set or the cross product exceeds `limit`.
bool PrepareEnumeration(const ExprPtr& e, int64_t limit, Enumeration* out) {
  std::map<LeafKey, const Expr*> leaves;
  CollectLeaves(e, &leaves);
  if (static_cast<int>(leaves.size()) > kMaxExprLeaves) {
    return false;
  }
  out->combos = 1;
  for (const auto& [key, leaf] : leaves) {
    std::vector<int32_t> candidates;
    if (leaf->leaf_val.HasSet()) {
      candidates = leaf->leaf_val.values;
    }
    if (candidates.empty()) {
      return false;
    }
    out->combos *= static_cast<int64_t>(candidates.size());
    if (out->combos > limit) {
      return false;
    }
    out->leaves.push_back(leaf);
    out->candidates.push_back(std::move(candidates));
  }
  return true;
}

// Enumeration variables for the storage (type-level) verdict. A variable is
// preferably a bare leaf (exact), but when a subtree below a Trunc contains a
// leaf whose storage is too wide to enumerate (i16/i32), the Trunc node
// itself becomes the variable: truncation to any storage is surjective onto
// that storage's value range, so enumerating the trunc's *outputs* is still
// sound for always-true/always-false claims — this is what makes the
// ubiquitous `assert(b < 256)` idiom (lowered as Trunc(u8, wide-expr) < 256)
// decidable at the type level. Structurally identical trunc-of-leaf nodes
// share one variable; truncs of larger subtrees are keyed by node identity,
// which treats repeated occurrences as independent — a superset of the real
// joint valuations, so "always" verdicts stay sound and only precision is
// lost.
struct StorageVars {
  std::vector<std::vector<int32_t>> candidates;
  // Every DAG node bound to each variable (aliases share the assignment).
  std::vector<std::vector<const Expr*>> nodes;
  // (tag, record, gen) -> var index; tag 0 = bare leaf, else the trunc
  // storage kind + 1 for trunc-of-leaf sharing.
  std::map<std::tuple<int, int, uint64_t>, size_t> keyed;
  bool has_program_leaf = false;
};

void AddStorageVar(const std::tuple<int, int, uint64_t>* key, std::vector<int32_t> candidates,
                   const Expr* node, StorageVars* out) {
  if (key != nullptr) {
    auto it = out->keyed.find(*key);
    if (it != out->keyed.end()) {
      out->nodes[it->second].push_back(node);
      return;
    }
    out->keyed.emplace(*key, out->candidates.size());
  }
  out->candidates.push_back(std::move(candidates));
  out->nodes.push_back({node});
}

bool CollectStorageVars(const ExprPtr& e, StorageVars* out) {
  if (e == nullptr) {
    return true;
  }
  switch (e->kind) {
    case Expr::Kind::kConst:
      return true;
    case Expr::Kind::kUn:
    case Expr::Kind::kBin:
      return CollectStorageVars(e->a, out) && CollectStorageVars(e->b, out);
    case Expr::Kind::kLeaf: {
      out->has_program_leaf = true;
      std::vector<int32_t> candidates = StorageCandidates(e->leaf_type);
      if (candidates.empty()) {
        return false;
      }
      std::tuple<int, int, uint64_t> key{0, e->record, e->gen};
      AddStorageVar(&key, std::move(candidates), e.get(), out);
      return true;
    }
    case Expr::Kind::kTrunc: {
      // Prefer the exact route: variables beneath the trunc, the trunc
      // itself evaluated faithfully.
      StorageVars scratch = *out;
      if (CollectStorageVars(e->a, &scratch)) {
        *out = std::move(scratch);
        return true;
      }
      std::vector<int32_t> candidates = StorageCandidates(e->trunc_type);
      if (candidates.empty()) {
        return false;
      }
      // The child failed to collect, so a real (non-enumerable) program leaf
      // lives below this node.
      out->has_program_leaf = true;
      if (e->a != nullptr && e->a->kind == Expr::Kind::kLeaf) {
        std::tuple<int, int, uint64_t> key{1 + static_cast<int>(e->trunc_type.kind),
                                           e->a->record, e->a->gen};
        AddStorageVar(&key, std::move(candidates), e.get(), out);
      } else {
        AddStorageVar(nullptr, std::move(candidates), e.get(), out);
      }
      return true;
    }
  }
  return false;
}

// ConcreteEval with variable nodes pinned by the current combo: a node bound
// in `pinned` evaluates to its assigned value regardless of kind.
bool ConcreteEvalVars(const Expr* e, const std::map<const Expr*, int32_t>& pinned, int32_t* out) {
  auto it = pinned.find(e);
  if (it != pinned.end()) {
    *out = it->second;
    return true;
  }
  switch (e->kind) {
    case Expr::Kind::kConst:
      *out = e->cval;
      return true;
    case Expr::Kind::kLeaf:
      // Every leaf reachable without crossing a pinned node is itself
      // pinned; anything else is a collection bug, not a verdict.
      return false;
    case Expr::Kind::kUn: {
      int32_t a = 0;
      if (!ConcreteEvalVars(e->a.get(), pinned, &a)) {
        return false;
      }
      *out = ir::EvalUnOp(e->un, a);
      return true;
    }
    case Expr::Kind::kBin: {
      int32_t a = 0;
      int32_t b = 0;
      if (!ConcreteEvalVars(e->a.get(), pinned, &a) ||
          !ConcreteEvalVars(e->b.get(), pinned, &b)) {
        return false;
      }
      return ir::EvalBinOp(e->bin, a, b, out);
    }
    case Expr::Kind::kTrunc: {
      int32_t a = 0;
      if (!ConcreteEvalVars(e->a.get(), pinned, &a)) {
        return false;
      }
      *out = e->trunc_type.Truncate(a);
      return true;
    }
  }
  return false;
}

}  // namespace

SymVal Solver::Eval(const ExprPtr& e) {
  if (e == nullptr) {
    return SymVal::Top();
  }
  switch (e->kind) {
    case Expr::Kind::kConst:
      return SymVal::Exact(e->cval);
    case Expr::Kind::kLeaf:
      return e->leaf_val;
    case Expr::Kind::kUn:
      return EvalUnOp(e->un, Eval(e->a));
    case Expr::Kind::kBin:
      return EvalBinOp(e->bin, Eval(e->a), Eval(e->b));
    case Expr::Kind::kTrunc:
      return Truncate(Eval(e->a), e->trunc_type);
  }
  return SymVal::Top();
}

SolveResult Solver::Solve(const ExprPtr& e) {
  ++queries_;
  SolveResult result;
  if (e == nullptr) {
    return result;
  }
  Enumeration enumeration;
  if (PrepareEnumeration(e, kMaxCombos, &enumeration)) {
    ++enumerations_;
    result.enumerated = true;
    size_t n = enumeration.leaves.size();
    for (const Expr* leaf : enumeration.leaves) {
      result.assumed = result.assumed || leaf->leaf_val.assumed;
    }
    std::vector<std::set<int32_t>> true_vals(n);
    std::vector<std::set<int32_t>> false_vals(n);
    int64_t true_combos = 0;
    int64_t false_combos = 0;
    std::vector<size_t> odo(n, 0);
    std::map<LeafKey, int32_t> assignment;
    for (int64_t combo = 0; combo < enumeration.combos; ++combo) {
      for (size_t i = 0; i < n; ++i) {
        const Expr* leaf = enumeration.leaves[i];
        assignment[LeafKey{leaf->record, leaf->gen}] = enumeration.candidates[i][odo[i]];
      }
      ++combos_evaluated_;
      int32_t value = 0;
      if (!ConcreteEval(e.get(), assignment, &value)) {
        result.may_fail = true;
      } else {
        bool truth = value != 0;
        (truth ? true_combos : false_combos)++;
        for (size_t i = 0; i < n; ++i) {
          (truth ? true_vals : false_vals)[i].insert(enumeration.candidates[i][odo[i]]);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (++odo[i] < enumeration.candidates[i].size()) {
          break;
        }
        odo[i] = 0;
      }
    }
    if (true_combos > 0 && false_combos == 0) {
      result.outcome = Outcome::kAlwaysTrue;
    } else if (false_combos > 0 && true_combos == 0) {
      result.outcome = Outcome::kAlwaysFalse;
    }
    auto emit_refinements = [&](const std::vector<std::set<int32_t>>& vals,
                                std::vector<LeafRefinement>* out) {
      for (size_t i = 0; i < n; ++i) {
        const Expr* leaf = enumeration.leaves[i];
        if (!leaf->refinable || vals[i].empty() ||
            vals[i].size() == enumeration.candidates[i].size()) {
          continue;
        }
        LeafRefinement r;
        r.record = leaf->record;
        r.gen = leaf->gen;
        r.refined = SymVal::FromSet(std::vector<int32_t>(vals[i].begin(), vals[i].end()));
        r.refined.assumed = leaf->leaf_val.assumed;
        out->push_back(std::move(r));
      }
    };
    emit_refinements(true_vals, &result.when_true);
    emit_refinements(false_vals, &result.when_false);
    return result;
  }
  // Abstract fallback.
  bool may_fail = false;
  SymVal v = Eval(e);
  // Re-walk for failure potential: any division whose divisor admits zero.
  std::vector<const Expr*> stack = {e.get()};
  while (!stack.empty()) {
    const Expr* node = stack.back();
    stack.pop_back();
    if (node->kind == Expr::Kind::kBin &&
        (node->bin == esm::BinaryOp::kDiv || node->bin == esm::BinaryOp::kMod) &&
        Eval(node->b).Contains(0)) {
      may_fail = true;
    }
    if (node->a != nullptr) {
      stack.push_back(node->a.get());
    }
    if (node->b != nullptr) {
      stack.push_back(node->b.get());
    }
  }
  result.may_fail = may_fail;
  result.assumed = v.assumed;
  if (v.DefinitelyNonZero()) {
    result.outcome = Outcome::kAlwaysTrue;
  } else if (v.DefinitelyZero()) {
    result.outcome = Outcome::kAlwaysFalse;
  }
  // Interval-level refinement for the common `leaf cmp const` shape, which
  // enumeration misses when the leaf tracks only an interval (loop indices).
  // Bool truncations preserve truthiness (nonzero -> 1), so unwrap them.
  const Expr* cond = e.get();
  while (cond->kind == Expr::Kind::kTrunc && cond->trunc_type.IsBoolish() &&
         cond->a != nullptr) {
    cond = cond->a.get();
  }
  if (cond->kind == Expr::Kind::kBin && cond->a != nullptr && cond->b != nullptr) {
    // See through truncations that cannot change the leaf's tracked values
    // (an in-range u8 loop index copied through its own type): the trunc is
    // the identity there, so refining the underlying leaf stays sound.
    auto strip = [](const Expr* x) -> const Expr* {
      while (x->kind == Expr::Kind::kTrunc && x->a != nullptr &&
             x->a->kind == Expr::Kind::kLeaf &&
             Truncate(x->a->leaf_val, x->trunc_type) == x->a->leaf_val) {
        x = x->a.get();
      }
      return x;
    };
    const Expr* lhs = strip(cond->a.get());
    const Expr* rhs = strip(cond->b.get());
    const SymVal va = Eval(cond->a);
    const SymVal vb = Eval(cond->b);
    auto hull = [](const SymVal& v) {
      return v.HasSet() ? Interval::Of(v.values.front(), v.values.back()) : v.interval;
    };
    const Interval ia = hull(va);
    const Interval ib = hull(vb);
    const Interval full = Interval::Full();
    // Narrows `leaf` to `iv` (or to the other side's full abstract value for
    // equalities). A refinement derived from a tainted opposite side is
    // itself an assumption.
    auto add = [&](const Expr* leaf, bool other_assumed, std::vector<LeafRefinement>* out,
                   const Interval& iv, const SymVal* by_value) {
      if (leaf->kind != Expr::Kind::kLeaf || !leaf->refinable ||
          (by_value == nullptr && iv.lo > iv.hi)) {
        return;
      }
      SymVal by = by_value != nullptr ? *by_value : SymVal::FromInterval(iv);
      by.assumed = other_assumed;
      LeafRefinement r;
      r.record = leaf->record;
      r.gen = leaf->gen;
      r.refined = Refine(leaf->leaf_val, by);
      out->push_back(std::move(r));
    };
    switch (cond->bin) {
      case esm::BinaryOp::kEq:
        add(lhs, vb.assumed, &result.when_true, full, &vb);
        add(rhs, va.assumed, &result.when_true, full, &va);
        break;
      case esm::BinaryOp::kNe:
        add(lhs, vb.assumed, &result.when_false, full, &vb);
        add(rhs, va.assumed, &result.when_false, full, &va);
        break;
      case esm::BinaryOp::kLt:
        add(lhs, vb.assumed, &result.when_true, Interval::Of(full.lo, ib.hi - 1), nullptr);
        add(rhs, va.assumed, &result.when_true, Interval::Of(ia.lo + 1, full.hi), nullptr);
        add(lhs, vb.assumed, &result.when_false, Interval::Of(ib.lo, full.hi), nullptr);
        add(rhs, va.assumed, &result.when_false, Interval::Of(full.lo, ia.hi), nullptr);
        break;
      case esm::BinaryOp::kLe:
        add(lhs, vb.assumed, &result.when_true, Interval::Of(full.lo, ib.hi), nullptr);
        add(rhs, va.assumed, &result.when_true, Interval::Of(ia.lo, full.hi), nullptr);
        add(lhs, vb.assumed, &result.when_false, Interval::Of(ib.lo + 1, full.hi), nullptr);
        add(rhs, va.assumed, &result.when_false, Interval::Of(full.lo, ia.hi - 1), nullptr);
        break;
      case esm::BinaryOp::kGt:
        add(lhs, vb.assumed, &result.when_true, Interval::Of(ib.lo + 1, full.hi), nullptr);
        add(rhs, va.assumed, &result.when_true, Interval::Of(full.lo, ia.hi - 1), nullptr);
        add(lhs, vb.assumed, &result.when_false, Interval::Of(full.lo, ib.hi), nullptr);
        add(rhs, va.assumed, &result.when_false, Interval::Of(ia.lo, full.hi), nullptr);
        break;
      case esm::BinaryOp::kGe:
        add(lhs, vb.assumed, &result.when_true, Interval::Of(ib.lo, full.hi), nullptr);
        add(rhs, va.assumed, &result.when_true, Interval::Of(full.lo, ia.hi), nullptr);
        add(lhs, vb.assumed, &result.when_false, Interval::Of(full.lo, ib.hi - 1), nullptr);
        add(rhs, va.assumed, &result.when_false, Interval::Of(ia.lo + 1, full.hi), nullptr);
        break;
      default:
        break;
    }
  }
  return result;
}

bool Solver::IsTypeTautology(const ExprPtr& e) {
  return StorageOutcome(e) == Outcome::kAlwaysTrue;
}

Outcome Solver::StorageOutcome(const ExprPtr& e) {
  if (e == nullptr) {
    return Outcome::kUnknown;
  }
  StorageVars vars;
  if (!CollectStorageVars(e, &vars)) {
    return Outcome::kUnknown;
  }
  // A condition with no program leaves is a constant; type-level verdicts
  // are reserved for conditions over actual program values (constant asserts
  // and `while (1)` headers are their own idioms, not type facts).
  if (!vars.has_program_leaf || vars.candidates.empty()) {
    return Outcome::kUnknown;
  }
  size_t n = vars.candidates.size();
  if (static_cast<int>(n) > kMaxExprLeaves) {
    return Outcome::kUnknown;
  }
  int64_t combos = 1;
  for (const std::vector<int32_t>& candidates : vars.candidates) {
    combos *= static_cast<int64_t>(candidates.size());
    if (combos > kMaxTautologyCombos) {
      return Outcome::kUnknown;
    }
  }
  std::vector<size_t> odo(n, 0);
  std::map<const Expr*, int32_t> pinned;
  bool seen_true = false;
  bool seen_false = false;
  for (int64_t combo = 0; combo < combos; ++combo) {
    for (size_t i = 0; i < n; ++i) {
      for (const Expr* node : vars.nodes[i]) {
        pinned[node] = vars.candidates[i][odo[i]];
      }
    }
    ++combos_evaluated_;
    int32_t value = 0;
    if (!ConcreteEvalVars(e.get(), pinned, &value)) {
      return Outcome::kUnknown;
    }
    (value != 0 ? seen_true : seen_false) = true;
    if (seen_true && seen_false) {
      return Outcome::kUnknown;
    }
    for (size_t i = 0; i < n; ++i) {
      if (++odo[i] < vars.candidates[i].size()) {
        break;
      }
      odo[i] = 0;
    }
  }
  return seen_true ? Outcome::kAlwaysTrue : Outcome::kAlwaysFalse;
}

}  // namespace efeu::analysis::sym
