#include "src/analysis/sym/symexec.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "src/analysis/sym/solver.h"

namespace efeu::analysis::sym {

namespace {

// Cap on the node count of a tracked expression; bigger values fall back to
// a leaf over the computed abstract value.
constexpr int kMaxExprSize = 48;

struct Cell {
  SymVal val;
  uint64_t gen = 0;
  ExprPtr expr;
};

struct State {
  std::vector<Cell> cells;
};

bool InRange(const SymVal& v, int64_t lo, int64_t hi) {
  if (v.HasSet()) {
    return v.values.front() >= lo && v.values.back() <= hi;
  }
  return v.interval.lo >= lo && v.interval.hi <= hi;
}

bool DefinitelyOutOfRange(const SymVal& v, int64_t lo, int64_t hi) {
  if (v.HasSet()) {
    for (int32_t x : v.values) {
      if (x >= lo && x <= hi) {
        return false;
      }
    }
    return true;
  }
  return v.interval.hi < lo || v.interval.lo > hi;
}

class SymExecutor {
 public:
  SymExecutor(const ir::Module& module, const ChannelFacts& facts, const SymOptions& options)
      : module_(module), facts_(facts), options_(options) {
    elem_type_.resize(module.frame_size, Type::I32());
    for (const ir::SlotInfo& slot : module.slots) {
      Type elem = slot.type.IsArray() ? slot.type.Element() : slot.type;
      for (int i = 0; i < slot.size && slot.offset + i < module.frame_size; ++i) {
        elem_type_[slot.offset + i] = elem;
      }
    }
  }

  ModuleSummary Run() {
    auto start = std::chrono::steady_clock::now();
    summary_.layer = module_.layer_name;
    int num_blocks = static_cast<int>(module_.blocks.size());
    entry_.resize(num_blocks);
    has_state_.assign(num_blocks, 0);
    joins_.assign(num_blocks, 0);
    in_worklist_.assign(num_blocks, 0);
    MarkLoopHeads();

    State initial;
    initial.cells.resize(module_.frame_size);
    for (int i = 0; i < module_.frame_size; ++i) {
      initial.cells[i].val = SymVal::Exact(0);  // Frames start zeroed.
      initial.cells[i].gen = NextGen();
    }
    entry_[0] = std::move(initial);
    has_state_[0] = 1;
    Enqueue(0);

    while (!worklist_.empty()) {
      if (++summary_.blocks_visited > options_.max_block_visits) {
        summary_.complete = false;
        break;
      }
      int block = worklist_.front();
      worklist_.pop_front();
      in_worklist_[block] = 0;
      State state = entry_[block];  // Copy: transfer mutates.
      TransferBlock(block, std::move(state), /*replay=*/false);
    }

    if (summary_.complete) {
      // One replay per reached block from its converged entry state records
      // the per-site verdicts, infeasible arms, and send summaries.
      replay_ = true;
      for (int block = 0; block < num_blocks; ++block) {
        if (has_state_[block]) {
          State state = entry_[block];
          TransferBlock(block, std::move(state), /*replay=*/true);
        }
      }
    }

    summary_.solver_queries = solver_.queries();
    summary_.solver_enumerations = solver_.enumerations();
    summary_.solver_combos = solver_.combos_evaluated();
    summary_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return std::move(summary_);
  }

 private:
  uint64_t NextGen() { return ++gen_counter_; }

  // Widening is confined to loop heads (targets of DFS retreating edges):
  // every cycle passes through one, which bounds the climb, while join-only
  // blocks — a loop body after a refining branch, say — keep the narrowed
  // entry states that make the body's bounds checks provable.
  void MarkLoopHeads() {
    int num_blocks = static_cast<int>(module_.blocks.size());
    loop_head_.assign(num_blocks, 0);
    std::vector<char> color(num_blocks, 0);  // 0 white, 1 on stack, 2 done
    std::vector<std::pair<int, int>> stack;  // (block, next successor index)
    stack.emplace_back(0, 0);
    color[0] = 1;
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      std::vector<int> succs;
      for (const ir::Inst& inst : module_.blocks[block].insts) {
        if (inst.op == ir::Opcode::kJump) {
          succs.push_back(inst.target);
        } else if (inst.op == ir::Opcode::kBranch) {
          succs.push_back(inst.target);
          succs.push_back(inst.target2);
        }
      }
      if (next >= static_cast<int>(succs.size())) {
        color[block] = 2;
        stack.pop_back();
        continue;
      }
      int succ = succs[next++];
      if (succ < 0 || succ >= num_blocks) {
        continue;
      }
      if (color[succ] == 1) {
        loop_head_[succ] = 1;
      } else if (color[succ] == 0) {
        color[succ] = 1;
        stack.emplace_back(succ, 0);
      }
    }
  }

  void Enqueue(int block) {
    if (!in_worklist_[block]) {
      in_worklist_[block] = 1;
      worklist_.push_back(block);
    }
  }

  ExprPtr ExprOf(const State& state, int offset) {
    const Cell& cell = state.cells[offset];
    if (cell.expr != nullptr && cell.expr->size <= kMaxExprSize) {
      return Refresh(state, cell.expr);
    }
    return Expr::Leaf(offset, cell.gen, cell.val, elem_type_[offset], /*refinable=*/true);
  }

  // Substitutes current (possibly branch-refined) cell values into leaves
  // whose generation still matches, so refinements learned on one branch
  // reach conditions computed before the branch.
  ExprPtr Refresh(const State& state, const ExprPtr& e) {
    if (e == nullptr) {
      return e;
    }
    switch (e->kind) {
      case Expr::Kind::kConst:
        return e;
      case Expr::Kind::kLeaf: {
        if (e->record < 0 || e->record >= static_cast<int>(state.cells.size())) {
          return e;
        }
        const Cell& cell = state.cells[e->record];
        if (cell.gen == e->gen && !(cell.val == e->leaf_val)) {
          return Expr::Leaf(e->record, e->gen, cell.val, e->leaf_type, e->refinable);
        }
        return e;
      }
      case Expr::Kind::kUn: {
        ExprPtr a = Refresh(state, e->a);
        return a == e->a ? e : Expr::Un(e->un, std::move(a));
      }
      case Expr::Kind::kBin: {
        ExprPtr a = Refresh(state, e->a);
        ExprPtr b = Refresh(state, e->b);
        return (a == e->a && b == e->b) ? e : Expr::Bin(e->bin, std::move(a), std::move(b));
      }
      case Expr::Kind::kTrunc: {
        ExprPtr a = Refresh(state, e->a);
        return a == e->a ? e : Expr::Trunc(e->trunc_type, std::move(a));
      }
    }
    return e;
  }

  void WriteCell(State& state, int offset, SymVal val, ExprPtr expr) {
    Cell& cell = state.cells[offset];
    cell.val = std::move(val);
    cell.gen = NextGen();
    cell.expr = (expr != nullptr && expr->size <= kMaxExprSize) ? std::move(expr) : nullptr;
  }

  void ApplyRefinements(State& state, const std::vector<LeafRefinement>& refinements) {
    std::vector<int> refined;
    for (const LeafRefinement& r : refinements) {
      if (r.record < 0 || r.record >= static_cast<int>(state.cells.size())) {
        continue;
      }
      Cell& cell = state.cells[r.record];
      if (cell.gen != r.gen) {
        continue;  // The cell was overwritten; the leaf is stale.
      }
      // Refinement narrows the value without being a write: the generation
      // is kept so downstream expressions still refresh against this cell.
      cell.val = Refine(cell.val, r.refined);
      refined.push_back(r.record);
    }
    if (refined.empty()) {
      return;
    }
    // Alias propagation: a cell computed FROM a refined leaf (`d = r.r;
    // if (d > 0) ... 12 / d`) holds a copy the leaf refinement alone never
    // narrows. Each cell's expression is its defining function of the leaves
    // as of its last write, so re-evaluating it under the refined (refreshed)
    // leaf values over-approximates the cell on this arm; intersecting keeps
    // the tighter of the two.
    for (Cell& cell : state.cells) {
      if (cell.expr == nullptr || cell.expr->kind == Expr::Kind::kLeaf ||
          !MentionsRefinedLeaf(state, cell.expr, refined)) {
        continue;
      }
      cell.val = Refine(cell.val, solver_.Eval(Refresh(state, cell.expr)));
    }
  }

  // True when `e` has a leaf of a just-refined record whose generation still
  // matches that cell (i.e. Refresh would substitute the narrowed value).
  bool MentionsRefinedLeaf(const State& state, const ExprPtr& e, const std::vector<int>& records) {
    if (e == nullptr) {
      return false;
    }
    if (e->kind == Expr::Kind::kLeaf) {
      if (e->record < 0 || e->record >= static_cast<int>(state.cells.size())) {
        return false;
      }
      return state.cells[e->record].gen == e->gen &&
             std::find(records.begin(), records.end(), e->record) != records.end();
    }
    return MentionsRefinedLeaf(state, e->a, records) || MentionsRefinedLeaf(state, e->b, records);
  }

  bool Subsumed(const State& a, const State& b) {
    for (size_t i = 0; i < a.cells.size(); ++i) {
      if (!a.cells[i].val.SubsumedBy(b.cells[i].val)) {
        return false;
      }
    }
    return true;
  }

  void JoinInto(State& into, const State& from, bool widen) {
    for (size_t i = 0; i < into.cells.size(); ++i) {
      Cell& dst = into.cells[i];
      const Cell& src = from.cells[i];
      SymVal joined = widen
                          ? Widen(dst.val, src.val, Interval::Storage(elem_type_[i]))
                          : Join(dst.val, src.val);
      if (!(joined == dst.val)) {
        dst.val = std::move(joined);
      }
      if (src.gen != dst.gen || src.expr != dst.expr) {
        // Different defining writes reach this point; the merged cell is a
        // fresh join value with no single defining expression.
        if (src.gen != dst.gen) {
          dst.gen = NextGen();
        }
        if (src.expr != dst.expr) {
          dst.expr = nullptr;
        }
      }
    }
  }

  void Propagate(int to, State&& state) {
    if (!has_state_[to]) {
      entry_[to] = std::move(state);
      has_state_[to] = 1;
      Enqueue(to);
      return;
    }
    if (Subsumed(state, entry_[to])) {
      ++summary_.paths;  // This path segment merges into explored territory.
      return;
    }
    ++summary_.merges;
    bool widen = ++joins_[to] > options_.widen_after && loop_head_[to] != 0;
    if (widen) {
      ++summary_.widenings;
    }
    JoinInto(entry_[to], state, widen);
    Enqueue(to);
  }

  void RecordSite(SiteVerdict::Kind kind, int block, int inst_index, const ir::Inst& inst,
                  bool proved, bool assumed, bool always_fails, std::string value) {
    SiteVerdict site;
    site.kind = kind;
    site.block = block;
    site.inst_index = inst_index;
    site.loc = inst.loc;
    site.proved = proved;
    site.assumed = assumed;
    site.always_fails = always_fails;
    site.value = std::move(value);
    summary_.sites.push_back(std::move(site));
  }

  const std::vector<SymVal>* FactsFor(int port) const {
    if (port < 0 || port >= static_cast<int>(module_.ports.size())) {
      return nullptr;
    }
    auto it = facts_.find(module_.ports[port].channel);
    return it == facts_.end() ? nullptr : &it->second;
  }

  void TransferBlock(int block, State&& state_in, bool replay) {
    State state = std::move(state_in);
    const ir::Block& blk = module_.blocks[block];
    for (int i = 0; i < static_cast<int>(blk.insts.size()); ++i) {
      const ir::Inst& inst = blk.insts[i];
      switch (inst.op) {
        case ir::Opcode::kConst: {
          int32_t v = inst.type.Truncate(inst.imm);
          WriteCell(state, inst.dst, SymVal::Exact(v), Expr::Const(v));
          break;
        }
        case ir::Opcode::kCopy: {
          SymVal v = Truncate(state.cells[inst.a].val, inst.type);
          WriteCell(state, inst.dst, std::move(v), Expr::Trunc(inst.type, ExprOf(state, inst.a)));
          break;
        }
        case ir::Opcode::kUnOp: {
          SymVal v = EvalUnOp(inst.unop, state.cells[inst.a].val);
          WriteCell(state, inst.dst, std::move(v), Expr::Un(inst.unop, ExprOf(state, inst.a)));
          break;
        }
        case ir::Opcode::kBinOp: {
          bool divides =
              inst.binop == esm::BinaryOp::kDiv || inst.binop == esm::BinaryOp::kMod;
          const SymVal& bv = state.cells[inst.b].val;
          if (divides && replay) {
            RecordSite(SiteVerdict::Kind::kDivisor, block, i, inst,
                       /*proved=*/!bv.Contains(0), bv.assumed, bv.DefinitelyZero(),
                       bv.ToString());
          }
          if (divides && bv.DefinitelyZero()) {
            ++summary_.paths;  // Execution always fails here; path ends.
            return;
          }
          bool may_fail = false;
          SymVal v = EvalBinOp(inst.binop, state.cells[inst.a].val, bv, &may_fail);
          WriteCell(state, inst.dst, std::move(v),
                    Expr::Bin(inst.binop, ExprOf(state, inst.a), ExprOf(state, inst.b)));
          break;
        }
        case ir::Opcode::kLoadIdx: {
          const SymVal& idx = state.cells[inst.b].val;
          if (replay) {
            RecordSite(SiteVerdict::Kind::kIndex, block, i, inst,
                       /*proved=*/InRange(idx, 0, inst.imm - 1), idx.assumed,
                       DefinitelyOutOfRange(idx, 0, inst.imm - 1), idx.ToString());
          }
          if (DefinitelyOutOfRange(idx, 0, inst.imm - 1)) {
            ++summary_.paths;
            return;
          }
          if (idx.IsExact() && idx.interval.lo >= 0 && idx.interval.lo < inst.imm) {
            int src = inst.a + static_cast<int>(idx.interval.lo);
            SymVal v = Truncate(state.cells[src].val, inst.type);
            WriteCell(state, inst.dst, std::move(v),
                      Expr::Trunc(inst.type, ExprOf(state, src)));
          } else {
            int64_t lo = std::max<int64_t>(0, idx.interval.lo);
            int64_t hi = std::min<int64_t>(inst.imm - 1, idx.interval.hi);
            SymVal joined;
            bool first = true;
            for (int64_t w = lo; w <= hi; ++w) {
              const SymVal& e = state.cells[inst.a + w].val;
              joined = first ? e : Join(joined, e);
              first = false;
            }
            if (first) {
              joined = SymVal::Top();
            }
            WriteCell(state, inst.dst, Truncate(joined, inst.type), nullptr);
          }
          break;
        }
        case ir::Opcode::kStoreIdx: {
          const SymVal& idx = state.cells[inst.b].val;
          if (replay) {
            RecordSite(SiteVerdict::Kind::kIndex, block, i, inst,
                       /*proved=*/InRange(idx, 0, inst.imm - 1), idx.assumed,
                       DefinitelyOutOfRange(idx, 0, inst.imm - 1), idx.ToString());
          }
          if (DefinitelyOutOfRange(idx, 0, inst.imm - 1)) {
            ++summary_.paths;
            return;
          }
          SymVal src = Truncate(state.cells[inst.a].val, inst.type);
          if (idx.IsExact() && idx.interval.lo >= 0 && idx.interval.lo < inst.imm) {
            int dst = inst.dst + static_cast<int>(idx.interval.lo);
            WriteCell(state, dst, std::move(src), Expr::Trunc(inst.type, ExprOf(state, inst.a)));
          } else {
            int64_t lo = std::max<int64_t>(0, idx.interval.lo);
            int64_t hi = std::min<int64_t>(inst.imm - 1, idx.interval.hi);
            for (int64_t w = lo; w <= hi; ++w) {
              Cell& cell = state.cells[inst.dst + w];
              SymVal joined = Join(cell.val, src);
              WriteCell(state, inst.dst + static_cast<int>(w), std::move(joined), nullptr);
            }
          }
          break;
        }
        case ir::Opcode::kSend: {
          if (replay) {
            PortFacts* pf = nullptr;
            for (PortFacts& existing : summary_.send_facts) {
              if (existing.port == inst.port) {
                pf = &existing;
              }
            }
            if (pf == nullptr) {
              summary_.send_facts.push_back(PortFacts{inst.port, {}});
              pf = &summary_.send_facts.back();
            }
            if (static_cast<int>(pf->words.size()) < inst.count) {
              pf->words.resize(inst.count, SymVal::Exact(0));
            }
            for (int w = 0; w < inst.count; ++w) {
              const SymVal& v = state.cells[inst.a + w].val;
              pf->words[w] = pf->words[w].IsExact() && pf->words[w].interval.lo == 0 &&
                                     !seen_send_[inst.port]
                                 ? v
                                 : Join(pf->words[w], v);
            }
            seen_send_[inst.port] = true;
          }
          break;
        }
        case ir::Opcode::kRecv: {
          const std::vector<SymVal>* facts = FactsFor(inst.port);
          for (int w = 0; w < inst.count; ++w) {
            SymVal v = (facts != nullptr && w < static_cast<int>(facts->size()))
                           ? (*facts)[w]
                           : SymVal::Top();
            WriteCell(state, inst.dst + w, std::move(v), nullptr);
          }
          break;
        }
        case ir::Opcode::kNondet: {
          SymVal v;
          if (inst.imm >= 1 && inst.imm <= kMaxSetSize) {
            std::vector<int32_t> vals(inst.imm);
            for (int32_t k = 0; k < inst.imm; ++k) {
              vals[k] = k;
            }
            v = SymVal::FromSet(std::move(vals));
          } else {
            v = SymVal::FromInterval(Interval::Of(0, std::max<int64_t>(0, inst.imm - 1)));
          }
          WriteCell(state, inst.dst, std::move(v), nullptr);
          break;
        }
        case ir::Opcode::kAssert: {
          SolveResult r = solver_.Solve(ExprOf(state, inst.a));
          if (replay) {
            bool proved = r.outcome == Outcome::kAlwaysTrue && !r.may_fail;
            SiteVerdict site;
            site.kind = SiteVerdict::Kind::kAssert;
            site.block = block;
            site.inst_index = i;
            site.loc = inst.loc;
            site.proved = proved;
            site.assumed = r.assumed;
            site.always_fails = r.outcome == Outcome::kAlwaysFalse;
            site.value = state.cells[inst.a].val.ToString();
            if (proved) {
              site.tautology = solver_.IsTypeTautology(ExprOf(state, inst.a));
            }
            summary_.sites.push_back(std::move(site));
          }
          if (r.outcome == Outcome::kAlwaysFalse) {
            ++summary_.paths;  // The executor always fails here.
            return;
          }
          // Surviving the assert is itself a refinement — both for the leaves
          // of the condition expression and for the condition cell itself,
          // which need not be a leaf of its own defining expression (the
          // short-circuit `||` lowering joins condition cells directly).
          ApplyRefinements(state, r.when_true);
          Cell& cond = state.cells[inst.a];
          cond.val = ExcludeValue(cond.val, 0);
          break;
        }
        case ir::Opcode::kJump: {
          if (!replay) {
            Propagate(inst.target, std::move(state));
          }
          return;
        }
        case ir::Opcode::kBranch: {
          SolveResult r = solver_.Solve(ExprOf(state, inst.a));
          bool true_feasible = r.outcome != Outcome::kAlwaysFalse;
          bool false_feasible = r.outcome != Outcome::kAlwaysTrue;
          if (replay && (!true_feasible || !false_feasible)) {
            BranchInfo info;
            info.block = block;
            info.inst_index = i;
            info.loc = inst.loc;
            info.true_infeasible = !true_feasible;
            info.false_infeasible = !false_feasible;
            info.assumed = r.assumed;
            Outcome types = solver_.StorageOutcome(ExprOf(state, inst.a));
            info.from_types = (info.true_infeasible && types == Outcome::kAlwaysFalse) ||
                              (info.false_infeasible && types == Outcome::kAlwaysTrue);
            summary_.infeasible_branches.push_back(info);
          }
          if (replay) {
            return;
          }
          // Each arm additionally strengthens the condition cell itself
          // (nonzero on the taken-true arm, exactly zero on the false arm);
          // the cell is not always a leaf of its own defining expression, so
          // ApplyRefinements alone would leave it untouched.
          if (true_feasible && false_feasible) {
            State other = state;
            ApplyRefinements(state, r.when_true);
            state.cells[inst.a].val = ExcludeValue(state.cells[inst.a].val, 0);
            ApplyRefinements(other, r.when_false);
            other.cells[inst.a].val = Refine(other.cells[inst.a].val, SymVal::Exact(0));
            Propagate(inst.target, std::move(state));
            Propagate(inst.target2, std::move(other));
          } else if (true_feasible) {
            ApplyRefinements(state, r.when_true);
            state.cells[inst.a].val = ExcludeValue(state.cells[inst.a].val, 0);
            Propagate(inst.target, std::move(state));
          } else if (false_feasible) {
            ApplyRefinements(state, r.when_false);
            state.cells[inst.a].val = Refine(state.cells[inst.a].val, SymVal::Exact(0));
            Propagate(inst.target2, std::move(state));
          } else {
            ++summary_.paths;  // Both arms infeasible: nothing survives.
          }
          return;
        }
        case ir::Opcode::kHalt: {
          if (!replay) {
            ++summary_.paths;
          }
          return;
        }
      }
    }
  }

  const ir::Module& module_;
  const ChannelFacts& facts_;
  SymOptions options_;
  Solver solver_;
  std::vector<Type> elem_type_;
  std::vector<State> entry_;
  std::vector<char> has_state_;
  std::vector<int> joins_;
  std::vector<char> in_worklist_;
  std::vector<char> loop_head_;
  std::deque<int> worklist_;
  std::map<int, bool> seen_send_;
  uint64_t gen_counter_ = 0;
  bool replay_ = false;
  ModuleSummary summary_;
};

}  // namespace

bool ModuleSummary::AllProved(bool* any_assumed) const {
  bool assumed = false;
  bool all = complete;
  for (const SiteVerdict& site : sites) {
    if (!site.proved) {
      all = false;
    }
    assumed = assumed || (site.proved && site.assumed);
  }
  if (any_assumed != nullptr) {
    *any_assumed = assumed;
  }
  return all;
}

std::vector<SymVal> ContractWordFacts(const esi::SystemInfo& info, const esi::ChannelInfo& channel,
                                      ExternalFacts mode) {
  std::vector<SymVal> words(channel.flat_size, SymVal::Top());
  if (mode == ExternalFacts::kTop) {
    return words;
  }
  for (const esi::FieldInfo& field : channel.fields) {
    Type elem = field.type.IsArray() ? field.type.Element() : field.type;
    SymVal fact;
    if (elem.IsEnum()) {
      const esi::EnumInfo* e = info.FindEnum(elem.enum_name);
      int members = e != nullptr ? static_cast<int>(e->members.size()) : 256;
      if (members >= 1 && members <= kMaxSetSize) {
        std::vector<int32_t> vals(members);
        for (int32_t k = 0; k < members; ++k) {
          vals[k] = k;
        }
        fact = SymVal::FromSet(std::move(vals));
      } else {
        fact = SymVal::FromInterval(Interval::Of(0, members - 1));
      }
    } else if (elem.BitWidth() >= 32) {
      continue;  // Unconstrained; Top already, and soundly so.
    } else {
      fact = SymVal::Storage(elem);
    }
    // Nothing compiled here enforces what the external sender puts on the
    // wire; even the storage-width ranges are contract assumptions.
    fact.assumed = true;
    for (int i = 0; i < field.type.FlatSize(); ++i) {
      int w = field.flat_offset + i;
      if (w >= 0 && w < channel.flat_size) {
        words[w] = fact;
      }
    }
  }
  return words;
}

ModuleSummary AnalyzeModuleSym(const ir::Module& module, const ChannelFacts& facts,
                               const SymOptions& options) {
  SymExecutor exec(module, facts, options);
  return exec.Run();
}

bool CompilationSummary::AllProved(bool* any_assumed) const {
  bool assumed = false;
  bool all = true;
  for (const ModuleSummary& m : modules) {
    bool a = false;
    if (!m.AllProved(&a)) {
      all = false;
    }
    assumed = assumed || a;
  }
  if (any_assumed != nullptr) {
    *any_assumed = assumed;
  }
  return all;
}

uint64_t CompilationSummary::TotalPaths() const {
  uint64_t n = 0;
  for (const ModuleSummary& m : modules) {
    n += m.paths;
  }
  return n;
}

uint64_t CompilationSummary::TotalSolverQueries() const {
  uint64_t n = 0;
  for (const ModuleSummary& m : modules) {
    n += m.solver_queries;
  }
  return n;
}

CompilationSummary AnalyzeCompilationSym(const ir::Compilation& comp, const SymOptions& options,
                                         const ChannelFacts& native_facts) {
  auto start = std::chrono::steady_clock::now();
  CompilationSummary out;
  const std::vector<ir::Module>& modules = comp.modules();

  // Which channels have an in-compilation sender?
  std::map<const esi::ChannelInfo*, bool> internal;
  for (const ir::Module& m : modules) {
    for (const ir::Port& p : m.ports) {
      if (p.is_send) {
        internal[p.channel] = true;
      }
    }
  }

  // Seed: declared native facts are trusted; internal channels start from
  // the per-field storage envelope (sound: every staged word is truncated to
  // its field type before the send); external channels get contract or top
  // facts per the options.
  ChannelFacts facts = native_facts;
  for (const ir::Module& m : modules) {
    for (const ir::Port& p : m.ports) {
      if (facts.count(p.channel) != 0) {
        continue;
      }
      if (internal.count(p.channel) != 0) {
        std::vector<SymVal> words;
        words.reserve(p.channel->flat_size);
        for (const esi::FieldInfo& field : p.channel->fields) {
          Type elem = field.type.IsArray() ? field.type.Element() : field.type;
          for (int i = 0; i < field.type.FlatSize(); ++i) {
            words.push_back(SymVal::Storage(elem));
          }
        }
        words.resize(p.channel->flat_size, SymVal::Top());
        facts[p.channel] = std::move(words);
      } else {
        facts[p.channel] = ContractWordFacts(comp.system(), *p.channel, options.external_facts);
      }
    }
  }

  for (int round = 0; round < std::max(1, options.max_rounds); ++round) {
    out.rounds = round + 1;
    out.modules.clear();
    ChannelFacts next = facts;
    for (const ir::Module& m : modules) {
      ModuleSummary summary = AnalyzeModuleSym(m, facts, options);
      for (const PortFacts& pf : summary.send_facts) {
        const esi::ChannelInfo* ch = m.ports[pf.port].channel;
        std::vector<SymVal> words = pf.words;
        words.resize(ch->flat_size, SymVal::Exact(0));
        next[ch] = std::move(words);
      }
      out.modules.push_back(std::move(summary));
    }
    if (next == facts) {
      break;
    }
    facts = std::move(next);
  }

  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

std::string RenderSymSummary(const ir::Compilation& comp, const CompilationSummary& summary) {
  std::string out;
  for (const ModuleSummary& m : summary.modules) {
    out += "module " + m.layer + (m.complete ? "" : " (incomplete)") + "\n";
    const ir::Module* module = comp.FindModule(m.layer);
    for (const SiteVerdict& site : m.sites) {
      const char* kind = site.kind == SiteVerdict::Kind::kAssert
                             ? "assert"
                             : site.kind == SiteVerdict::Kind::kDivisor ? "divisor" : "index";
      out += "  " + std::string(kind) + " b" + std::to_string(site.block) + "." +
             std::to_string(site.inst_index) + " " +
             (site.always_fails ? "FAILS" : site.proved ? "proved" : "unknown");
      if (site.proved && site.assumed) {
        out += " (assumed)";
      }
      if (site.tautology) {
        out += " (tautology)";
      }
      out += " value=" + site.value + "\n";
    }
    for (const BranchInfo& b : m.infeasible_branches) {
      out += "  branch b" + std::to_string(b.block) + "." + std::to_string(b.inst_index) +
             (b.true_infeasible ? " true-arm-infeasible" : "") +
             (b.false_infeasible ? " false-arm-infeasible" : "") +
             (b.assumed ? " (assumed)" : "") + "\n";
    }
    for (const PortFacts& pf : m.send_facts) {
      const esi::ChannelInfo* ch =
          module != nullptr && pf.port < static_cast<int>(module->ports.size())
              ? module->ports[pf.port].channel
              : nullptr;
      out += "  send " + (ch != nullptr ? ch->MessageStructName() : "port" + std::to_string(pf.port)) +
             ":";
      for (size_t w = 0; w < pf.words.size(); ++w) {
        const esi::FieldInfo* field = nullptr;
        if (ch != nullptr) {
          for (const esi::FieldInfo& f : ch->fields) {
            if (static_cast<int>(w) >= f.flat_offset &&
                static_cast<int>(w) < f.flat_offset + f.type.FlatSize()) {
              field = &f;
            }
          }
        }
        out += " ";
        if (field != nullptr && static_cast<int>(w) == field->flat_offset) {
          out += field->name + "=";
        }
        out += pf.words[w].ToString();
      }
      out += "\n";
    }
    out += "  paths=" + std::to_string(m.paths) + " merges=" + std::to_string(m.merges) +
           " widenings=" + std::to_string(m.widenings) +
           " solver-queries=" + std::to_string(m.solver_queries) +
           " enumerations=" + std::to_string(m.solver_enumerations) + "\n";
  }
  return out;
}

}  // namespace efeu::analysis::sym
