// The esmsym path-condition solver: a small, home-grown decision procedure
// over expression DAGs whose leaves are abstract SymVals. It decides assert
// and branch conditions three ways, in order of precision:
//
//   1. exact small-set enumeration — when every distinct leaf carries a
//      value set and the cross product is small, evaluate the DAG pointwise
//      with the *exact* IR scalar semantics (ir::EvalBinOp, including
//      bit-width truncation), partitioning combinations into true/false;
//   2. leaf projection — from the same enumeration, project each arm's
//      admitted values per leaf, giving the per-arm store refinements that
//      make chained `if (x == A) ... else if (x == B) ... else` dead arms
//      provable;
//   3. abstract fallback — evaluate the DAG over the interval + congruence
//      domain when enumeration is out of reach.
//
// The solver also answers "is this assert a *type tautology*" — true for
// every value the leaf storage types admit, independent of reachable values
// — which is what the assert-always-true lint rule reports (a contingent
// assert that merely happens to be provable is a verification success, not a
// spec smell).

#ifndef SRC_ANALYSIS_SYM_SOLVER_H_
#define SRC_ANALYSIS_SYM_SOLVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/analysis/sym/domain.h"
#include "src/esi/type.h"
#include "src/esm/ast.h"

namespace efeu::analysis::sym {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// One node of an expression DAG. Leaves snapshot the abstract value (and
// generation) of a slot record at the time the expression was built, so a
// later overwrite of the record cannot corrupt the meaning of an already
// computed temporary; refinement write-back checks the generation instead.
struct Expr {
  enum class Kind { kLeaf, kConst, kUn, kBin, kTrunc };
  Kind kind = Kind::kConst;

  // kLeaf.
  int record = -1;
  uint64_t gen = 0;
  SymVal leaf_val;
  Type leaf_type;  // Element storage type of the record (tautology checks).
  // Multi-word records (array fields) share one abstract cell across
  // elements, so a comparison against one element must not narrow the cell.
  bool refinable = true;

  // kConst.
  int32_t cval = 0;

  esm::UnaryOp un = esm::UnaryOp::kPlus;
  esm::BinaryOp bin = esm::BinaryOp::kAdd;
  Type trunc_type;  // kTrunc.
  ExprPtr a;
  ExprPtr b;
  // Node count of the DAG rooted here; builders cap expression growth on it.
  int size = 1;

  static ExprPtr Leaf(int record, uint64_t gen, SymVal val, Type type, bool refinable);
  static ExprPtr Const(int32_t v);
  static ExprPtr Un(esm::UnaryOp op, ExprPtr a);
  static ExprPtr Bin(esm::BinaryOp op, ExprPtr a, ExprPtr b);
  static ExprPtr Trunc(Type type, ExprPtr a);
};

// Hard caps keeping the solver strictly linear-ish per query.
inline constexpr int kMaxExprLeaves = 6;
inline constexpr int64_t kMaxCombos = 512;
inline constexpr int64_t kMaxTautologyCombos = 1024;

enum class Outcome {
  kAlwaysTrue,   // nonzero for every admitted leaf combination
  kAlwaysFalse,  // zero for every admitted leaf combination
  kUnknown,
};

// One per-arm leaf refinement: record's admitted values on that arm.
struct LeafRefinement {
  int record = -1;
  uint64_t gen = 0;
  SymVal refined;
};

struct SolveResult {
  Outcome outcome = Outcome::kUnknown;
  // Whether the condition ever failed to evaluate (division by zero in some
  // admitted combination): blocks "always" claims about executions.
  bool may_fail = false;
  // The decision depends on an assumed external channel contract.
  bool assumed = false;
  // Populated on enumeration: per-leaf admitted values when the condition is
  // nonzero / zero. Empty refinements mean "no narrowing learned".
  std::vector<LeafRefinement> when_true;
  std::vector<LeafRefinement> when_false;
  // Enumeration was exact (outcomes/refinements came from path 1/2 above).
  bool enumerated = false;
};

class Solver {
 public:
  // Decides `e != 0`. Counts work into the cumulative counters below.
  SolveResult Solve(const ExprPtr& e);

  // True when `e != 0` holds for every combination of values the leaf
  // *storage types* admit — i.e. the assert is vacuous no matter what the
  // program computes. Only decidable for small leaf storages; returns false
  // (not a claim) when enumeration is out of reach or any leaf is tainted by
  // an assumed contract.
  bool IsTypeTautology(const ExprPtr& e);

  // The verdict of `e != 0` over every combination of values the leaf
  // *storage types* admit, ignoring everything the analysis learned about
  // the actual values. kAlwaysTrue / kAlwaysFalse here means the outcome is
  // a property of the types alone — it holds against any contract-honoring
  // peer, not just the peers of this compilation. kUnknown when the outcome
  // varies, enumeration is out of reach, or the condition has no program
  // leaves (a constant condition is a control-flow idiom, e.g. `while (1)`,
  // not a type fact). When a subtree below a Trunc holds a leaf too wide to
  // enumerate, the Trunc node itself becomes the enumeration variable
  // (truncation is surjective onto its storage), so narrow-variable idioms
  // like `assert(b < 256)` over a u8 decide even when `b` was computed from
  // i32 values.
  Outcome StorageOutcome(const ExprPtr& e);

  // Abstract evaluation of the DAG over the SymVal domain (fallback path;
  // also used to value temporaries that carry expressions).
  SymVal Eval(const ExprPtr& e);

  uint64_t queries() const { return queries_; }
  uint64_t enumerations() const { return enumerations_; }
  uint64_t combos_evaluated() const { return combos_evaluated_; }

 private:
  uint64_t queries_ = 0;
  uint64_t enumerations_ = 0;
  uint64_t combos_evaluated_ = 0;
};

}  // namespace efeu::analysis::sym

#endif  // SRC_ANALYSIS_SYM_SOLVER_H_
