#include "src/analysis/sym/domain.h"

#include <algorithm>
#include <cstdlib>

#include "src/ir/opcode_info.h"

namespace efeu::analysis::sym {

namespace {

int64_t Gcd(int64_t a, int64_t b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Mathematical (always non-negative) residue.
int64_t Residue(int64_t v, int64_t m) {
  if (m <= 0) {
    return v;
  }
  int64_t r = v % m;
  return r < 0 ? r + m : r;
}

// Joins two congruences (mod == 0 is "exactly res", mod == 1 is top).
void JoinCongruence(int64_t ma, int64_t ra, int64_t mb, int64_t rb, int64_t* m_out,
                    int64_t* r_out) {
  int64_t m = Gcd(Gcd(ma, mb), ra - rb);
  *m_out = m;
  *r_out = Residue(ra, m);
}

bool CongruenceAdmits(int64_t m, int64_t r, int64_t v) {
  if (m == 0) {
    return v == r;
  }
  if (m == 1) {
    return true;
  }
  return Residue(v, m) == r;
}

// Conservative limit on interval sizes we are willing to enumerate when
// deriving sets or checking subsumption structurally.
constexpr int64_t kEnumerationLimit = 64;

}  // namespace

SymVal SymVal::Exact(int32_t v) {
  SymVal out;
  out.interval = Interval::Exact(v);
  out.mod = 0;
  out.res = v;
  out.values = {v};
  return out;
}

SymVal SymVal::FromInterval(const Interval& iv) {
  SymVal out;
  out.interval = iv;
  out.mod = 1;
  out.res = 0;
  out.Canonicalize();
  return out;
}

SymVal SymVal::FromSet(std::vector<int32_t> vals) {
  SymVal out;
  if (vals.empty()) {
    return Top();
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  out.interval = Interval::Of(vals.front(), vals.back());
  // The congruence of a set is cheap (a gcd chain over the gaps) and worth
  // keeping even when the set itself is too big to track.
  out.mod = 0;
  out.res = vals.front();
  for (int32_t v : vals) {
    JoinCongruence(out.mod, out.res, 0, v, &out.mod, &out.res);
  }
  if (static_cast<int>(vals.size()) <= kMaxSetSize) {
    out.values = std::move(vals);
  }
  return out;
}

SymVal SymVal::Storage(const Type& type) {
  if (type.IsBoolish()) {
    return FromSet({0, 1});
  }
  return FromInterval(Interval::Storage(type));
}

SymVal SymVal::Top() {
  SymVal out;
  out.interval = Interval::Full();
  out.mod = 1;
  out.res = 0;
  return out;
}

bool SymVal::Contains(int64_t v) const {
  if (!interval.Contains(v)) {
    return false;
  }
  if (!CongruenceAdmits(mod, res, v)) {
    return false;
  }
  if (HasSet()) {
    return std::binary_search(values.begin(), values.end(), static_cast<int32_t>(v));
  }
  return true;
}

bool SymVal::DefinitelyZero() const {
  return interval.DefinitelyZero();
}

bool SymVal::DefinitelyNonZero() const {
  return interval.DefinitelyNonZero() || !Contains(0);
}

bool SymVal::SubsumedBy(const SymVal& other) const {
  // The taint is part of the lattice: merging an assumed value into a sound
  // one must not lose the taint.
  if (assumed && !other.assumed) {
    return false;
  }
  if (HasSet()) {
    for (int32_t v : values) {
      if (!other.Contains(v)) {
        return false;
      }
    }
    return true;
  }
  int64_t width = interval.hi - interval.lo;
  if (width < kEnumerationLimit) {
    for (int64_t v = interval.lo; v <= interval.hi; ++v) {
      if (CongruenceAdmits(mod, res, v) && !other.Contains(v)) {
        return false;
      }
    }
    return true;
  }
  if (other.HasSet()) {
    return false;  // A big interval never fits a small set.
  }
  if (interval.lo < other.interval.lo || interval.hi > other.interval.hi) {
    return false;
  }
  // Does our congruence imply theirs?
  if (other.mod == 1) {
    return true;
  }
  if (other.mod == 0) {
    return false;  // We are wide, they are exact.
  }
  if (mod == 0) {
    return CongruenceAdmits(other.mod, other.res, res);
  }
  if (mod == 1) {
    return false;
  }
  return mod % other.mod == 0 && Residue(res, other.mod) == other.res;
}

void SymVal::Canonicalize() {
  if (HasSet()) {
    interval = Interval::Of(values.front(), values.back());
    mod = 0;
    res = values.front();
    for (int32_t v : values) {
      JoinCongruence(mod, res, 0, v, &mod, &res);
    }
    return;
  }
  if (mod == 0) {
    // Exact by congruence; reconcile toward the interval when they disagree
    // (never happens for transfer results, but keeps the invariant simple).
    if (!interval.Contains(res)) {
      mod = 1;
      res = 0;
    } else {
      interval = Interval::Exact(res);
      values = {static_cast<int32_t>(res)};
      return;
    }
  }
  res = Residue(res, mod);
  int64_t width = interval.hi - interval.lo;
  if (width < kEnumerationLimit) {
    std::vector<int32_t> vals;
    for (int64_t v = interval.lo; v <= interval.hi; ++v) {
      if (CongruenceAdmits(mod, res, v)) {
        vals.push_back(static_cast<int32_t>(v));
        if (static_cast<int>(vals.size()) > kMaxSetSize) {
          return;
        }
      }
    }
    if (!vals.empty()) {
      bool keep_assumed = assumed;
      *this = FromSet(std::move(vals));
      assumed = keep_assumed;
    }
  }
}

bool SymVal::operator==(const SymVal& other) const {
  return interval == other.interval && mod == other.mod && res == other.res &&
         values == other.values && assumed == other.assumed;
}

std::string SymVal::ToString() const {
  std::string out;
  if (HasSet()) {
    if (values.size() == 1) {
      out = std::to_string(values[0]);
    } else {
      out = "{";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += std::to_string(values[i]);
      }
      out += "}";
    }
  } else {
    out = "[" + std::to_string(interval.lo) + "," + std::to_string(interval.hi) + "]";
    if (mod > 1) {
      out += " mod" + std::to_string(mod) + "=" + std::to_string(res);
    }
  }
  if (assumed) {
    out += "?";
  }
  return out;
}

SymVal Join(const SymVal& a, const SymVal& b) {
  SymVal out;
  out.assumed = a.assumed || b.assumed;
  if (a.HasSet() && b.HasSet() &&
      static_cast<int>(a.values.size() + b.values.size()) <= 2 * kMaxSetSize) {
    std::vector<int32_t> merged = a.values;
    merged.insert(merged.end(), b.values.begin(), b.values.end());
    bool keep_assumed = out.assumed;
    out = SymVal::FromSet(std::move(merged));
    out.assumed = keep_assumed;
    return out;
  }
  out.interval = Join(a.interval, b.interval);
  JoinCongruence(a.mod, a.res, b.mod, b.res, &out.mod, &out.res);
  out.Canonicalize();
  return out;
}

SymVal Truncate(const SymVal& v, const Type& type) {
  if (v.HasSet()) {
    std::vector<int32_t> vals;
    vals.reserve(v.values.size());
    for (int32_t x : v.values) {
      vals.push_back(type.Truncate(x));
    }
    SymVal out = SymVal::FromSet(std::move(vals));
    out.assumed = v.assumed;
    return out;
  }
  SymVal out;
  out.assumed = v.assumed;
  out.interval = TruncateInterval(v.interval, type);
  if (type.IsBoolish()) {
    // Normalization to 0/1 is not modular; no congruence survives.
    out.mod = 1;
    out.res = 0;
  } else {
    // u8/i16/enum truncation is a reduction mod 2^w (up to sign extension,
    // which preserves residues mod 2^w), so the congruence survives as
    // gcd(m, 2^w). i32 passes through untouched.
    int width = type.BitWidth();
    if (width >= 32) {
      out.mod = v.mod;
      out.res = v.res;
    } else {
      int64_t storage_mod = int64_t{1} << width;
      out.mod = Gcd(v.mod == 0 ? storage_mod : v.mod, storage_mod);
      out.res = Residue(v.mod == 0 ? v.res : v.res, out.mod);
    }
  }
  out.Canonicalize();
  return out;
}

SymVal EvalUnOp(esm::UnaryOp op, const SymVal& a) {
  if (a.HasSet()) {
    std::vector<int32_t> vals;
    vals.reserve(a.values.size());
    for (int32_t x : a.values) {
      vals.push_back(ir::EvalUnOp(op, x));
    }
    SymVal out = SymVal::FromSet(std::move(vals));
    out.assumed = a.assumed;
    return out;
  }
  SymVal out;
  out.assumed = a.assumed;
  out.interval = EvalUnOpInterval(op, a.interval);
  switch (op) {
    case esm::UnaryOp::kPlus:
      out.mod = a.mod;
      out.res = a.res;
      break;
    case esm::UnaryOp::kNegate:
      out.mod = a.mod;
      out.res = Residue(-a.res, a.mod);
      break;
    case esm::UnaryOp::kBitNot:
      // ~x == -x - 1, which is modular.
      out.mod = a.mod;
      out.res = Residue(-a.res - 1, a.mod);
      break;
    case esm::UnaryOp::kLogicalNot:
      out.mod = 1;
      out.res = 0;
      break;
  }
  out.Canonicalize();
  return out;
}

SymVal EvalBinOp(esm::BinaryOp op, const SymVal& a, const SymVal& b, bool* may_fail) {
  bool divides = op == esm::BinaryOp::kDiv || op == esm::BinaryOp::kMod;
  if (may_fail != nullptr && divides && b.Contains(0)) {
    *may_fail = true;
  }
  if (a.HasSet() && b.HasSet() &&
      static_cast<int64_t>(a.values.size()) * static_cast<int64_t>(b.values.size()) <=
          kEnumerationLimit) {
    std::vector<int32_t> vals;
    for (int32_t x : a.values) {
      for (int32_t y : b.values) {
        int32_t r = 0;
        if (ir::EvalBinOp(op, x, y, &r)) {
          vals.push_back(r);
        }
      }
    }
    if (!vals.empty()) {
      SymVal out = SymVal::FromSet(std::move(vals));
      out.assumed = a.assumed || b.assumed;
      return out;
    }
    // Every combination fails (division by zero on all paths): there is no
    // result value; stay conservative for any downstream use.
    SymVal out = SymVal::Top();
    out.assumed = a.assumed || b.assumed;
    return out;
  }
  SymVal out;
  out.assumed = a.assumed || b.assumed;
  out.interval = EvalBinOpInterval(op, a.interval, b.interval);
  out.mod = 1;
  out.res = 0;
  switch (op) {
    case esm::BinaryOp::kAdd:
      out.mod = Gcd(a.mod, b.mod);
      out.res = Residue(a.res + b.res, out.mod);
      break;
    case esm::BinaryOp::kSub:
      out.mod = Gcd(a.mod, b.mod);
      out.res = Residue(a.res - b.res, out.mod);
      break;
    case esm::BinaryOp::kMul:
      if (a.mod == 0 && b.mod == 0) {
        out.mod = 0;
        out.res = a.res * b.res;
      } else if (a.mod == 0 || b.mod == 0) {
        // x * c with x == r (mod m): result == r*c (mod m*|c|).
        int64_t c = a.mod == 0 ? a.res : b.res;
        int64_t m = a.mod == 0 ? b.mod : a.mod;
        int64_t r = a.mod == 0 ? b.res : a.res;
        int64_t ac = c < 0 ? -c : c;
        if (ac != 0 && m > 1 && m <= (int64_t{1} << 20) && ac <= (int64_t{1} << 20)) {
          out.mod = m * ac;
          out.res = Residue(r * c, out.mod);
        } else if (ac != 0 && m == 1) {
          out.mod = ac;
          out.res = 0;  // x*c == 0 (mod |c|) for any x.
        } else if (ac == 0) {
          out.mod = 0;
          out.res = 0;
        }
      } else if (a.mod > 1 && b.mod > 1 && a.mod <= (int64_t{1} << 16) &&
                 b.mod <= (int64_t{1} << 16)) {
        out.mod = Gcd(Gcd(a.mod * b.mod, a.mod * b.res), b.mod * a.res);
        out.res = Residue(a.res * b.res, out.mod);
      }
      break;
    case esm::BinaryOp::kShl:
      if (b.mod == 0 && b.res >= 0 && b.res < 32) {
        int64_t factor = int64_t{1} << b.res;
        if (a.mod == 0) {
          out.mod = 0;
          out.res = a.res * factor;
        } else if (a.mod >= 1 && a.mod * factor <= (int64_t{1} << 31)) {
          out.mod = a.mod == 1 ? factor : a.mod * factor;
          out.res = Residue(a.res * factor, out.mod);
        }
      }
      break;
    case esm::BinaryOp::kEq:
    case esm::BinaryOp::kNe: {
      // The interval transfer already decides overlap; add the congruence
      // disjointness it cannot see (e.g. even vs odd).
      int64_t g = Gcd(a.mod, b.mod);
      bool congruence_disjoint = (g == 0 && a.res != b.res) ||
                                 (g > 1 && Residue(a.res, g) != Residue(b.res, g));
      if (congruence_disjoint) {
        out = SymVal::Exact(op == esm::BinaryOp::kEq ? 0 : 1);
        out.assumed = a.assumed || b.assumed;
        return out;
      }
      break;
    }
    default:
      break;
  }
  if (out.interval.hi > out.interval.lo &&
      out.interval.hi - out.interval.lo >= (int64_t{1} << 33)) {
    // The interval transfer saturated (overflow hull); a congruence derived
    // from non-wrapped arithmetic would be unsound past int32 wraparound.
    out.mod = 1;
    out.res = 0;
  }
  out.Canonicalize();
  return out;
}

SymVal Widen(const SymVal& prev, const SymVal& next, const Interval& storage) {
  SymVal joined = Join(prev, next);
  if (joined.SubsumedBy(prev)) {
    return prev;
  }
  SymVal out;
  out.assumed = joined.assumed;
  out.mod = joined.mod;
  out.res = joined.res;
  int64_t lo = joined.interval.lo;
  int64_t hi = joined.interval.hi;
  if (lo < prev.interval.lo) {
    lo = lo >= storage.lo ? storage.lo : Interval::Full().lo;
  }
  if (hi > prev.interval.hi) {
    hi = hi <= storage.hi ? storage.hi : Interval::Full().hi;
  }
  out.interval = Interval::Of(lo, hi);
  // No set: a set that changed under join would just be re-derived and grow
  // again next round; the interval/congruence hull is the stable form.
  if (out.mod == 0 && !(out.interval.IsExact() && out.interval.lo == out.res)) {
    out.mod = 1;
    out.res = 0;
  }
  return out;
}

SymVal Refine(const SymVal& v, const SymVal& by) {
  if (v.HasSet()) {
    std::vector<int32_t> vals;
    for (int32_t x : v.values) {
      if (by.Contains(x)) {
        vals.push_back(x);
      }
    }
    if (vals.empty() || vals.size() == v.values.size()) {
      return v;
    }
    SymVal out = SymVal::FromSet(std::move(vals));
    out.assumed = v.assumed || by.assumed;
    return out;
  }
  if (!v.interval.Intersects(by.interval)) {
    return v;
  }
  SymVal out = v;
  out.assumed = v.assumed || by.assumed;
  out.interval = Interval::Of(std::max(v.interval.lo, by.interval.lo),
                              std::min(v.interval.hi, by.interval.hi));
  if (out.mod == 1 && by.mod != 1) {
    out.mod = by.mod;
    out.res = by.res;
  }
  out.Canonicalize();
  return out;
}

SymVal ExcludeValue(const SymVal& v, int32_t x) {
  if (v.HasSet()) {
    std::vector<int32_t> vals;
    for (int32_t y : v.values) {
      if (y != x) {
        vals.push_back(y);
      }
    }
    if (vals.empty() || vals.size() == v.values.size()) {
      return v;
    }
    SymVal out = SymVal::FromSet(std::move(vals));
    out.assumed = v.assumed;
    return out;
  }
  SymVal out = v;
  if (v.interval.lo == x && v.interval.hi > x) {
    out.interval = Interval::Of(static_cast<int64_t>(x) + 1, v.interval.hi);
  } else if (v.interval.hi == x && v.interval.lo < x) {
    out.interval = Interval::Of(v.interval.lo, static_cast<int64_t>(x) - 1);
  } else {
    return v;
  }
  out.Canonicalize();
  return out;
}

}  // namespace efeu::analysis::sym
