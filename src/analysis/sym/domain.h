// The abstract value domain of esmsym (src/analysis/sym): a bitvector
// interval joined with a congruence (value == res mod m) and an optional
// exact small value set. The interval part reuses the esmlint dataflow
// lattice (src/analysis/dataflow.h) so both analyses agree on truncation and
// operator transfer; the congruence part survives u8/i16 wraparound exactly
// (truncation to a 2^w storage is itself a congruence), which is what makes
// the domain precise at the enum-promotion and truncation corners the
// differential fuzzer caught in the C backend.
//
// Every SymVal additionally carries an `assumed` taint: true when the value
// (transitively) depends on an ESI channel contract that was assumed for an
// external sender rather than derived from compiled code. Proof consumers
// that must be unconditionally sound (lint findings, monitor-bound
// discharge) require untainted values; see DESIGN.md "Symbolic execution".

#ifndef SRC_ANALYSIS_SYM_DOMAIN_H_
#define SRC_ANALYSIS_SYM_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/esm/ast.h"
#include "src/ir/ir.h"

namespace efeu::analysis::sym {

// Largest exact value set tracked; joins beyond this collapse to the
// interval + congruence hull. Eight covers every enum in the shipped specs
// and the fault/reset nondet arities with room to spare.
inline constexpr int kMaxSetSize = 8;

// One abstract int32 value.
//
// Congruence encoding (the classic lattice): mod == 0 means the value is
// exactly `res`; mod == 1 means no congruence information; mod == m > 1
// means value == res (mod m) with 0 <= res < m.
struct SymVal {
  Interval interval = Interval::Exact(0);
  int64_t mod = 0;
  int64_t res = 0;
  // Sorted, unique, non-empty when tracked; empty means "set not tracked"
  // (the interval/congruence hull is then the only bound).
  std::vector<int32_t> values;
  bool assumed = false;

  static SymVal Exact(int32_t v);
  static SymVal FromInterval(const Interval& iv);
  // From an arbitrary (possibly unsorted, duplicated) value list; collapses
  // to the hull when the set exceeds kMaxSetSize.
  static SymVal FromSet(std::vector<int32_t> vals);
  // Everything `type`'s storage admits after truncation.
  static SymVal Storage(const Type& type);
  static SymVal Top();

  bool HasSet() const { return !values.empty(); }
  bool IsExact() const { return interval.IsExact(); }
  bool Contains(int64_t v) const;
  bool DefinitelyZero() const;
  bool DefinitelyNonZero() const;
  // Every concrete value admitted by *this is admitted by `other` (and the
  // taint does not weaken: an assumed value is never subsumed by a sound
  // one).
  bool SubsumedBy(const SymVal& other) const;

  // Re-derives the cheapest consistent form: synthesizes a value set from a
  // small interval filtered through the congruence, tightens the interval
  // and congruence from the set, drops redundant congruences.
  void Canonicalize();

  bool operator==(const SymVal& other) const;

  // Compact rendering for dumps and goldens: "0", "{0,2}", "[0,255]",
  // "[0,254] mod2=0"; assumed values carry a trailing "?".
  std::string ToString() const;
};

// Lattice join (set union while small, hulls otherwise).
SymVal Join(const SymVal& a, const SymVal& b);

// Abstract transfer of Type::Truncate: exact pointwise on sets, interval via
// TruncateInterval, congruence via gcd with the storage modulus 2^w (u8 and
// i16 truncation are reductions mod 256 / 65536 up to sign; bit/bool
// normalization keeps a congruence only for exact values).
SymVal Truncate(const SymVal& v, const Type& type);

SymVal EvalUnOp(esm::UnaryOp op, const SymVal& a);
// Mirrors ir::EvalBinOp's partial semantics: combos that fail (division by
// zero) contribute no value. `may_fail`, when non-null, is set to true iff
// some admitted operand pair fails.
SymVal EvalBinOp(esm::BinaryOp op, const SymVal& a, const SymVal& b, bool* may_fail = nullptr);

// Widening for loop heads: where `next` grew beyond `prev`, the interval
// jumps straight to the `storage` hull (frames hold truncated storage
// values, so that hull is sound) and the set is dropped; congruences join
// normally (gcd chains are logarithmic, they converge on their own).
SymVal Widen(const SymVal& prev, const SymVal& next, const Interval& storage);

// Intersection-style refinement: the values of `v` also admitted by `by`
// (used when a branch proves a leaf lies in `by`). Returns `v` unchanged
// when the intersection would be empty (refinement is advisory, never a
// feasibility claim on its own).
SymVal Refine(const SymVal& v, const SymVal& by);

// Carves the single value `x` out of `v` where the domain can express the
// exclusion exactly: a tracked set drops the member, an interval endpoint
// equal to `x` tightens by one. Anywhere else (x strictly inside an interval)
// the exclusion is not representable and `v` returns unchanged. Used for the
// arm-local strengthening of a branch or assert condition: on the nonzero arm
// the condition cell itself excludes 0 even when the cell is not a leaf of
// its own defining expression (the short-circuit `||` lowering joins such
// cells directly).
SymVal ExcludeValue(const SymVal& v, int32_t x);

}  // namespace efeu::analysis::sym

#endif  // SRC_ANALYSIS_SYM_DOMAIN_H_
