// esmsym: path-based symbolic execution over the lowered IR.
//
// The executor walks a module's CFG with an abstract frame (one SymVal cell
// per int32 frame slot, each carrying the expression that computed it),
// merging states at join points (reusing src/analysis/cfg for structure) and
// widening loop heads, so exploration always terminates. Branches are
// decided by the path-condition solver; a decided branch propagates to one
// successor only, and an undecided one propagates *refined* stores to both
// (each arm learns the leaf valuations that can reach it). Nondet choices —
// including the checker's fault/reset choices (VerifyConfig::fault_events /
// reset_events surface as kNondet) — become exact value sets, so one
// converged summary covers every N-fault schedule instead of one explicit
// state per schedule.
//
// Channel I/O is a symbolic rendezvous: kRecv draws per-word facts for the
// port's channel (computed sender summaries for in-compilation senders,
// declared facts for native checker processes, assumed ESI contract ranges
// for external senders — the same ranges monitor::MonitorSpec::FromSystem
// derives), and kSend folds the staged words into the module's send summary.
// AnalyzeCompilationSym iterates modules to a fact fixpoint
// (assume-guarantee: the seed over-approximates every real message, and the
// transfer is monotone, so each round's summaries stay sound).
//
// The proof obligations tracked per module are exactly the executor's
// failure points: kAssert conditions, division/modulo divisors, and
// kLoadIdx/kStoreIdx index bounds. A module whose every obligation is proved
// without assumed facts cannot fail a safety check on any schedule — the
// basis for the checker fast path and the monitor-bound discharge.

#ifndef SRC_ANALYSIS_SYM_SYMEXEC_H_
#define SRC_ANALYSIS_SYM_SYMEXEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/sym/domain.h"
#include "src/esi/system_info.h"
#include "src/ir/compile.h"
#include "src/ir/ir.h"
#include "src/support/source_location.h"

namespace efeu::analysis::sym {

// How to seed facts for channels whose sender is outside the compilation
// (and not covered by declared native facts).
enum class ExternalFacts {
  // The ESI contract ranges (enum ordinals, storage ranges). These are an
  // *assumption* about the external world — nothing compiled here enforces
  // them — so every derived value carries the assumed taint and unsound
  // consumers (lint, discharge) ignore those proofs.
  kContract,
  // No assumption at all: external words are unconstrained int32. The
  // differential-fuzz cross-check uses this (fuzz stimuli are raw words).
  kTop,
};

struct SymOptions {
  ExternalFacts external_facts = ExternalFacts::kContract;
  // Joins at one block before the interval part widens to the storage hull.
  int widen_after = 12;
  // Global block-visit budget; exceeding it marks the summary incomplete
  // (every obligation then stays unproved).
  uint64_t max_block_visits = 20000;
  // Assume-guarantee rounds over the compilation's modules.
  int max_rounds = 3;
};

// One proof obligation site (a point where the executor can fail).
struct SiteVerdict {
  enum class Kind {
    kAssert,   // kAssert condition must be nonzero
    kDivisor,  // kBinOp div/mod divisor must be nonzero
    kIndex,    // kLoadIdx/kStoreIdx index must be in [0, bound)
  };
  Kind kind = Kind::kAssert;
  int block = 0;
  int inst_index = 0;
  SourceLocation loc;
  // Holds for every admitted valuation at the converged state.
  bool proved = false;
  // The proof leans on an assumed external contract.
  bool assumed = false;
  // kAssert only: nonzero for every value the leaf *storage types* admit —
  // the assert is vacuous (the assert-always-true lint rule).
  bool tautology = false;
  // Fails for every admitted valuation (definite bug if reachable).
  bool always_fails = false;
  // Rendered abstract value of the condition / divisor / index.
  std::string value;
};

// A branch with at least one statically infeasible arm.
struct BranchInfo {
  int block = 0;
  int inst_index = 0;
  SourceLocation loc;
  bool true_infeasible = false;
  bool false_infeasible = false;
  // The infeasibility proof leans on an assumed external contract.
  bool assumed = false;
  // The dead arm already follows from the leaf storage types alone: it is
  // dead against ANY contract-honoring peer, not just the peers this
  // compilation happens to pair the module with. Only these are lint
  // findings; peer-derived dead arms are configuration facts (visible in
  // --dump-sym and exploited by the checker fast path) rather than spec
  // defects.
  bool from_types = false;
};

// Per-word join of everything a module may send on one port.
struct PortFacts {
  int port = 0;
  std::vector<SymVal> words;
};

struct ModuleSummary {
  std::string layer;
  // Exploration converged within budget; false leaves all sites unproved.
  bool complete = true;
  std::vector<SiteVerdict> sites;
  std::vector<BranchInfo> infeasible_branches;
  std::vector<PortFacts> send_facts;

  // Exploration statistics ("paths" counts terminated path segments: halts,
  // merges into already-covered states, definite failures).
  uint64_t paths = 0;
  uint64_t merges = 0;
  uint64_t widenings = 0;
  uint64_t blocks_visited = 0;
  uint64_t solver_queries = 0;
  uint64_t solver_enumerations = 0;
  uint64_t solver_combos = 0;
  double seconds = 0;

  // Every obligation proved (complete exploration). `*any_assumed` reports
  // whether any proof used an assumed contract.
  bool AllProved(bool* any_assumed = nullptr) const;
};

// Facts per channel: one SymVal per flat message word.
using ChannelFacts = std::map<const esi::ChannelInfo*, std::vector<SymVal>>;

// Contract-derived per-word facts for one channel (see ExternalFacts).
std::vector<SymVal> ContractWordFacts(const esi::SystemInfo& info, const esi::ChannelInfo& channel,
                                      ExternalFacts mode);

// Symbolically executes one module under the given per-channel recv facts.
ModuleSummary AnalyzeModuleSym(const ir::Module& module, const ChannelFacts& facts,
                               const SymOptions& options = {});

struct CompilationSummary {
  std::vector<ModuleSummary> modules;
  int rounds = 0;
  double seconds = 0;

  bool AllProved(bool* any_assumed = nullptr) const;
  uint64_t TotalPaths() const;
  uint64_t TotalSolverQueries() const;
};

// Runs the assume-guarantee iteration over every module of a compilation.
// `native_facts` declares what non-compiled (native checker) processes may
// send, per channel; those facts are trusted (taint-free) — the explicit
// checker trusts the same native code.
CompilationSummary AnalyzeCompilationSym(const ir::Compilation& comp,
                                         const SymOptions& options = {},
                                         const ChannelFacts& native_facts = {});

// Deterministic human-readable rendering (goldens, esmc --dump-sym).
std::string RenderSymSummary(const ir::Compilation& comp, const CompilationSummary& summary);

}  // namespace efeu::analysis::sym

#endif  // SRC_ANALYSIS_SYM_SYMEXEC_H_
