#include "src/analysis/dataflow.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <deque>
#include <limits>

#include "src/analysis/cfg.h"
#include "src/ir/opcode_info.h"

namespace efeu::analysis {

namespace {

constexpr int64_t kI32Min = std::numeric_limits<int32_t>::min();
constexpr int64_t kI32Max = std::numeric_limits<int32_t>::max();

// Joins into a block entry this many times before widening kicks in.
constexpr int kWidenAfter = 8;

// The executor evaluates in int64 and casts the result back to int32; once a
// bound leaves the int32 range the cast can wrap anywhere, so the sound
// abstraction is the full range.
Interval ClampWrap(int64_t lo, int64_t hi) {
  if (lo < kI32Min || hi > kI32Max) {
    return Interval::Full();
  }
  return Interval{lo, hi};
}

int64_t Mod(int64_t v, int64_t m) { return ((v % m) + m) % m; }

// Smallest power of two strictly greater than `v` (v >= 0, v <= INT32_MAX).
int64_t NextPow2(int64_t v) {
  int64_t p = 1;
  while (p <= v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

Interval Interval::Exact(int64_t v) { return Interval{v, v}; }
Interval Interval::Of(int64_t lo, int64_t hi) { return Interval{lo, hi}; }
Interval Interval::Full() { return Interval{kI32Min, kI32Max}; }

Interval Interval::Storage(const Type& type) {
  switch (type.kind) {
    case ScalarKind::kBit:
    case ScalarKind::kBool:
      return Interval{0, 1};
    case ScalarKind::kU8:
    case ScalarKind::kEnum:
      return Interval{0, 255};
    case ScalarKind::kI16:
      return Interval{-32768, 32767};
    case ScalarKind::kI32:
      return Full();
  }
  return Full();
}

Interval Join(const Interval& a, const Interval& b) {
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval TruncateInterval(const Interval& v, const Type& type) {
  switch (type.kind) {
    case ScalarKind::kBit:
    case ScalarKind::kBool:
      if (v.DefinitelyZero()) {
        return Interval{0, 0};
      }
      if (v.DefinitelyNonZero()) {
        return Interval{1, 1};
      }
      return Interval{0, 1};
    case ScalarKind::kU8:
    case ScalarKind::kEnum: {
      if (v.hi - v.lo + 1 >= 256) {
        return Interval{0, 255};
      }
      int64_t lo = Mod(v.lo, 256);
      int64_t hi = Mod(v.hi, 256);
      return lo <= hi ? Interval{lo, hi} : Interval{0, 255};
    }
    case ScalarKind::kI16: {
      if (v.hi - v.lo + 1 >= 65536) {
        return Interval{-32768, 32767};
      }
      int64_t lo = static_cast<int16_t>(static_cast<uint16_t>(Mod(v.lo, 65536)));
      int64_t hi = static_cast<int16_t>(static_cast<uint16_t>(Mod(v.hi, 65536)));
      return lo <= hi ? Interval{lo, hi} : Interval{-32768, 32767};
    }
    case ScalarKind::kI32:
      return v;
  }
  return v;
}

Interval EvalUnOpInterval(esm::UnaryOp op, const Interval& a) {
  // Exact operands fold through the shared scalar evaluator
  // (src/ir/opcode_info.h), so singleton results agree bit-for-bit with every
  // execution tier instead of re-deriving each operator's arithmetic here.
  if (a.IsExact()) {
    return Interval::Exact(ir::EvalUnOp(op, static_cast<int32_t>(a.lo)));
  }
  switch (op) {
    case esm::UnaryOp::kPlus:
      return a;
    case esm::UnaryOp::kNegate:
      return ClampWrap(-a.hi, -a.lo);
    case esm::UnaryOp::kBitNot:
      return Interval{-a.hi - 1, -a.lo - 1};
    case esm::UnaryOp::kLogicalNot:
      if (a.DefinitelyZero()) {
        return Interval{1, 1};
      }
      if (a.DefinitelyNonZero()) {
        return Interval{0, 0};
      }
      return Interval{0, 1};
  }
  return Interval::Full();
}

namespace {

Interval FromCandidates(int64_t c0, int64_t c1, int64_t c2, int64_t c3) {
  return ClampWrap(std::min({c0, c1, c2, c3}), std::max({c0, c1, c2, c3}));
}

Interval Bool01(bool definitely_true, bool definitely_false) {
  if (definitely_true) {
    return Interval{1, 1};
  }
  if (definitely_false) {
    return Interval{0, 0};
  }
  return Interval{0, 1};
}

}  // namespace

Interval EvalBinOpInterval(esm::BinaryOp op, const Interval& a, const Interval& b) {
  // Exact operands: fold via the shared scalar evaluator. Division/modulo by
  // an exact zero stays partial (a checker-visible runtime error, not a
  // value) and falls through to the conservative per-operator handling.
  if (a.IsExact() && b.IsExact()) {
    int32_t folded = 0;
    if (ir::EvalBinOp(op, static_cast<int32_t>(a.lo), static_cast<int32_t>(b.lo), &folded)) {
      return Interval::Exact(folded);
    }
  }
  switch (op) {
    case esm::BinaryOp::kAdd:
      return ClampWrap(a.lo + b.lo, a.hi + b.hi);
    case esm::BinaryOp::kSub:
      return ClampWrap(a.lo - b.hi, a.hi - b.lo);
    case esm::BinaryOp::kMul:
      return FromCandidates(a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi);
    case esm::BinaryOp::kDiv: {
      if (b.Contains(0)) {
        // Division by zero is a checker-visible runtime error, not a value;
        // bound the surviving executions by |a / b| <= |a| for |b| >= 1.
        int64_t m = std::max(std::abs(a.lo), std::abs(a.hi));
        return ClampWrap(-m, m);
      }
      return FromCandidates(a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi);
    }
    case esm::BinaryOp::kMod: {
      int64_t m = std::max(std::abs(b.lo), std::abs(b.hi));
      if (m == 0) {
        return Interval::Full();  // Always a runtime error.
      }
      // C truncation: the result's sign follows the dividend.
      int64_t lo = a.lo >= 0 ? 0 : -(m - 1);
      int64_t hi = a.hi <= 0 ? 0 : m - 1;
      // |a % b| <= |a|.
      int64_t abs_a = std::max(std::abs(a.lo), std::abs(a.hi));
      return Interval{std::max(lo, -abs_a), std::min(hi, abs_a)};
    }
    case esm::BinaryOp::kShl:
    case esm::BinaryOp::kShr: {
      // The executor yields 0 for shift amounts outside [0, 31].
      int64_t s_lo = std::max<int64_t>(b.lo, 0);
      int64_t s_hi = std::min<int64_t>(b.hi, 31);
      Interval result{0, 0};
      bool have = false;
      if (b.lo < 0 || b.hi > 31) {
        have = true;  // Zero is a possible outcome.
      }
      if (s_lo <= s_hi) {
        Interval shifted;
        if (op == esm::BinaryOp::kShl) {
          shifted = FromCandidates(a.lo * (int64_t{1} << s_lo), a.lo * (int64_t{1} << s_hi),
                                   a.hi * (int64_t{1} << s_lo), a.hi * (int64_t{1} << s_hi));
        } else {
          shifted = FromCandidates(a.lo >> s_lo, a.lo >> s_hi, a.hi >> s_lo, a.hi >> s_hi);
        }
        result = have ? Join(result, shifted) : shifted;
        have = true;
      }
      return have ? result : Interval{0, 0};
    }
    case esm::BinaryOp::kLt:
      return Bool01(a.hi < b.lo, a.lo >= b.hi);
    case esm::BinaryOp::kGt:
      return Bool01(a.lo > b.hi, a.hi <= b.lo);
    case esm::BinaryOp::kLe:
      return Bool01(a.hi <= b.lo, a.lo > b.hi);
    case esm::BinaryOp::kGe:
      return Bool01(a.lo >= b.hi, a.hi < b.lo);
    case esm::BinaryOp::kEq:
      return Bool01(a.IsExact() && b.IsExact() && a.lo == b.lo, !a.Intersects(b));
    case esm::BinaryOp::kNe:
      return Bool01(!a.Intersects(b), a.IsExact() && b.IsExact() && a.lo == b.lo);
    case esm::BinaryOp::kBitAnd:
      if (a.IsExact() && b.IsExact()) {
        return Interval::Exact(static_cast<int32_t>(a.lo & b.lo));
      }
      if (a.lo >= 0 && b.lo >= 0) {
        return Interval{0, std::min(a.hi, b.hi)};
      }
      return Interval::Full();
    case esm::BinaryOp::kBitOr:
      if (a.IsExact() && b.IsExact()) {
        return Interval::Exact(static_cast<int32_t>(a.lo | b.lo));
      }
      if (a.lo >= 0 && b.lo >= 0) {
        // a|b never clears bits of either operand and never sets a bit above
        // both operands' leading bits.
        return Interval{std::max(a.lo, b.lo), NextPow2(std::max(a.hi, b.hi)) - 1};
      }
      return Interval::Full();
    case esm::BinaryOp::kBitXor:
      if (a.IsExact() && b.IsExact()) {
        return Interval::Exact(static_cast<int32_t>(a.lo ^ b.lo));
      }
      if (a.lo >= 0 && b.lo >= 0) {
        return Interval{0, NextPow2(std::max(a.hi, b.hi)) - 1};
      }
      return Interval::Full();
    case esm::BinaryOp::kLogicalAnd:
      return Bool01(a.DefinitelyNonZero() && b.DefinitelyNonZero(),
                    a.DefinitelyZero() || b.DefinitelyZero());
    case esm::BinaryOp::kLogicalOr:
      return Bool01(a.DefinitelyNonZero() || b.DefinitelyNonZero(),
                    a.DefinitelyZero() && b.DefinitelyZero());
  }
  return Interval::Full();
}

namespace {

std::vector<int> BuildRecordOf(const ir::Module& module) {
  std::vector<int> record_of(module.frame_size, -1);
  for (size_t r = 0; r < module.slots.size(); ++r) {
    const ir::SlotInfo& slot = module.slots[r];
    for (int i = 0; i < slot.size; ++i) {
      if (slot.offset + i >= 0 && slot.offset + i < module.frame_size) {
        record_of[slot.offset + i] = static_cast<int>(r);
      }
    }
  }
  return record_of;
}

class Transfer {
 public:
  Transfer(const ir::Module& module, const std::vector<int>& record_of)
      : module_(module), record_of_(record_of) {}

  // Applies the whole block to `state` in place; appends the feasible
  // successor block ids to `succs` (empty for kHalt). Observer may be null.
  void ApplyBlock(int block, BlockState& state, DataflowObserver* obs,
                  std::vector<int>* succs) {
    for (const ir::Inst& inst : module_.blocks[block].insts) {
      switch (inst.op) {
        case ir::Opcode::kConst:
          Write(state, inst.dst, TruncateInterval(Interval::Exact(inst.imm), inst.type));
          break;
        case ir::Opcode::kCopy: {
          Interval v = Read(state, block, inst, inst.a, obs);
          CheckTruncation(state, block, inst, inst.dst, v, obs);
          Write(state, inst.dst, TruncateInterval(v, inst.type));
          break;
        }
        case ir::Opcode::kUnOp:
          Write(state, inst.dst, EvalUnOpInterval(inst.unop, Read(state, block, inst, inst.a, obs)));
          break;
        case ir::Opcode::kBinOp: {
          Interval a = Read(state, block, inst, inst.a, obs);
          Interval b = Read(state, block, inst, inst.b, obs);
          Write(state, inst.dst, EvalBinOpInterval(inst.binop, a, b));
          break;
        }
        case ir::Opcode::kLoadIdx: {
          Interval index = Read(state, block, inst, inst.b, obs);
          CheckBounds(state, block, inst, inst.a, index, obs);
          Interval v = Read(state, block, inst, inst.a, obs);
          Write(state, inst.dst, TruncateInterval(v, inst.type));
          break;
        }
        case ir::Opcode::kStoreIdx: {
          Interval v = Read(state, block, inst, inst.a, obs);
          Interval index = Read(state, block, inst, inst.b, obs);
          CheckBounds(state, block, inst, inst.dst, index, obs);
          CheckTruncation(state, block, inst, inst.dst, v, obs);
          Write(state, inst.dst, TruncateInterval(v, inst.type));
          break;
        }
        case ir::Opcode::kSend:
          ReadRange(state, block, inst, inst.a, inst.count, obs);
          break;
        case ir::Opcode::kRecv:
          ApplyRecv(state, inst);
          break;
        case ir::Opcode::kNondet:
          Write(state, inst.dst, Interval::Of(0, std::max<int64_t>(inst.imm - 1, 0)));
          break;
        case ir::Opcode::kAssert:
          Read(state, block, inst, inst.a, obs);
          break;
        case ir::Opcode::kJump:
          if (succs != nullptr) {
            succs->push_back(inst.target);
          }
          return;
        case ir::Opcode::kBranch: {
          Interval cond = Read(state, block, inst, inst.a, obs);
          if (succs != nullptr) {
            if (cond.DefinitelyNonZero()) {
              succs->push_back(inst.target);
            } else if (cond.DefinitelyZero()) {
              succs->push_back(inst.target2);
            } else {
              succs->push_back(inst.target);
              if (inst.target2 != inst.target) {
                succs->push_back(inst.target2);
              }
            }
          }
          return;
        }
        case ir::Opcode::kHalt:
          return;
      }
    }
  }

 private:
  int RecordOf(int offset) const {
    return offset >= 0 && offset < static_cast<int>(record_of_.size()) ? record_of_[offset] : -1;
  }

  Interval Read(BlockState& state, int block, const ir::Inst& inst, int offset,
                DataflowObserver* obs) {
    int r = RecordOf(offset);
    if (r < 0) {
      return Interval::Full();
    }
    SlotState& slot = state.records[r];
    if (obs != nullptr && slot.maybe_uninit &&
        module_.slots[r].slot_class == ir::SlotClass::kVar) {
      obs->OnUninitRead(block, inst, r);
    }
    return slot.interval;
  }

  void ReadRange(BlockState& state, int block, const ir::Inst& inst, int base, int count,
                 DataflowObserver* obs) {
    int prev = -1;
    for (int i = 0; i < count; ++i) {
      int r = RecordOf(base + i);
      if (r >= 0 && r != prev) {
        Read(state, block, inst, base + i, obs);
        prev = r;
      }
    }
  }

  void Write(BlockState& state, int offset, Interval v) {
    int r = RecordOf(offset);
    if (r < 0) {
      return;
    }
    SlotState& slot = state.records[r];
    // Per-base handling: multi-element records take the join (we do not track
    // which element was written) and any element write initializes the base.
    slot.interval = module_.slots[r].size == 1 ? v : Join(slot.interval, v);
    slot.maybe_uninit = false;
  }

  void ApplyRecv(BlockState& state, const ir::Inst& inst) {
    const esi::ChannelInfo* channel =
        inst.port >= 0 && inst.port < static_cast<int>(module_.ports.size())
            ? module_.ports[inst.port].channel
            : nullptr;
    int prev = -1;
    for (int i = 0; i < inst.count; ++i) {
      int r = RecordOf(inst.dst + i);
      if (r < 0 || r == prev) {
        continue;
      }
      prev = r;
      const ir::SlotInfo& slot = module_.slots[r];
      // Senders stage every field through a truncating copy, so each word of
      // the message is within its field type's storage range.
      Interval v{0, 0};
      bool have = false;
      if (channel != nullptr) {
        for (const esi::FieldInfo& field : channel->fields) {
          int field_begin = inst.dst + field.flat_offset;
          int field_end = field_begin + field.type.FlatSize();
          if (field_begin < slot.offset + slot.size && slot.offset < field_end) {
            Interval fs = Interval::Storage(field.type.Element());
            v = have ? Join(v, fs) : fs;
            have = true;
          }
        }
      }
      state.records[r].interval = have ? v : Interval::Full();
      state.records[r].maybe_uninit = false;
    }
  }

  void CheckTruncation(BlockState& state, int block, const ir::Inst& inst, int dst_offset,
                       const Interval& v, DataflowObserver* obs) {
    if (obs == nullptr) {
      return;
    }
    // bit/bool conversion is value-preserving in the boolean sense; i32 never
    // truncates.
    if (inst.type.IsBoolish() || inst.type.kind == ScalarKind::kI32) {
      return;
    }
    if (!v.Intersects(Interval::Storage(inst.type))) {
      obs->OnTruncationLoss(block, inst, RecordOf(dst_offset), v, inst.type);
    }
  }

  void CheckBounds(BlockState& state, int block, const ir::Inst& inst, int base_offset,
                   const Interval& index, DataflowObserver* obs) {
    if (obs == nullptr || inst.imm <= 0) {
      return;
    }
    if (!index.Intersects(Interval::Of(0, inst.imm - 1))) {
      obs->OnDefiniteOutOfBounds(block, inst, RecordOf(base_offset), index, inst.imm);
    }
  }

  const ir::Module& module_;
  const std::vector<int>& record_of_;
};

// Static successor block ids (both branch targets, no pruning).
std::vector<int> StaticSuccs(const ir::Module& module, int block) {
  std::vector<int> out;
  for (const ir::Inst& inst : module.blocks[block].insts) {
    if (inst.op == ir::Opcode::kJump) {
      out.push_back(inst.target);
      return out;
    }
    if (inst.op == ir::Opcode::kBranch) {
      out.push_back(inst.target);
      if (inst.target2 != inst.target) {
        out.push_back(inst.target2);
      }
      return out;
    }
    if (inst.op == ir::Opcode::kHalt) {
      return out;
    }
  }
  return out;
}

// Reverse-postorder index of every block statically reachable from block 0
// (unreached blocks keep an index past the end; the fixpoint never visits
// them). An edge u->v with rpo[v] <= rpo[u] is a retreating edge — for the
// reducible CFGs lowering produces, exactly the loop back edges.
std::vector<int> RpoIndex(const ir::Module& module) {
  size_t n = module.blocks.size();
  std::vector<int> index(n, static_cast<int>(n));
  std::vector<char> visited(n, 0);
  std::vector<std::pair<int, size_t>> stack;  // (block, next child index)
  std::vector<int> postorder;
  stack.emplace_back(0, 0);
  visited[0] = 1;
  while (!stack.empty()) {
    auto& [b, child] = stack.back();
    std::vector<int> succs = StaticSuccs(module, b);
    if (child < succs.size()) {
      int s = succs[child++];
      if (!visited[s]) {
        visited[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      postorder.push_back(b);
      stack.pop_back();
    }
  }
  for (size_t i = 0; i < postorder.size(); ++i) {
    index[postorder[i]] = static_cast<int>(postorder.size() - 1 - i);
  }
  return index;
}

// Joins `from` into `target`; returns whether the target state changed. With
// `widen`, any bound that grew jumps straight to the int32 extreme so loops
// terminate quickly.
bool JoinInto(BlockState& target, const BlockState& from, bool widen) {
  if (!target.feasible) {
    target = from;
    target.feasible = true;
    return true;
  }
  bool changed = false;
  for (size_t r = 0; r < target.records.size(); ++r) {
    SlotState& t = target.records[r];
    const SlotState& f = from.records[r];
    if (f.maybe_uninit && !t.maybe_uninit) {
      t.maybe_uninit = true;
      changed = true;
    }
    Interval joined = Join(t.interval, f.interval);
    if (!(joined == t.interval)) {
      if (widen) {
        if (joined.lo < t.interval.lo) {
          joined.lo = std::numeric_limits<int32_t>::min();
        }
        if (joined.hi > t.interval.hi) {
          joined.hi = std::numeric_limits<int32_t>::max();
        }
      }
      t.interval = joined;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

DataflowFacts RunDataflow(const ir::Module& module, DataflowObserver* observer) {
  return RunDataflow(module, observer, DataflowOptions{});
}

DataflowFacts RunDataflow(const ir::Module& module, DataflowObserver* observer,
                          const DataflowOptions& options) {
  DataflowFacts facts;
  facts.record_of = BuildRecordOf(module);
  size_t n = module.blocks.size();
  facts.block_entry.resize(n);
  for (BlockState& state : facts.block_entry) {
    state.records.resize(module.slots.size());
  }
  if (n == 0) {
    return facts;
  }
  Transfer transfer(module, facts.record_of);

  // First-iteration peeling: every block is analyzed in two contexts — 0 for
  // paths that have not taken a retreating (loop back) edge since last
  // leaving a loop, 1 for the rest. Forward edges inside a loop stay in the
  // sender's context, retreating edges always land in context 1, and edges
  // leaving a cyclic component reset to context 0 so every loop gets its own
  // peeled first iteration. This keeps the pre-loop state out of the
  // loop-exit join, so the init-loop idiom (i = 0; while (i < N) arr[i] = 0;)
  // proves the array initialized after the loop — even when another loop ran
  // earlier: in context 0 the exit edge is pruned (i is exactly 0), and
  // context 1 only ever sees post-body states.
  std::vector<int> rpo = RpoIndex(module);
  CfgFacts cfg = BuildCfgFacts(module);
  auto node = [](int block, int ctx) { return block * 2 + ctx; };
  std::vector<BlockState> entry(2 * n);
  for (BlockState& state : entry) {
    state.records.resize(module.slots.size());
  }
  entry[node(0, 0)].feasible = true;
  if (options.stale_entry) {
    // Reset entry path: persistent variables carry whatever the aborted run
    // left in them, bounded only by their storage range.
    BlockState& initial = entry[node(0, 0)];
    for (size_t r = 0; r < module.slots.size(); ++r) {
      if (module.slots[r].slot_class == ir::SlotClass::kVar) {
        initial.records[r].interval = Interval::Storage(module.slots[r].type);
      }
    }
  }
  std::vector<int> join_count(2 * n, 0);
  std::vector<char> queued(2 * n, 0);
  std::deque<int> worklist;
  worklist.push_back(node(0, 0));
  queued[node(0, 0)] = 1;
  while (!worklist.empty()) {
    int current = worklist.front();
    worklist.pop_front();
    queued[current] = 0;
    int b = current / 2;
    int ctx = current % 2;
    BlockState state = entry[current];
    std::vector<int> succs;
    transfer.ApplyBlock(b, state, nullptr, &succs);
    for (int s : succs) {
      int next_ctx;
      if (rpo[s] <= rpo[b]) {
        next_ctx = 1;
      } else if (cfg.scc_id[s] != cfg.scc_id[b] && cfg.sccs[cfg.scc_id[b]].has_cycle) {
        next_ctx = 0;
      } else {
        next_ctx = ctx;
      }
      int target = node(s, next_ctx);
      bool widen = ++join_count[target] > kWidenAfter;
      if (JoinInto(entry[target], state, widen) && !queued[target]) {
        worklist.push_back(target);
        queued[target] = 1;
      }
    }
  }

  // Exported per-block facts are the join over both contexts.
  for (size_t b = 0; b < n; ++b) {
    for (int ctx = 0; ctx < 2; ++ctx) {
      const BlockState& state = entry[node(static_cast<int>(b), ctx)];
      if (state.feasible) {
        JoinInto(facts.block_entry[b], state, /*widen=*/false);
      }
    }
  }

  if (observer != nullptr) {
    // Replay per context, not with the joined state: the joined state can
    // contain infeasible combinations the per-context analysis ruled out.
    // The observers deduplicate by source location, so a block replayed in
    // both contexts reports each finding once.
    for (size_t b = 0; b < n; ++b) {
      for (int ctx = 0; ctx < 2; ++ctx) {
        const BlockState& e = entry[node(static_cast<int>(b), ctx)];
        if (!e.feasible) {
          continue;
        }
        BlockState state = e;
        transfer.ApplyBlock(static_cast<int>(b), state, observer, nullptr);
      }
    }
  }
  return facts;
}

}  // namespace efeu::analysis
