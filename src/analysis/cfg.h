// Control-flow-graph facts over a lowered ir::Module, shared by the lint
// rules (src/analysis/analysis.cc) and the model checker's partial-order
// reduction lookahead (check::IrProcess::PeekNextStep): successor/predecessor
// lists, reachability from the entry block, Tarjan strongly-connected
// components, and the per-block "what can happen before the next blocking
// instruction" summary fixpoint.

#ifndef SRC_ANALYSIS_CFG_H_
#define SRC_ANALYSIS_CFG_H_

#include <cstdint>
#include <vector>

#include "src/ir/ir.h"

namespace efeu::analysis {

// Conservative summary of what a process may do from some CFG point before
// its next blocking instruction. Mirrors check::NextStepSummary, but with
// "nothing" defaults: this is the bottom element the fixpoint grows from,
// whereas the checker-facing struct defaults to "anything" for processes
// without static lookahead.
struct StepSummary {
  // The walk might pass a progress label before blocking again.
  bool may_pass_progress = false;
  // The walk might block at a nondet choice next.
  bool may_choose = false;
  // Bit p set: the walk might block on port p next (ports >= 64 saturate the
  // whole mask).
  uint64_t port_mask = 0;
};

// The saturating bit for `port` in a StepSummary::port_mask.
uint64_t PortBit(int port);

// Union of two over-approximations; returns whether `into` grew.
bool MergeStepSummary(StepSummary& into, const StepSummary& from);

// Least fixpoint of the per-block-entry summaries: what can happen from the
// entry of each block until the next blocking instruction. Progress labels
// are observed at block *entry* (the executor raises the flag on jump/branch
// into a labeled block), so a block's own label contributes to its entry
// summary but never to a mid-block scan.
std::vector<StepSummary> ComputeBlockEntrySummaries(const ir::Module& module);

// What can happen from (block, inst_index) until the next blocking
// instruction, given the converged (or still growing) block-entry summaries.
// Does not add `block`'s own progress label (see above).
StepSummary ScanSummaryFrom(const ir::Module& module,
                            const std::vector<StepSummary>& block_entry, int block,
                            int inst_index);

// One strongly connected component of the block graph.
struct SccInfo {
  std::vector<int> blocks;
  // The component contains a cycle: more than one block, or a self-edge.
  bool has_cycle = false;
  // Any send/recv/nondet instruction inside the component.
  bool has_blocking = false;
  // Any progress-labeled block inside the component.
  bool has_progress = false;
  // Reachable from the entry block.
  bool reachable = false;
};

struct CfgFacts {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  // Block reachable from the entry block (graph reachability only; see
  // DataflowFacts for branch-pruned feasibility).
  std::vector<char> reachable;
  // Block index -> index into `sccs`.
  std::vector<int> scc_id;
  std::vector<SccInfo> sccs;
  // Block can reach a progress-labeled block (a progress block reaches
  // itself).
  std::vector<char> reaches_progress;
};

CfgFacts BuildCfgFacts(const ir::Module& module);

}  // namespace efeu::analysis

#endif  // SRC_ANALYSIS_CFG_H_
