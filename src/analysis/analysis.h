// esmlint: the static-analysis pass manager over compiled ESM specifications.
// Runs CFG and dataflow passes on every lowered ir::Module and reports rule
// findings as source diagnostics, before the model checker (or any backend)
// ever sees the program. See DESIGN.md section "Static analysis".
//
// Rules (names double as suppression keys for `#pragma esmlint`):
//   use-before-init        warning  kVar record read while may-uninitialized
//   unreachable-code       warning  block no path (or no feasible path) reaches
//   truncation-loss        warning  write whose value range never fits the type
//   static-bounds          error    index range always outside the array bound
//   channel-conformance    error    port direction/arity vs the ESI declaration
//                          warning  channel declared but used by no process
//   progress-reachability  error    reachable cycle with no blocking op and no exit
//                          warning  blocking cycle that cannot reach a progress label
//   reset-safety           warning  read initialized on every cold-boot path only
//                                   because frames start zeroed; the reset entry
//                                   path (stale persistent state) reaches it
//                                   without a reassignment
//   assert-always-true     warning  assert provable from the leaf storage types
//                                   alone (esmsym pass; the check is vacuous)
//   infeasible-branch      warning  branch arm dead for every value its operand
//                                   types admit (esmsym pass; arms dead only
//                                   under this build's peers stay silent)

#ifndef SRC_ANALYSIS_ANALYSIS_H_
#define SRC_ANALYSIS_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/sym/symexec.h"
#include "src/ir/compile.h"
#include "src/ir/ir.h"
#include "src/support/diagnostics.h"

namespace efeu::analysis {

inline constexpr char kRuleUseBeforeInit[] = "use-before-init";
inline constexpr char kRuleUnreachableCode[] = "unreachable-code";
inline constexpr char kRuleTruncationLoss[] = "truncation-loss";
inline constexpr char kRuleStaticBounds[] = "static-bounds";
inline constexpr char kRuleChannelConformance[] = "channel-conformance";
inline constexpr char kRuleProgressReachability[] = "progress-reachability";
inline constexpr char kRuleResetSafety[] = "reset-safety";
// Reported by the esmsym pass (esmc --sym), not the dataflow lint pass.
inline constexpr char kRuleAssertAlwaysTrue[] = "assert-always-true";
inline constexpr char kRuleInfeasibleBranch[] = "infeasible-branch";

// All rule names, for suppression-pragma validation.
const std::set<std::string>& AllRules();

struct FindingNote {
  SourceLocation location;
  std::string message;
};

// One rule hit, not yet filtered by suppressions or escalated by Werror.
struct Finding {
  std::string rule;
  Severity severity = Severity::kWarning;
  SourceLocation location;
  // True when the location refers to the ESI buffer (channel declarations)
  // rather than the ESM buffer.
  bool in_esi = false;
  std::string message;
  std::vector<FindingNote> notes;
};

// Runs every per-module rule (all but unused-channel). `verifier_mode`
// relaxes the channel-direction check: verifier glue legally "acts as" other
// layers and owns their channel endpoints.
std::vector<Finding> AnalyzeModule(const ir::Module& module, bool verifier_mode);

// Cross-module rule: channels declared in the ESI system that no compiled
// process sends or receives on, reported only when both endpoint layers were
// compiled (an absent layer may live in another compilation).
std::vector<Finding> FindUnusedChannels(const esi::SystemInfo& system,
                                        const std::vector<ir::Module>& modules);

struct AnalysisOptions {
  // Escalate warnings to errors.
  bool werror = false;
  // Rule names disabled for the whole run (in addition to in-source pragmas).
  std::set<std::string> disabled;
};

struct AnalysisResult {
  int errors = 0;
  int warnings = 0;
  int suppressed = 0;

  bool ok() const { return errors == 0; }
};

// The full lint pass: analyzes every module of the compilation, applies
// `#pragma esmlint` suppressions and the options, and reports the surviving
// findings through `diag` (notes attached after their primary diagnostic).
AnalysisResult AnalyzeCompilation(const ir::Compilation& comp, DiagnosticEngine& diag,
                                  const AnalysisOptions& options = {});

// Human-readable dump of the computed facts (reachability, feasibility,
// per-variable intervals at block entry) for `esmc --dump-analysis`.
std::string DumpAnalysis(const ir::Compilation& comp);

// The esmsym lint export (esmc --sym): converts an already computed symbolic
// summary into findings for the two sym-backed rules — `assert-always-true`
// (type-tautology asserts: vacuous no matter what the program computes) and
// `infeasible-branch` (a branch arm no admitted valuation reaches, skipping
// proofs that lean on assumed external contracts) — then applies the same
// `#pragma esmlint` suppressions and options as AnalyzeCompilation. Unproved
// obligations are NOT findings here; esmc reports those as per-site verdicts.
AnalysisResult ReportSymFindings(const ir::Compilation& comp,
                                 const sym::CompilationSummary& summary, DiagnosticEngine& diag,
                                 const AnalysisOptions& options = {});

}  // namespace efeu::analysis

#endif  // SRC_ANALYSIS_ANALYSIS_H_
