#include "src/analysis/cfg.h"

#include <algorithm>

namespace efeu::analysis {

uint64_t PortBit(int port) {
  // Ports beyond the mask width saturate to "any port" — still conservative.
  return port >= 0 && port < 64 ? uint64_t{1} << port : ~uint64_t{0};
}

bool MergeStepSummary(StepSummary& into, const StepSummary& from) {
  bool changed = false;
  if (from.may_pass_progress && !into.may_pass_progress) {
    into.may_pass_progress = true;
    changed = true;
  }
  if (from.may_choose && !into.may_choose) {
    into.may_choose = true;
    changed = true;
  }
  if ((into.port_mask | from.port_mask) != into.port_mask) {
    into.port_mask |= from.port_mask;
    changed = true;
  }
  return changed;
}

StepSummary ScanSummaryFrom(const ir::Module& module,
                            const std::vector<StepSummary>& block_entry, int block,
                            int inst_index) {
  StepSummary summary;
  const std::vector<ir::Inst>& insts = module.blocks[block].insts;
  for (size_t i = static_cast<size_t>(inst_index); i < insts.size(); ++i) {
    const ir::Inst& inst = insts[i];
    switch (inst.op) {
      case ir::Opcode::kSend:
      case ir::Opcode::kRecv:
        summary.port_mask |= PortBit(inst.port);
        return summary;
      case ir::Opcode::kNondet:
        summary.may_choose = true;
        return summary;
      case ir::Opcode::kHalt:
        return summary;
      case ir::Opcode::kJump:
        MergeStepSummary(summary, block_entry[inst.target]);
        return summary;
      case ir::Opcode::kBranch:
        MergeStepSummary(summary, block_entry[inst.target]);
        MergeStepSummary(summary, block_entry[inst.target2]);
        return summary;
      default:
        break;
    }
  }
  return summary;  // Unreachable: every block ends with a terminator.
}

std::vector<StepSummary> ComputeBlockEntrySummaries(const ir::Module& module) {
  std::vector<StepSummary> block_entry(module.blocks.size());
  // Least fixpoint by iteration: summaries only grow and the lattice is
  // small (two bits plus a port mask), so this converges in a few passes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < module.blocks.size(); ++b) {
      StepSummary summary = ScanSummaryFrom(module, block_entry, static_cast<int>(b), 0);
      if (module.blocks[b].is_progress_label) {
        summary.may_pass_progress = true;
      }
      if (MergeStepSummary(block_entry[b], summary)) {
        changed = true;
      }
    }
  }
  return block_entry;
}

namespace {

// Iterative Tarjan SCC over the block graph (specs are small, but goto-heavy
// layers can nest deeply enough that recursion depth is worth avoiding).
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<int>>& succs)
      : succs_(succs),
        index_(succs.size(), -1),
        lowlink_(succs.size(), 0),
        on_stack_(succs.size(), 0),
        scc_id_(succs.size(), -1) {}

  void Run() {
    for (size_t v = 0; v < succs_.size(); ++v) {
      if (index_[v] < 0) {
        Visit(static_cast<int>(v));
      }
    }
  }

  std::vector<int> scc_id_;
  std::vector<std::vector<int>> components_;

 private:
  struct Frame {
    int v;
    size_t next_succ;
  };

  void Visit(int root) {
    std::vector<Frame> work;
    work.push_back({root, 0});
    Open(root);
    while (!work.empty()) {
      Frame& frame = work.back();
      if (frame.next_succ < succs_[frame.v].size()) {
        int w = succs_[frame.v][frame.next_succ++];
        if (index_[w] < 0) {
          Open(w);
          work.push_back({w, 0});
        } else if (on_stack_[w]) {
          lowlink_[frame.v] = std::min(lowlink_[frame.v], index_[w]);
        }
      } else {
        int v = frame.v;
        work.pop_back();
        if (!work.empty()) {
          lowlink_[work.back().v] = std::min(lowlink_[work.back().v], lowlink_[v]);
        }
        if (lowlink_[v] == index_[v]) {
          std::vector<int> component;
          int w;
          do {
            w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = 0;
            scc_id_[w] = static_cast<int>(components_.size());
            component.push_back(w);
          } while (w != v);
          components_.push_back(std::move(component));
        }
      }
    }
  }

  void Open(int v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = 1;
  }

  const std::vector<std::vector<int>>& succs_;
  std::vector<int> index_;
  std::vector<int> lowlink_;
  std::vector<char> on_stack_;
  std::vector<int> stack_;
  int next_index_ = 0;
};

}  // namespace

CfgFacts BuildCfgFacts(const ir::Module& module) {
  CfgFacts facts;
  size_t n = module.blocks.size();
  facts.succs.resize(n);
  facts.preds.resize(n);
  for (size_t b = 0; b < n; ++b) {
    const ir::Inst& term = module.blocks[b].insts.back();
    if (term.op == ir::Opcode::kJump) {
      facts.succs[b].push_back(term.target);
    } else if (term.op == ir::Opcode::kBranch) {
      facts.succs[b].push_back(term.target);
      if (term.target2 != term.target) {
        facts.succs[b].push_back(term.target2);
      }
    }
  }
  for (size_t b = 0; b < n; ++b) {
    for (int s : facts.succs[b]) {
      facts.preds[s].push_back(static_cast<int>(b));
    }
  }

  // Forward reachability from the entry block.
  facts.reachable.assign(n, 0);
  std::vector<int> work;
  if (n > 0) {
    facts.reachable[0] = 1;
    work.push_back(0);
  }
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    for (int s : facts.succs[b]) {
      if (!facts.reachable[s]) {
        facts.reachable[s] = 1;
        work.push_back(s);
      }
    }
  }

  // SCCs.
  TarjanScc tarjan(facts.succs);
  tarjan.Run();
  facts.scc_id = std::move(tarjan.scc_id_);
  facts.sccs.resize(tarjan.components_.size());
  for (size_t c = 0; c < tarjan.components_.size(); ++c) {
    SccInfo& scc = facts.sccs[c];
    scc.blocks = std::move(tarjan.components_[c]);
    std::sort(scc.blocks.begin(), scc.blocks.end());
    scc.has_cycle = scc.blocks.size() > 1;
    for (int b : scc.blocks) {
      if (facts.reachable[b]) {
        scc.reachable = true;
      }
      if (module.blocks[b].is_progress_label) {
        scc.has_progress = true;
      }
      for (const ir::Inst& inst : module.blocks[b].insts) {
        if (inst.IsBlocking()) {
          scc.has_blocking = true;
        }
      }
      for (int s : facts.succs[b]) {
        if (s == b) {
          scc.has_cycle = true;  // Self-edge.
        }
      }
    }
  }

  // Backward reachability to progress-labeled blocks.
  facts.reaches_progress.assign(n, 0);
  work.clear();
  for (size_t b = 0; b < n; ++b) {
    if (module.blocks[b].is_progress_label) {
      facts.reaches_progress[b] = 1;
      work.push_back(static_cast<int>(b));
    }
  }
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    for (int p : facts.preds[b]) {
      if (!facts.reaches_progress[p]) {
        facts.reaches_progress[p] = 1;
        work.push_back(p);
      }
    }
  }
  return facts;
}

}  // namespace efeu::analysis
