#include "src/analysis/analysis.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/support/text.h"

namespace efeu::analysis {

namespace {

std::string IntervalStr(const Interval& v) {
  return "[" + std::to_string(v.lo) + ", " + std::to_string(v.hi) + "]";
}

std::string SlotName(const ir::Module& module, int record) {
  if (record < 0 || record >= static_cast<int>(module.slots.size())) {
    return "<unknown>";
  }
  return module.slots[record].name;
}

std::string ChannelName(const esi::ChannelInfo& channel) {
  return channel.from + " -> " + channel.to;
}

void AddDeclNote(const ir::Module& module, int record, Finding& finding) {
  if (record < 0 || record >= static_cast<int>(module.slots.size())) {
    return;
  }
  const ir::SlotInfo& slot = module.slots[record];
  if (slot.decl_loc.IsValid()) {
    finding.notes.push_back({slot.decl_loc, "'" + slot.name + "' declared here"});
  }
}

// Collects the dataflow-driven rule events during the replay pass.
class RuleObserver : public DataflowObserver {
 public:
  explicit RuleObserver(const ir::Module& module) : module_(module) {}

  void OnUninitRead(int block, const ir::Inst& inst, int record) override {
    if (!inst.loc.IsValid()) {
      return;
    }
    auto it = first_uninit_read_.find(record);
    if (it == first_uninit_read_.end() || Earlier(inst.loc, it->second)) {
      first_uninit_read_[record] = inst.loc;
    }
  }

  void OnTruncationLoss(int block, const ir::Inst& inst, int record, const Interval& src,
                        const Type& type) override {
    if (!inst.loc.IsValid() || !Once(inst.loc, kRuleTruncationLoss)) {
      return;
    }
    Finding finding;
    finding.rule = kRuleTruncationLoss;
    finding.severity = Severity::kWarning;
    finding.location = inst.loc;
    finding.message = "value in range " + IntervalStr(src) + " never fits " + type.ToString() +
                      " '" + SlotName(module_, record) + "' (storage range " +
                      IntervalStr(Interval::Storage(type)) + "); the stored value always differs";
    AddDeclNote(module_, record, finding);
    findings.push_back(std::move(finding));
  }

  void OnDefiniteOutOfBounds(int block, const ir::Inst& inst, int base_record,
                             const Interval& index, int bound) override {
    if (!inst.loc.IsValid() || !Once(inst.loc, kRuleStaticBounds)) {
      return;
    }
    Finding finding;
    finding.rule = kRuleStaticBounds;
    finding.severity = Severity::kError;
    finding.location = inst.loc;
    finding.message = "array index in range " + IntervalStr(index) +
                      " is always out of bounds for '" + SlotName(module_, base_record) + "' (" +
                      std::to_string(bound) + " elements); this access always fails at runtime";
    AddDeclNote(module_, base_record, finding);
    findings.push_back(std::move(finding));
  }

  // Converts the deduplicated uninitialized-read sites into findings.
  void FlushUninitReads() {
    for (const auto& [record, loc] : first_uninit_read_) {
      Finding finding;
      finding.rule = kRuleUseBeforeInit;
      finding.severity = Severity::kWarning;
      finding.location = loc;
      finding.message = "'" + SlotName(module_, record) +
                        "' may be read before initialization (frames start zeroed, but no "
                        "assignment or message dominates this read)";
      AddDeclNote(module_, record, finding);
      findings.push_back(std::move(finding));
    }
  }

  // Records with at least one maybe-uninitialized read on a feasible path,
  // keyed to the earliest such read. The reset-safety rule diffs this map
  // between the cold-boot and stale-entry dataflow runs.
  const std::map<int, SourceLocation>& UninitReadSites() const { return first_uninit_read_; }

  std::vector<Finding> findings;

 private:
  static bool Earlier(const SourceLocation& a, const SourceLocation& b) {
    return a.line != b.line ? a.line < b.line : a.column < b.column;
  }

  bool Once(const SourceLocation& loc, const std::string& rule) {
    return reported_.insert(rule + "@" + std::to_string(loc.line) + ":" +
                            std::to_string(loc.column))
        .second;
  }

  const ir::Module& module_;
  std::map<int, SourceLocation> first_uninit_read_;
  std::set<std::string> reported_;
};

// Collects only the uninitialized-read sites of the stale-entry (reset path)
// dataflow run. Interval-based rules stay with the cold-boot run, so widening
// the entry state for the reset model cannot introduce false positives for
// them.
class StaleEntryObserver : public DataflowObserver {
 public:
  void OnUninitRead(int block, const ir::Inst& inst, int record) override {
    if (!inst.loc.IsValid()) {
      return;
    }
    auto it = sites_.find(record);
    if (it == sites_.end() || inst.loc.line < it->second.line ||
        (inst.loc.line == it->second.line && inst.loc.column < it->second.column)) {
      sites_[record] = inst.loc;
    }
  }

  const std::map<int, SourceLocation>& UninitReadSites() const { return sites_; }

 private:
  std::map<int, SourceLocation> sites_;
};

// reset-safety: a read the cold-boot analysis proves initialization-dominated
// becomes reachable-uninitialized once the entry state is widened to stale
// post-reset values. Such a read relies on the zeroed frame (for example, a
// guard that is statically false at cold boot re-routing execution), so the
// reset entry path must reassign the variable before it is used.
void RunResetSafetyRule(const ir::Module& module,
                        const std::map<int, SourceLocation>& cold_boot_sites,
                        std::vector<Finding>& findings) {
  StaleEntryObserver stale;
  DataflowOptions options;
  options.stale_entry = true;
  RunDataflow(module, &stale, options);
  for (const auto& [record, loc] : stale.UninitReadSites()) {
    if (cold_boot_sites.count(record) > 0) {
      continue;  // Already a use-before-init finding; reset adds nothing.
    }
    Finding finding;
    finding.rule = kRuleResetSafety;
    finding.severity = Severity::kWarning;
    finding.location = loc;
    finding.message = "'" + SlotName(module, record) +
                      "' is not reinitialized on the reset entry path: this read is only "
                      "assignment-dominated because frames start zeroed, and after a soft "
                      "reset the stale persistent state can reach it without a reassignment";
    AddDeclNote(module, record, finding);
    findings.push_back(std::move(finding));
  }
}

// First valid source location found by breadth-first search over `allowed`
// blocks starting at `root`; marks every visited block in `visited`.
SourceLocation FindRegionLoc(const ir::Module& module, const CfgFacts& cfg, int root,
                             const std::vector<char>& allowed, std::vector<char>& visited) {
  SourceLocation loc;
  std::vector<int> queue{root};
  visited[root] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    int b = queue[head];
    if (!loc.IsValid()) {
      for (const ir::Inst& inst : module.blocks[b].insts) {
        if (inst.loc.IsValid()) {
          loc = inst.loc;
          break;
        }
      }
    }
    for (int s : cfg.succs[b]) {
      if (allowed[s] && !visited[s]) {
        visited[s] = 1;
        queue.push_back(s);
      }
    }
  }
  return loc;
}

void RunUnreachableRule(const ir::Module& module, const CfgFacts& cfg, const DataflowFacts& df,
                        std::vector<Finding>& findings) {
  size_t n = module.blocks.size();
  // Graph-unreachable code: report once per dead region, at the root blocks
  // (no predecessors at all). Dead blocks reached only from other dead blocks
  // ride along silently to avoid a cascade of reports.
  std::vector<char> dead(n, 0);
  for (size_t b = 0; b < n; ++b) {
    dead[b] = !cfg.reachable[b];
  }
  std::vector<char> visited(n, 0);
  for (size_t b = 0; b < n; ++b) {
    if (!dead[b] || !cfg.preds[b].empty() || visited[b]) {
      continue;
    }
    SourceLocation loc = FindRegionLoc(module, cfg, static_cast<int>(b), dead, visited);
    if (!loc.IsValid()) {
      continue;  // Purely synthetic blocks (e.g. a lone halt after a goto).
    }
    Finding finding;
    finding.rule = kRuleUnreachableCode;
    finding.severity = Severity::kWarning;
    finding.location = loc;
    finding.message = "unreachable code: no control path reaches this statement";
    findings.push_back(std::move(finding));
  }

  // Feasibility-unreachable code: the CFG reaches the block, but every branch
  // leading here has a statically constant condition that picks the other
  // arm. Report at the boundary (an infeasible block with a feasible
  // predecessor).
  std::vector<char> infeasible(n, 0);
  for (size_t b = 0; b < n; ++b) {
    infeasible[b] = cfg.reachable[b] && !df.block_entry[b].feasible;
  }
  std::fill(visited.begin(), visited.end(), 0);
  for (size_t b = 0; b < n; ++b) {
    if (!infeasible[b] || visited[b]) {
      continue;
    }
    bool boundary = false;
    for (int p : cfg.preds[b]) {
      if (df.block_entry[p].feasible) {
        boundary = true;
        break;
      }
    }
    if (!boundary) {
      continue;
    }
    SourceLocation loc = FindRegionLoc(module, cfg, static_cast<int>(b), infeasible, visited);
    if (!loc.IsValid()) {
      continue;
    }
    Finding finding;
    finding.rule = kRuleUnreachableCode;
    finding.severity = Severity::kWarning;
    finding.location = loc;
    finding.message =
        "unreachable code: the branch condition leading here is statically constant";
    findings.push_back(std::move(finding));
  }
}

void RunProgressRule(const ir::Module& module, const CfgFacts& cfg, const DataflowFacts& df,
                     std::vector<Finding>& findings) {
  bool module_has_progress = false;
  for (const ir::Block& block : module.blocks) {
    if (block.is_progress_label) {
      module_has_progress = true;
      break;
    }
  }
  for (const SccInfo& scc : cfg.sccs) {
    if (!scc.reachable || !scc.has_cycle) {
      continue;
    }
    bool feasible = false;
    for (int b : scc.blocks) {
      if (df.block_entry[b].feasible) {
        feasible = true;
        break;
      }
    }
    if (!feasible) {
      continue;
    }
    bool has_exit = false;
    for (int b : scc.blocks) {
      for (int s : cfg.succs[b]) {
        if (cfg.scc_id[s] != cfg.scc_id[b]) {
          has_exit = true;
        }
      }
    }
    SourceLocation loc;
    for (int b : scc.blocks) {
      for (const ir::Inst& inst : module.blocks[b].insts) {
        if (inst.loc.IsValid()) {
          loc = inst.loc;
          break;
        }
      }
      if (loc.IsValid()) {
        break;
      }
    }
    if (!loc.IsValid()) {
      continue;
    }
    if (!scc.has_blocking && !has_exit) {
      // The process spins forever without ever blocking: no interleaving,
      // no end state, no progress — a definite livelock.
      Finding finding;
      finding.rule = kRuleProgressReachability;
      finding.severity = Severity::kError;
      finding.location = loc;
      finding.message =
          "busy loop: this cycle never blocks (no send/recv/nondet) and has no exit";
      findings.push_back(std::move(finding));
      continue;
    }
    if (module_has_progress && scc.has_blocking && !scc.has_progress) {
      bool reaches = false;
      for (int b : scc.blocks) {
        if (cfg.reaches_progress[b]) {
          reaches = true;
          break;
        }
      }
      if (!reaches) {
        Finding finding;
        finding.rule = kRuleProgressReachability;
        finding.severity = Severity::kWarning;
        finding.location = loc;
        finding.message =
            "cycle cannot reach any progress label: executions looping here are "
            "non-progress cycles the checker will report as livelock";
        findings.push_back(std::move(finding));
      }
    }
  }
}

void RunChannelRule(const ir::Module& module, bool verifier_mode,
                    std::vector<Finding>& findings) {
  // Location of the first send/recv on each port, for reporting.
  std::vector<SourceLocation> port_loc(module.ports.size());
  for (const ir::Block& block : module.blocks) {
    for (const ir::Inst& inst : block.insts) {
      if ((inst.op == ir::Opcode::kSend || inst.op == ir::Opcode::kRecv) && inst.port >= 0 &&
          inst.port < static_cast<int>(port_loc.size()) && !port_loc[inst.port].IsValid()) {
        port_loc[inst.port] = inst.loc;
      }
    }
  }
  for (size_t p = 0; p < module.ports.size(); ++p) {
    const ir::Port& port = module.ports[p];
    if (port.channel == nullptr) {
      continue;
    }
    // Verifier glue legally acts as other layers (owning their endpoints), so
    // the direction check only applies to driver compilations.
    if (!verifier_mode) {
      const std::string& owner = port.is_send ? port.channel->from : port.channel->to;
      if (owner != module.layer_name) {
        Finding finding;
        finding.rule = kRuleChannelConformance;
        finding.severity = Severity::kError;
        finding.location = port_loc[p];
        finding.message = "layer '" + module.layer_name + "' " +
                          (port.is_send ? "sends on" : "receives on") + " channel '" +
                          ChannelName(*port.channel) + "', whose " +
                          (port.is_send ? "sender" : "receiver") + " is '" + owner +
                          "' in the ESI declaration";
        findings.push_back(std::move(finding));
      }
    }
  }
  for (const ir::Block& block : module.blocks) {
    for (const ir::Inst& inst : block.insts) {
      if (inst.op != ir::Opcode::kSend && inst.op != ir::Opcode::kRecv) {
        continue;
      }
      if (inst.port < 0 || inst.port >= static_cast<int>(module.ports.size()) ||
          module.ports[inst.port].channel == nullptr) {
        Finding finding;
        finding.rule = kRuleChannelConformance;
        finding.severity = Severity::kError;
        finding.location = inst.loc;
        finding.message = "send/recv references port " + std::to_string(inst.port) +
                          ", which is not declared by the module";
        findings.push_back(std::move(finding));
        continue;
      }
      const esi::ChannelInfo* channel = module.ports[inst.port].channel;
      if (inst.count != channel->flat_size) {
        Finding finding;
        finding.rule = kRuleChannelConformance;
        finding.severity = Severity::kError;
        finding.location = inst.loc;
        finding.message = "message of " + std::to_string(inst.count) + " words on channel '" +
                          ChannelName(*channel) + "', which carries " +
                          std::to_string(channel->flat_size) + " words";
        findings.push_back(std::move(finding));
      }
    }
  }
}

bool FindingBefore(const Finding& a, const Finding& b) {
  if (a.location.line != b.location.line) {
    return a.location.line < b.location.line;
  }
  if (a.location.column != b.location.column) {
    return a.location.column < b.location.column;
  }
  return a.rule < b.rule;
}

// Parses `//esmlint <verb> [rules...]` marker lines (produced from
// `#pragma esmlint ...` by the preprocessor, or written directly as
// comments). Verbs: `suppress` (next line only), `disable`/`enable`
// (region). No rule list (or `all`) matches every rule.
class SuppressionMap {
 public:
  explicit SuppressionMap(std::string_view preprocessed_esm) {
    uint32_t line_no = 0;
    for (std::string_view line : SplitLines(preprocessed_esm)) {
      ++line_no;
      std::string_view trimmed = Trim(line);
      if (!StartsWith(trimmed, "//esmlint")) {
        continue;
      }
      std::istringstream tokens{std::string(trimmed.substr(9))};
      Marker marker;
      marker.line = line_no;
      std::string verb;
      tokens >> verb;
      if (verb == "suppress") {
        marker.kind = Marker::kSuppressNext;
      } else if (verb == "disable") {
        marker.kind = Marker::kDisable;
      } else if (verb == "enable") {
        marker.kind = Marker::kEnable;
      } else {
        bad_pragmas.push_back({line_no, verb});
        continue;
      }
      std::string rule;
      while (tokens >> rule) {
        if (rule == "all") {
          marker.all = true;
        } else if (AllRules().count(rule) > 0) {
          marker.rules.insert(rule);
        } else {
          bad_pragmas.push_back({line_no, rule});
        }
      }
      if (marker.rules.empty()) {
        marker.all = true;
      }
      markers_.push_back(std::move(marker));
    }
  }

  bool IsSuppressed(uint32_t line, const std::string& rule) const {
    bool all_disabled = false;
    std::set<std::string> disabled;
    for (const Marker& marker : markers_) {
      if (marker.kind == Marker::kSuppressNext) {
        if (marker.line + 1 == line && (marker.all || marker.rules.count(rule) > 0)) {
          return true;
        }
        continue;
      }
      if (marker.line >= line) {
        break;
      }
      if (marker.kind == Marker::kDisable) {
        if (marker.all) {
          all_disabled = true;
        } else {
          disabled.insert(marker.rules.begin(), marker.rules.end());
        }
      } else {  // kEnable
        if (marker.all) {
          all_disabled = false;
          disabled.clear();
        } else {
          for (const std::string& r : marker.rules) {
            disabled.erase(r);
          }
        }
      }
    }
    return all_disabled || disabled.count(rule) > 0;
  }

  // (line, token) pairs for unknown verbs or rule names.
  std::vector<std::pair<uint32_t, std::string>> bad_pragmas;

 private:
  struct Marker {
    enum Kind { kSuppressNext, kDisable, kEnable };
    uint32_t line = 0;
    Kind kind = kSuppressNext;
    bool all = false;
    std::set<std::string> rules;
  };

  std::vector<Marker> markers_;
};

}  // namespace

const std::set<std::string>& AllRules() {
  static const std::set<std::string> rules = {
      kRuleUseBeforeInit,  kRuleUnreachableCode,    kRuleTruncationLoss,
      kRuleStaticBounds,   kRuleChannelConformance, kRuleProgressReachability,
      kRuleResetSafety,    kRuleAssertAlwaysTrue,   kRuleInfeasibleBranch,
  };
  return rules;
}

std::vector<Finding> AnalyzeModule(const ir::Module& module, bool verifier_mode) {
  CfgFacts cfg = BuildCfgFacts(module);
  RuleObserver observer(module);
  DataflowFacts df = RunDataflow(module, &observer);
  observer.FlushUninitReads();
  std::vector<Finding> findings = std::move(observer.findings);
  RunResetSafetyRule(module, observer.UninitReadSites(), findings);
  RunUnreachableRule(module, cfg, df, findings);
  RunProgressRule(module, cfg, df, findings);
  RunChannelRule(module, verifier_mode, findings);
  std::stable_sort(findings.begin(), findings.end(), FindingBefore);
  return findings;
}

std::vector<Finding> FindUnusedChannels(const esi::SystemInfo& system,
                                        const std::vector<ir::Module>& modules) {
  std::set<const esi::ChannelInfo*> used;
  std::set<std::string> compiled_layers;
  for (const ir::Module& module : modules) {
    compiled_layers.insert(module.layer_name);
    for (const ir::Port& port : module.ports) {
      used.insert(port.channel);
    }
  }
  std::vector<Finding> findings;
  for (const esi::InterfaceInfo& iface : system.interfaces()) {
    for (const std::optional<esi::ChannelInfo>* slot : {&iface.to_second, &iface.to_first}) {
      if (!slot->has_value() || used.count(&**slot) > 0) {
        continue;
      }
      const esi::ChannelInfo& channel = **slot;
      // Only flag channels whose both endpoints were compiled here; an
      // absent endpoint may use the channel in another compilation.
      if (compiled_layers.count(channel.from) == 0 || compiled_layers.count(channel.to) == 0) {
        continue;
      }
      Finding finding;
      finding.rule = kRuleChannelConformance;
      finding.severity = Severity::kWarning;
      finding.location = channel.location;
      finding.in_esi = true;
      finding.message =
          "channel '" + ChannelName(channel) + "' is declared but no process uses it";
      findings.push_back(std::move(finding));
    }
  }
  std::stable_sort(findings.begin(), findings.end(), FindingBefore);
  return findings;
}

AnalysisResult AnalyzeCompilation(const ir::Compilation& comp, DiagnosticEngine& diag,
                                  const AnalysisOptions& options) {
  AnalysisResult result;
  SuppressionMap suppressions(comp.preprocessed_esm());
  for (const auto& [line, token] : suppressions.bad_pragmas) {
    diag.Warning(comp.esm_buffer(), SourceLocation{line, 1, 0},
                 "unknown esmlint pragma token '" + token + "'");
    ++result.warnings;
  }

  bool verifier_mode = comp.options().allow_nondet;
  std::vector<Finding> findings;
  for (const ir::Module& module : comp.modules()) {
    std::vector<Finding> module_findings = AnalyzeModule(module, verifier_mode);
    findings.insert(findings.end(), std::make_move_iterator(module_findings.begin()),
                    std::make_move_iterator(module_findings.end()));
  }
  std::vector<Finding> unused = FindUnusedChannels(comp.system(), comp.modules());
  findings.insert(findings.end(), std::make_move_iterator(unused.begin()),
                  std::make_move_iterator(unused.end()));

  for (const Finding& finding : findings) {
    if (options.disabled.count(finding.rule) > 0 ||
        (!finding.in_esi && finding.location.IsValid() &&
         suppressions.IsSuppressed(finding.location.line, finding.rule))) {
      ++result.suppressed;
      continue;
    }
    Severity severity = finding.severity;
    if (severity == Severity::kWarning && options.werror) {
      severity = Severity::kError;
    }
    const SourceBuffer& buffer = finding.in_esi ? comp.esi_buffer() : comp.esm_buffer();
    diag.Report(severity, buffer, finding.location,
                finding.message + " [" + finding.rule + "]");
    for (const FindingNote& note : finding.notes) {
      if (note.location.IsValid()) {
        diag.Note(comp.esm_buffer(), note.location, note.message);
      }
    }
    if (severity == Severity::kError) {
      ++result.errors;
    } else {
      ++result.warnings;
    }
  }
  return result;
}

AnalysisResult ReportSymFindings(const ir::Compilation& comp,
                                 const sym::CompilationSummary& summary, DiagnosticEngine& diag,
                                 const AnalysisOptions& options) {
  std::vector<Finding> findings;
  for (const sym::ModuleSummary& m : summary.modules) {
    if (!m.complete) {
      continue;  // Nothing was proved; no rule can fire.
    }
    for (const sym::SiteVerdict& site : m.sites) {
      if (site.kind != sym::SiteVerdict::Kind::kAssert || !site.tautology) {
        continue;
      }
      Finding finding;
      finding.rule = kRuleAssertAlwaysTrue;
      finding.severity = Severity::kWarning;
      finding.location = site.loc;
      finding.message = "assert holds for every value its operand types admit; "
                        "the check is vacuous";
      findings.push_back(std::move(finding));
    }
    for (const sym::BranchInfo& branch : m.infeasible_branches) {
      // Only type-level dead arms are findings: an arm dead merely because
      // of the peers this compilation pairs the module with (or because of
      // an assumed external contract) is a configuration fact, not a spec
      // defect — the same spec text may be live in another build.
      if (branch.assumed || !branch.from_types) {
        continue;
      }
      Finding finding;
      finding.rule = kRuleInfeasibleBranch;
      finding.severity = Severity::kWarning;
      finding.location = branch.loc;
      finding.message = std::string("branch ") +
                        (branch.true_infeasible && branch.false_infeasible
                             ? "is unreachable"
                             : branch.true_infeasible ? "never takes its true arm"
                                                      : "never takes its false arm") +
                        " for any value its operand types admit";
      findings.push_back(std::move(finding));
    }
  }
  std::stable_sort(findings.begin(), findings.end(), FindingBefore);
  // Several IR sites can lower from one source construct; report each
  // (rule, location) once.
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.rule == b.rule && a.location.line == b.location.line &&
                                      a.location.column == b.location.column;
                             }),
                 findings.end());

  AnalysisResult result;
  SuppressionMap suppressions(comp.preprocessed_esm());
  for (const Finding& finding : findings) {
    if (options.disabled.count(finding.rule) > 0 ||
        (finding.location.IsValid() &&
         suppressions.IsSuppressed(finding.location.line, finding.rule))) {
      ++result.suppressed;
      continue;
    }
    Severity severity = finding.severity;
    if (severity == Severity::kWarning && options.werror) {
      severity = Severity::kError;
    }
    diag.Report(severity, comp.esm_buffer(), finding.location,
                finding.message + " [" + finding.rule + "]");
    if (severity == Severity::kError) {
      ++result.errors;
    } else {
      ++result.warnings;
    }
  }
  return result;
}

std::string DumpAnalysis(const ir::Compilation& comp) {
  std::ostringstream out;
  for (const ir::Module& module : comp.modules()) {
    CfgFacts cfg = BuildCfgFacts(module);
    DataflowFacts df = RunDataflow(module, nullptr);
    int reachable = 0;
    int feasible = 0;
    for (size_t b = 0; b < module.blocks.size(); ++b) {
      reachable += cfg.reachable[b] ? 1 : 0;
      feasible += df.block_entry[b].feasible ? 1 : 0;
    }
    int cycles = 0;
    for (const SccInfo& scc : cfg.sccs) {
      cycles += scc.has_cycle ? 1 : 0;
    }
    out << "== module " << module.layer_name << " ==\n";
    out << "blocks: " << module.blocks.size() << "  reachable: " << reachable
        << "  feasible: " << feasible << "  cyclic sccs: " << cycles << "\n";
    for (size_t b = 0; b < module.blocks.size(); ++b) {
      const ir::Block& block = module.blocks[b];
      out << "block " << b;
      if (!block.label.empty()) {
        out << " '" << block.label << "'";
      }
      if (block.is_progress_label) {
        out << " [progress]";
      }
      if (block.is_end_label) {
        out << " [end]";
      }
      if (!cfg.reachable[b]) {
        out << " unreachable\n";
        continue;
      }
      if (!df.block_entry[b].feasible) {
        out << " infeasible\n";
        continue;
      }
      out << "\n";
      for (size_t r = 0; r < module.slots.size(); ++r) {
        const ir::SlotInfo& slot = module.slots[r];
        if (slot.slot_class != ir::SlotClass::kVar) {
          continue;
        }
        const SlotState& state = df.block_entry[b].records[r];
        out << "  " << slot.name << ": " << IntervalStr(state.interval)
            << (state.maybe_uninit ? " maybe-uninit" : "") << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace efeu::analysis
