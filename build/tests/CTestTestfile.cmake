# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/efeu_tests[1]_include.cmake")
add_test(esmc_promela "/root/repo/build/src/tools/esmc" "--builtin-i2c" "controller" "--emit" "promela")
set_tests_properties(esmc_promela PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(esmc_verilog "/root/repo/build/src/tools/esmc" "--builtin-i2c" "responder" "--emit" "verilog")
set_tests_properties(esmc_verilog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(esmc_c "/root/repo/build/src/tools/esmc" "--builtin-i2c" "controller" "--emit" "c" "--entry" "CEepDriver")
set_tests_properties(esmc_c PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(esmc_mmio "/root/repo/build/src/tools/esmc" "--builtin-i2c" "controller" "--emit" "mmio" "--iface" "CTransaction:CByte")
set_tests_properties(esmc_mmio PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(esmc_ir "/root/repo/build/src/tools/esmc" "--builtin-i2c" "controller" "--emit" "ir")
set_tests_properties(esmc_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
