
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_checker.cc" "tests/CMakeFiles/efeu_tests.dir/test_checker.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_checker.cc.o.d"
  "/root/repo/tests/test_codegen.cc" "tests/CMakeFiles/efeu_tests.dir/test_codegen.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_codegen.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/efeu_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_driver_metrics.cc" "tests/CMakeFiles/efeu_tests.dir/test_driver_metrics.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_driver_metrics.cc.o.d"
  "/root/repo/tests/test_esi.cc" "tests/CMakeFiles/efeu_tests.dir/test_esi.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_esi.cc.o.d"
  "/root/repo/tests/test_esm.cc" "tests/CMakeFiles/efeu_tests.dir/test_esm.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_esm.cc.o.d"
  "/root/repo/tests/test_generated_c.cc" "tests/CMakeFiles/efeu_tests.dir/test_generated_c.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_generated_c.cc.o.d"
  "/root/repo/tests/test_i2c_specs.cc" "tests/CMakeFiles/efeu_tests.dir/test_i2c_specs.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_i2c_specs.cc.o.d"
  "/root/repo/tests/test_i2c_verify.cc" "tests/CMakeFiles/efeu_tests.dir/test_i2c_verify.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_i2c_verify.cc.o.d"
  "/root/repo/tests/test_ir_vm.cc" "tests/CMakeFiles/efeu_tests.dir/test_ir_vm.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_ir_vm.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/efeu_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/efeu_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rtl_sim.cc" "tests/CMakeFiles/efeu_tests.dir/test_rtl_sim.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_rtl_sim.cc.o.d"
  "/root/repo/tests/test_spi.cc" "tests/CMakeFiles/efeu_tests.dir/test_spi.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_spi.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/efeu_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/efeu_tests.dir/test_support.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/efeu_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/spi/CMakeFiles/efeu_spi.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/efeu_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/i2c/CMakeFiles/efeu_i2c.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/efeu_check.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/efeu_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/efeu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/efeu_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
