# Empty dependencies file for efeu_tests.
# This may be replaced when dependencies are built.
