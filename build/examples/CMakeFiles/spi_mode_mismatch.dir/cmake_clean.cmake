file(REMOVE_RECURSE
  "CMakeFiles/spi_mode_mismatch.dir/spi_mode_mismatch.cpp.o"
  "CMakeFiles/spi_mode_mismatch.dir/spi_mode_mismatch.cpp.o.d"
  "spi_mode_mismatch"
  "spi_mode_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_mode_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
