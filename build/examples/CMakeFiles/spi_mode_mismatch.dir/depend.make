# Empty dependencies file for spi_mode_mismatch.
# This may be replaced when dependencies are built.
