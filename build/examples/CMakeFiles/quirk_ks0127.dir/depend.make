# Empty dependencies file for quirk_ks0127.
# This may be replaced when dependencies are built.
