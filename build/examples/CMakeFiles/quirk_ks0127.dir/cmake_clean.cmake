file(REMOVE_RECURSE
  "CMakeFiles/quirk_ks0127.dir/quirk_ks0127.cpp.o"
  "CMakeFiles/quirk_ks0127.dir/quirk_ks0127.cpp.o.d"
  "quirk_ks0127"
  "quirk_ks0127.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quirk_ks0127.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
