file(REMOVE_RECURSE
  "CMakeFiles/bmc_sensor_monitor.dir/bmc_sensor_monitor.cpp.o"
  "CMakeFiles/bmc_sensor_monitor.dir/bmc_sensor_monitor.cpp.o.d"
  "bmc_sensor_monitor"
  "bmc_sensor_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmc_sensor_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
