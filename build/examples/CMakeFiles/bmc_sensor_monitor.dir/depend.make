# Empty dependencies file for bmc_sensor_monitor.
# This may be replaced when dependencies are built.
