# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("esi")
subdirs("esm")
subdirs("ir")
subdirs("codegen")
subdirs("vm")
subdirs("rtl")
subdirs("check")
subdirs("i2c")
subdirs("spi")
subdirs("sim")
subdirs("driver")
subdirs("tools")
