file(REMOVE_RECURSE
  "libefeu_esm.a"
)
