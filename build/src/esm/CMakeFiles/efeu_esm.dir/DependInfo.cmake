
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esm/lexer.cc" "src/esm/CMakeFiles/efeu_esm.dir/lexer.cc.o" "gcc" "src/esm/CMakeFiles/efeu_esm.dir/lexer.cc.o.d"
  "/root/repo/src/esm/parser.cc" "src/esm/CMakeFiles/efeu_esm.dir/parser.cc.o" "gcc" "src/esm/CMakeFiles/efeu_esm.dir/parser.cc.o.d"
  "/root/repo/src/esm/preprocessor.cc" "src/esm/CMakeFiles/efeu_esm.dir/preprocessor.cc.o" "gcc" "src/esm/CMakeFiles/efeu_esm.dir/preprocessor.cc.o.d"
  "/root/repo/src/esm/sema.cc" "src/esm/CMakeFiles/efeu_esm.dir/sema.cc.o" "gcc" "src/esm/CMakeFiles/efeu_esm.dir/sema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
