# Empty compiler generated dependencies file for efeu_esm.
# This may be replaced when dependencies are built.
