file(REMOVE_RECURSE
  "CMakeFiles/efeu_esm.dir/lexer.cc.o"
  "CMakeFiles/efeu_esm.dir/lexer.cc.o.d"
  "CMakeFiles/efeu_esm.dir/parser.cc.o"
  "CMakeFiles/efeu_esm.dir/parser.cc.o.d"
  "CMakeFiles/efeu_esm.dir/preprocessor.cc.o"
  "CMakeFiles/efeu_esm.dir/preprocessor.cc.o.d"
  "CMakeFiles/efeu_esm.dir/sema.cc.o"
  "CMakeFiles/efeu_esm.dir/sema.cc.o.d"
  "libefeu_esm.a"
  "libefeu_esm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_esm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
