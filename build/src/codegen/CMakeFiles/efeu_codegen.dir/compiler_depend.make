# Empty compiler generated dependencies file for efeu_codegen.
# This may be replaced when dependencies are built.
