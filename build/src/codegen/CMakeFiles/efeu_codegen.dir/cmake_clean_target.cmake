file(REMOVE_RECURSE
  "libefeu_codegen.a"
)
