file(REMOVE_RECURSE
  "CMakeFiles/efeu_codegen.dir/c/c_backend.cc.o"
  "CMakeFiles/efeu_codegen.dir/c/c_backend.cc.o.d"
  "CMakeFiles/efeu_codegen.dir/common/expr_printer.cc.o"
  "CMakeFiles/efeu_codegen.dir/common/expr_printer.cc.o.d"
  "CMakeFiles/efeu_codegen.dir/mmio/mmio_backend.cc.o"
  "CMakeFiles/efeu_codegen.dir/mmio/mmio_backend.cc.o.d"
  "CMakeFiles/efeu_codegen.dir/promela/promela_backend.cc.o"
  "CMakeFiles/efeu_codegen.dir/promela/promela_backend.cc.o.d"
  "CMakeFiles/efeu_codegen.dir/verilog/verilog_backend.cc.o"
  "CMakeFiles/efeu_codegen.dir/verilog/verilog_backend.cc.o.d"
  "libefeu_codegen.a"
  "libefeu_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
