
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/c/c_backend.cc" "src/codegen/CMakeFiles/efeu_codegen.dir/c/c_backend.cc.o" "gcc" "src/codegen/CMakeFiles/efeu_codegen.dir/c/c_backend.cc.o.d"
  "/root/repo/src/codegen/common/expr_printer.cc" "src/codegen/CMakeFiles/efeu_codegen.dir/common/expr_printer.cc.o" "gcc" "src/codegen/CMakeFiles/efeu_codegen.dir/common/expr_printer.cc.o.d"
  "/root/repo/src/codegen/mmio/mmio_backend.cc" "src/codegen/CMakeFiles/efeu_codegen.dir/mmio/mmio_backend.cc.o" "gcc" "src/codegen/CMakeFiles/efeu_codegen.dir/mmio/mmio_backend.cc.o.d"
  "/root/repo/src/codegen/promela/promela_backend.cc" "src/codegen/CMakeFiles/efeu_codegen.dir/promela/promela_backend.cc.o" "gcc" "src/codegen/CMakeFiles/efeu_codegen.dir/promela/promela_backend.cc.o.d"
  "/root/repo/src/codegen/verilog/verilog_backend.cc" "src/codegen/CMakeFiles/efeu_codegen.dir/verilog/verilog_backend.cc.o" "gcc" "src/codegen/CMakeFiles/efeu_codegen.dir/verilog/verilog_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
