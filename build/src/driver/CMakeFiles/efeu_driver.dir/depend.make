# Empty dependencies file for efeu_driver.
# This may be replaced when dependencies are built.
