file(REMOVE_RECURSE
  "libefeu_driver.a"
)
