file(REMOVE_RECURSE
  "CMakeFiles/efeu_driver.dir/baselines.cc.o"
  "CMakeFiles/efeu_driver.dir/baselines.cc.o.d"
  "CMakeFiles/efeu_driver.dir/hybrid.cc.o"
  "CMakeFiles/efeu_driver.dir/hybrid.cc.o.d"
  "CMakeFiles/efeu_driver.dir/resources.cc.o"
  "CMakeFiles/efeu_driver.dir/resources.cc.o.d"
  "libefeu_driver.a"
  "libefeu_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
