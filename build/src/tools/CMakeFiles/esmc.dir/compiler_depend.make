# Empty compiler generated dependencies file for esmc.
# This may be replaced when dependencies are built.
