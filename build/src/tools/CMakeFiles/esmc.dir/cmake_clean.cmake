file(REMOVE_RECURSE
  "CMakeFiles/esmc.dir/esmc_main.cc.o"
  "CMakeFiles/esmc.dir/esmc_main.cc.o.d"
  "esmc"
  "esmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
