file(REMOVE_RECURSE
  "libefeu_i2c.a"
)
