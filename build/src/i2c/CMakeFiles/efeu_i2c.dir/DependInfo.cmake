
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/i2c/electrical.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/electrical.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/electrical.cc.o.d"
  "/root/repo/src/i2c/specs/esi_standard.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esi_standard.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esi_standard.cc.o.d"
  "/root/repo/src/i2c/specs/esm_byte.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_byte.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_byte.cc.o.d"
  "/root/repo/src/i2c/specs/esm_controller.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_controller.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_controller.cc.o.d"
  "/root/repo/src/i2c/specs/esm_responder.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_responder.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_responder.cc.o.d"
  "/root/repo/src/i2c/specs/esm_specs.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_specs.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_specs.cc.o.d"
  "/root/repo/src/i2c/specs/esm_verifiers.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_verifiers.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/specs/esm_verifiers.cc.o.d"
  "/root/repo/src/i2c/stack.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/stack.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/stack.cc.o.d"
  "/root/repo/src/i2c/transaction_spec.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/transaction_spec.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/transaction_spec.cc.o.d"
  "/root/repo/src/i2c/verify.cc" "src/i2c/CMakeFiles/efeu_i2c.dir/verify.cc.o" "gcc" "src/i2c/CMakeFiles/efeu_i2c.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/check/CMakeFiles/efeu_check.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/efeu_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
