# Empty compiler generated dependencies file for efeu_i2c.
# This may be replaced when dependencies are built.
