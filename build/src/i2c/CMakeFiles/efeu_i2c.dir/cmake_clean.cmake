file(REMOVE_RECURSE
  "CMakeFiles/efeu_i2c.dir/electrical.cc.o"
  "CMakeFiles/efeu_i2c.dir/electrical.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/specs/esi_standard.cc.o"
  "CMakeFiles/efeu_i2c.dir/specs/esi_standard.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/specs/esm_byte.cc.o"
  "CMakeFiles/efeu_i2c.dir/specs/esm_byte.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/specs/esm_controller.cc.o"
  "CMakeFiles/efeu_i2c.dir/specs/esm_controller.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/specs/esm_responder.cc.o"
  "CMakeFiles/efeu_i2c.dir/specs/esm_responder.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/specs/esm_specs.cc.o"
  "CMakeFiles/efeu_i2c.dir/specs/esm_specs.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/specs/esm_verifiers.cc.o"
  "CMakeFiles/efeu_i2c.dir/specs/esm_verifiers.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/stack.cc.o"
  "CMakeFiles/efeu_i2c.dir/stack.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/transaction_spec.cc.o"
  "CMakeFiles/efeu_i2c.dir/transaction_spec.cc.o.d"
  "CMakeFiles/efeu_i2c.dir/verify.cc.o"
  "CMakeFiles/efeu_i2c.dir/verify.cc.o.d"
  "libefeu_i2c.a"
  "libefeu_i2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_i2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
