# CMake generated Testfile for 
# Source directory: /root/repo/src/i2c
# Build directory: /root/repo/build/src/i2c
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
