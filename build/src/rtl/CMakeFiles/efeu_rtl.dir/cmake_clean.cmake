file(REMOVE_RECURSE
  "CMakeFiles/efeu_rtl.dir/regfile.cc.o"
  "CMakeFiles/efeu_rtl.dir/regfile.cc.o.d"
  "CMakeFiles/efeu_rtl.dir/rtl_module.cc.o"
  "CMakeFiles/efeu_rtl.dir/rtl_module.cc.o.d"
  "libefeu_rtl.a"
  "libefeu_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
