file(REMOVE_RECURSE
  "libefeu_rtl.a"
)
