# Empty dependencies file for efeu_rtl.
# This may be replaced when dependencies are built.
