file(REMOVE_RECURSE
  "CMakeFiles/efeu_ir.dir/compile.cc.o"
  "CMakeFiles/efeu_ir.dir/compile.cc.o.d"
  "CMakeFiles/efeu_ir.dir/dump.cc.o"
  "CMakeFiles/efeu_ir.dir/dump.cc.o.d"
  "CMakeFiles/efeu_ir.dir/lower.cc.o"
  "CMakeFiles/efeu_ir.dir/lower.cc.o.d"
  "CMakeFiles/efeu_ir.dir/segment.cc.o"
  "CMakeFiles/efeu_ir.dir/segment.cc.o.d"
  "libefeu_ir.a"
  "libefeu_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
