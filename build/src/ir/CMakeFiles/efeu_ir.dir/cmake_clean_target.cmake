file(REMOVE_RECURSE
  "libefeu_ir.a"
)
