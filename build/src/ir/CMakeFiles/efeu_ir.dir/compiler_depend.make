# Empty compiler generated dependencies file for efeu_ir.
# This may be replaced when dependencies are built.
