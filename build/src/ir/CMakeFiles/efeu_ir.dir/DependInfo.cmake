
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/compile.cc" "src/ir/CMakeFiles/efeu_ir.dir/compile.cc.o" "gcc" "src/ir/CMakeFiles/efeu_ir.dir/compile.cc.o.d"
  "/root/repo/src/ir/dump.cc" "src/ir/CMakeFiles/efeu_ir.dir/dump.cc.o" "gcc" "src/ir/CMakeFiles/efeu_ir.dir/dump.cc.o.d"
  "/root/repo/src/ir/lower.cc" "src/ir/CMakeFiles/efeu_ir.dir/lower.cc.o" "gcc" "src/ir/CMakeFiles/efeu_ir.dir/lower.cc.o.d"
  "/root/repo/src/ir/segment.cc" "src/ir/CMakeFiles/efeu_ir.dir/segment.cc.o" "gcc" "src/ir/CMakeFiles/efeu_ir.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
