file(REMOVE_RECURSE
  "CMakeFiles/efeu_spi.dir/specs.cc.o"
  "CMakeFiles/efeu_spi.dir/specs.cc.o.d"
  "CMakeFiles/efeu_spi.dir/verify.cc.o"
  "CMakeFiles/efeu_spi.dir/verify.cc.o.d"
  "libefeu_spi.a"
  "libefeu_spi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_spi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
