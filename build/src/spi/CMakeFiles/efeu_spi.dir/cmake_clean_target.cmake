file(REMOVE_RECURSE
  "libefeu_spi.a"
)
