# Empty compiler generated dependencies file for efeu_spi.
# This may be replaced when dependencies are built.
