# Empty compiler generated dependencies file for efeu_support.
# This may be replaced when dependencies are built.
