file(REMOVE_RECURSE
  "libefeu_support.a"
)
