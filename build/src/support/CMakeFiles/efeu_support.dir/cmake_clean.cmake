file(REMOVE_RECURSE
  "CMakeFiles/efeu_support.dir/diagnostics.cc.o"
  "CMakeFiles/efeu_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/efeu_support.dir/reserved_words.cc.o"
  "CMakeFiles/efeu_support.dir/reserved_words.cc.o.d"
  "CMakeFiles/efeu_support.dir/source_buffer.cc.o"
  "CMakeFiles/efeu_support.dir/source_buffer.cc.o.d"
  "CMakeFiles/efeu_support.dir/text.cc.o"
  "CMakeFiles/efeu_support.dir/text.cc.o.d"
  "libefeu_support.a"
  "libefeu_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
