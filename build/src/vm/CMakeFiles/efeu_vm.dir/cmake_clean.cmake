file(REMOVE_RECURSE
  "CMakeFiles/efeu_vm.dir/executor.cc.o"
  "CMakeFiles/efeu_vm.dir/executor.cc.o.d"
  "CMakeFiles/efeu_vm.dir/system.cc.o"
  "CMakeFiles/efeu_vm.dir/system.cc.o.d"
  "libefeu_vm.a"
  "libefeu_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
