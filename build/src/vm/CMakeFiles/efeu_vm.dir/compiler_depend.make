# Empty compiler generated dependencies file for efeu_vm.
# This may be replaced when dependencies are built.
