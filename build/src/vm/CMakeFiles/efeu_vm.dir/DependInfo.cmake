
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/executor.cc" "src/vm/CMakeFiles/efeu_vm.dir/executor.cc.o" "gcc" "src/vm/CMakeFiles/efeu_vm.dir/executor.cc.o.d"
  "/root/repo/src/vm/system.cc" "src/vm/CMakeFiles/efeu_vm.dir/system.cc.o" "gcc" "src/vm/CMakeFiles/efeu_vm.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
