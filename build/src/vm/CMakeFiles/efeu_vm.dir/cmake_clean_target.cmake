file(REMOVE_RECURSE
  "libefeu_vm.a"
)
