# CMake generated Testfile for 
# Source directory: /root/repo/src/esi
# Build directory: /root/repo/build/src/esi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
