
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esi/lexer.cc" "src/esi/CMakeFiles/efeu_esi.dir/lexer.cc.o" "gcc" "src/esi/CMakeFiles/efeu_esi.dir/lexer.cc.o.d"
  "/root/repo/src/esi/parser.cc" "src/esi/CMakeFiles/efeu_esi.dir/parser.cc.o" "gcc" "src/esi/CMakeFiles/efeu_esi.dir/parser.cc.o.d"
  "/root/repo/src/esi/system_info.cc" "src/esi/CMakeFiles/efeu_esi.dir/system_info.cc.o" "gcc" "src/esi/CMakeFiles/efeu_esi.dir/system_info.cc.o.d"
  "/root/repo/src/esi/type.cc" "src/esi/CMakeFiles/efeu_esi.dir/type.cc.o" "gcc" "src/esi/CMakeFiles/efeu_esi.dir/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
