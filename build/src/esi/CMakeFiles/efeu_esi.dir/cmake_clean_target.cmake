file(REMOVE_RECURSE
  "libefeu_esi.a"
)
