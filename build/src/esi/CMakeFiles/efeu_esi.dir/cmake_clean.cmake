file(REMOVE_RECURSE
  "CMakeFiles/efeu_esi.dir/lexer.cc.o"
  "CMakeFiles/efeu_esi.dir/lexer.cc.o.d"
  "CMakeFiles/efeu_esi.dir/parser.cc.o"
  "CMakeFiles/efeu_esi.dir/parser.cc.o.d"
  "CMakeFiles/efeu_esi.dir/system_info.cc.o"
  "CMakeFiles/efeu_esi.dir/system_info.cc.o.d"
  "CMakeFiles/efeu_esi.dir/type.cc.o"
  "CMakeFiles/efeu_esi.dir/type.cc.o.d"
  "libefeu_esi.a"
  "libefeu_esi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_esi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
