# Empty compiler generated dependencies file for efeu_esi.
# This may be replaced when dependencies are built.
