file(REMOVE_RECURSE
  "CMakeFiles/efeu_check.dir/checker.cc.o"
  "CMakeFiles/efeu_check.dir/checker.cc.o.d"
  "CMakeFiles/efeu_check.dir/ir_process.cc.o"
  "CMakeFiles/efeu_check.dir/ir_process.cc.o.d"
  "libefeu_check.a"
  "libefeu_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
