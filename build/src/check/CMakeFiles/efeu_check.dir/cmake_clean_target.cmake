file(REMOVE_RECURSE
  "libefeu_check.a"
)
