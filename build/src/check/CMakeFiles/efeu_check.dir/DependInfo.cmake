
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/checker.cc" "src/check/CMakeFiles/efeu_check.dir/checker.cc.o" "gcc" "src/check/CMakeFiles/efeu_check.dir/checker.cc.o.d"
  "/root/repo/src/check/ir_process.cc" "src/check/CMakeFiles/efeu_check.dir/ir_process.cc.o" "gcc" "src/check/CMakeFiles/efeu_check.dir/ir_process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/efeu_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
