# Empty compiler generated dependencies file for efeu_check.
# This may be replaced when dependencies are built.
