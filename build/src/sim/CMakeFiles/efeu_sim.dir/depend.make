# Empty dependencies file for efeu_sim.
# This may be replaced when dependencies are built.
