
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus_adapter.cc" "src/sim/CMakeFiles/efeu_sim.dir/bus_adapter.cc.o" "gcc" "src/sim/CMakeFiles/efeu_sim.dir/bus_adapter.cc.o.d"
  "/root/repo/src/sim/eeprom.cc" "src/sim/CMakeFiles/efeu_sim.dir/eeprom.cc.o" "gcc" "src/sim/CMakeFiles/efeu_sim.dir/eeprom.cc.o.d"
  "/root/repo/src/sim/i2c_bus.cc" "src/sim/CMakeFiles/efeu_sim.dir/i2c_bus.cc.o" "gcc" "src/sim/CMakeFiles/efeu_sim.dir/i2c_bus.cc.o.d"
  "/root/repo/src/sim/waveform.cc" "src/sim/CMakeFiles/efeu_sim.dir/waveform.cc.o" "gcc" "src/sim/CMakeFiles/efeu_sim.dir/waveform.cc.o.d"
  "/root/repo/src/sim/xilinx_ip.cc" "src/sim/CMakeFiles/efeu_sim.dir/xilinx_ip.cc.o" "gcc" "src/sim/CMakeFiles/efeu_sim.dir/xilinx_ip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/efeu_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
