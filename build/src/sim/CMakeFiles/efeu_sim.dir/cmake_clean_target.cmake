file(REMOVE_RECURSE
  "libefeu_sim.a"
)
