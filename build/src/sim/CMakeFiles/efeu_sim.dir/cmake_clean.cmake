file(REMOVE_RECURSE
  "CMakeFiles/efeu_sim.dir/bus_adapter.cc.o"
  "CMakeFiles/efeu_sim.dir/bus_adapter.cc.o.d"
  "CMakeFiles/efeu_sim.dir/eeprom.cc.o"
  "CMakeFiles/efeu_sim.dir/eeprom.cc.o.d"
  "CMakeFiles/efeu_sim.dir/i2c_bus.cc.o"
  "CMakeFiles/efeu_sim.dir/i2c_bus.cc.o.d"
  "CMakeFiles/efeu_sim.dir/waveform.cc.o"
  "CMakeFiles/efeu_sim.dir/waveform.cc.o.d"
  "CMakeFiles/efeu_sim.dir/xilinx_ip.cc.o"
  "CMakeFiles/efeu_sim.dir/xilinx_ip.cc.o.d"
  "libefeu_sim.a"
  "libefeu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efeu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
