# Empty dependencies file for bench_fig11_waveforms.
# This may be replaced when dependencies are built.
