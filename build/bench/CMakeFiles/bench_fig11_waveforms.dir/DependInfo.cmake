
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_waveforms.cc" "bench/CMakeFiles/bench_fig11_waveforms.dir/bench_fig11_waveforms.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_waveforms.dir/bench_fig11_waveforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/efeu_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/spi/CMakeFiles/efeu_spi.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/efeu_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/i2c/CMakeFiles/efeu_i2c.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/efeu_check.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/efeu_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/efeu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/efeu_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/efeu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/efeu_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/esi/CMakeFiles/efeu_esi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efeu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
