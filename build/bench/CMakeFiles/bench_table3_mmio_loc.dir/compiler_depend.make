# Empty compiler generated dependencies file for bench_table3_mmio_loc.
# This may be replaced when dependencies are built.
