file(REMOVE_RECURSE
  "CMakeFiles/bench_quirks.dir/bench_quirks.cc.o"
  "CMakeFiles/bench_quirks.dir/bench_quirks.cc.o.d"
  "bench_quirks"
  "bench_quirks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quirks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
