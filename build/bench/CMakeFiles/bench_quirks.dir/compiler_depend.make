# Empty compiler generated dependencies file for bench_quirks.
# This may be replaced when dependencies are built.
