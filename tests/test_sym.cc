// Tests for esmsym (src/analysis/sym): the abstract domain at bit-width
// boundaries, the path-condition solver (enumeration, refinement, storage
// verdicts), the symbolic executor over small lowered specs (rendezvous
// facts, short-circuit conditions, nondet, loop widening), the two sym-backed
// lint rules with triggering and silent cases, golden summary rendering, the
// shipped specifications proving clean under Werror, and the checker fast
// path (symbolic discharge) with exact state parity when not discharged.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analysis.h"
#include "src/analysis/sym/domain.h"
#include "src/analysis/sym/solver.h"
#include "src/analysis/sym/symexec.h"
#include "src/i2c/stack.h"
#include "src/i2c/verify.h"
#include "src/ir/compile.h"
#include "src/support/diagnostics.h"

namespace efeu {
namespace {

using analysis::Interval;
using analysis::sym::CompilationSummary;
using analysis::sym::EvalBinOp;
using analysis::sym::ExcludeValue;
using analysis::sym::Expr;
using analysis::sym::ExprPtr;
using analysis::sym::Join;
using analysis::sym::ModuleSummary;
using analysis::sym::Outcome;
using analysis::sym::Refine;
using analysis::sym::SiteVerdict;
using analysis::sym::Solver;
using analysis::sym::SymVal;
using analysis::sym::Truncate;
using analysis::sym::Widen;

// ---- domain: truncation at storage boundaries ------------------------------

TEST(SymDomain, TruncateWrapsU8Pointwise) {
  SymVal v = SymVal::FromSet({255, 256, 257, -1});
  SymVal t = Truncate(v, Type::U8());
  EXPECT_TRUE(t.Contains(0));
  EXPECT_TRUE(t.Contains(1));
  EXPECT_TRUE(t.Contains(255));
  EXPECT_FALSE(t.Contains(256));
  EXPECT_FALSE(t.Contains(-1));
}

TEST(SymDomain, TruncateSignExtendsI16) {
  SymVal v = SymVal::FromSet({32767, 32768, 65535});
  SymVal t = Truncate(v, Type::I16());
  EXPECT_TRUE(t.Contains(32767));
  EXPECT_TRUE(t.Contains(-32768));
  EXPECT_TRUE(t.Contains(-1));
  EXPECT_FALSE(t.Contains(32768));
}

TEST(SymDomain, TruncateNormalizesBoolish) {
  SymVal t = Truncate(SymVal::FromSet({0, 7}), Type::Bool());
  EXPECT_TRUE(t.Contains(0));
  EXPECT_TRUE(t.Contains(1));
  EXPECT_FALSE(t.Contains(7));
  EXPECT_EQ(t.interval.lo, 0);
  EXPECT_EQ(t.interval.hi, 1);
}

TEST(SymDomain, CongruenceSurvivesU8Truncation) {
  // Even values stay even through a mod-256 reduction: gcd(2, 256) == 2.
  SymVal v = SymVal::FromInterval(Interval::Of(0, 511));
  v.mod = 2;
  v.res = 0;
  SymVal t = Truncate(v, Type::U8());
  EXPECT_EQ(t.mod, 2);
  EXPECT_EQ(t.res, 0);
  EXPECT_FALSE(t.Contains(1));
  EXPECT_TRUE(t.Contains(254));
}

TEST(SymDomain, StorageHullsMatchBitWidths) {
  SymVal u8 = SymVal::Storage(Type::U8());
  EXPECT_EQ(u8.interval.lo, 0);
  EXPECT_EQ(u8.interval.hi, 255);
  SymVal i16 = SymVal::Storage(Type::I16());
  EXPECT_EQ(i16.interval.lo, -32768);
  EXPECT_EQ(i16.interval.hi, 32767);
  SymVal bit = SymVal::Storage(Type::Bit());
  EXPECT_EQ(bit.interval.lo, 0);
  EXPECT_EQ(bit.interval.hi, 1);
}

// ---- domain: join, widen, refine, exclude ----------------------------------

TEST(SymDomain, JoinKeepsSmallSetsExact) {
  SymVal j = Join(SymVal::FromSet({0, 2}), SymVal::FromSet({4}));
  EXPECT_TRUE(j.HasSet());
  EXPECT_TRUE(j.Contains(0));
  EXPECT_TRUE(j.Contains(2));
  EXPECT_TRUE(j.Contains(4));
  EXPECT_FALSE(j.Contains(1));
  EXPECT_FALSE(j.Contains(3));
}

TEST(SymDomain, JoinCollapsesOversizedSetsToHull) {
  std::vector<int32_t> a;
  std::vector<int32_t> b;
  for (int i = 0; i < analysis::sym::kMaxSetSize; ++i) {
    a.push_back(2 * i);
    b.push_back(2 * i + 100);
  }
  SymVal j = Join(SymVal::FromSet(a), SymVal::FromSet(b));
  EXPECT_FALSE(j.HasSet());
  EXPECT_EQ(j.interval.lo, 0);
  EXPECT_EQ(j.interval.hi, 100 + 2 * (analysis::sym::kMaxSetSize - 1));
}

TEST(SymDomain, JoinPropagatesAssumedTaint) {
  SymVal tainted = SymVal::Exact(1);
  tainted.assumed = true;
  EXPECT_TRUE(Join(SymVal::Exact(0), tainted).assumed);
  EXPECT_FALSE(Join(SymVal::Exact(0), SymVal::Exact(1)).assumed);
}

TEST(SymDomain, WidenJumpsGrowingBoundsToStorageHull) {
  SymVal prev = SymVal::FromInterval(Interval::Of(0, 3));
  SymVal next = SymVal::FromInterval(Interval::Of(0, 4));
  SymVal w = Widen(prev, next, Interval::Of(0, 255));
  EXPECT_EQ(w.interval.hi, 255);
  EXPECT_EQ(w.interval.lo, 0);
  // A stable bound is left alone.
  SymVal stable = Widen(prev, prev, Interval::Of(0, 255));
  EXPECT_EQ(stable.interval.hi, 3);
}

TEST(SymDomain, RefineIntersectsAndKeepsNonEmpty) {
  SymVal r = Refine(SymVal::FromSet({0, 2, 5}), SymVal::FromInterval(Interval::Of(1, 4)));
  EXPECT_TRUE(r.Contains(2));
  EXPECT_FALSE(r.Contains(0));
  EXPECT_FALSE(r.Contains(5));
  // Empty intersection: refinement is advisory, the input survives.
  SymVal kept = Refine(SymVal::Exact(7), SymVal::Exact(9));
  EXPECT_TRUE(kept.Contains(7));
}

TEST(SymDomain, ExcludeValueDropsSetMember) {
  SymVal v = ExcludeValue(SymVal::FromSet({0, 2, 5}), 0);
  EXPECT_FALSE(v.Contains(0));
  EXPECT_TRUE(v.Contains(2));
  EXPECT_TRUE(v.Contains(5));
}

TEST(SymDomain, ExcludeValueTightensIntervalEndpoints) {
  SymVal lo = ExcludeValue(SymVal::FromInterval(Interval::Of(0, 300)), 0);
  EXPECT_EQ(lo.interval.lo, 1);
  SymVal hi = ExcludeValue(SymVal::FromInterval(Interval::Of(-5, 300)), 300);
  EXPECT_EQ(hi.interval.hi, 299);
}

TEST(SymDomain, ExcludeValueLeavesInteriorPointsAlone) {
  // An interior exclusion is not representable in the domain.
  SymVal v = ExcludeValue(SymVal::FromInterval(Interval::Of(0, 300)), 150);
  EXPECT_EQ(v.interval.lo, 0);
  EXPECT_EQ(v.interval.hi, 300);
  EXPECT_TRUE(v.Contains(150));
}

TEST(SymDomain, ExcludeValuePreservesTaint) {
  SymVal v = SymVal::FromSet({0, 2});
  v.assumed = true;
  EXPECT_TRUE(ExcludeValue(v, 0).assumed);
}

TEST(SymDomain, DivisionReportsMayFailOnlyWhenZeroAdmitted) {
  bool may_fail = false;
  SymVal q = EvalBinOp(esm::BinaryOp::kDiv, SymVal::Exact(10), SymVal::FromSet({0, 2}), &may_fail);
  EXPECT_TRUE(may_fail);
  EXPECT_TRUE(q.Contains(5));
  may_fail = false;
  EvalBinOp(esm::BinaryOp::kDiv, SymVal::Exact(10), SymVal::FromInterval(Interval::Of(1, 4)),
            &may_fail);
  EXPECT_FALSE(may_fail);
}

// ---- solver: enumeration, refinement, storage verdicts ---------------------

ExprPtr LeafOf(int record, SymVal val, Type type = Type::I32()) {
  return Expr::Leaf(record, /*gen=*/1, std::move(val), type, /*refinable=*/true);
}

TEST(SymSolver, EnumerationDecidesAndRefines) {
  Solver solver;
  // x in {0, 2, 5}; condition (x == 2).
  ExprPtr cond =
      Expr::Bin(esm::BinaryOp::kEq, LeafOf(0, SymVal::FromSet({0, 2, 5})), Expr::Const(2));
  auto r = solver.Solve(cond);
  EXPECT_EQ(r.outcome, Outcome::kUnknown);
  EXPECT_TRUE(r.enumerated);
  ASSERT_EQ(r.when_true.size(), 1u);
  EXPECT_TRUE(r.when_true[0].refined.Contains(2));
  EXPECT_FALSE(r.when_true[0].refined.Contains(0));
  ASSERT_EQ(r.when_false.size(), 1u);
  EXPECT_TRUE(r.when_false[0].refined.Contains(0));
  EXPECT_TRUE(r.when_false[0].refined.Contains(5));
  EXPECT_FALSE(r.when_false[0].refined.Contains(2));
}

TEST(SymSolver, EnumerationProvesAlwaysTrue) {
  Solver solver;
  ExprPtr cond =
      Expr::Bin(esm::BinaryOp::kLt, LeafOf(0, SymVal::FromSet({1, 2, 3})), Expr::Const(4));
  EXPECT_EQ(solver.Solve(cond).outcome, Outcome::kAlwaysTrue);
}

TEST(SymSolver, DivisionByPossiblyZeroLeafSetsMayFail) {
  Solver solver;
  ExprPtr cond =
      Expr::Bin(esm::BinaryOp::kDiv, Expr::Const(8), LeafOf(0, SymVal::FromSet({0, 2})));
  auto r = solver.Solve(cond);
  EXPECT_TRUE(r.may_fail);
}

TEST(SymSolver, AssumedLeafTaintsTheDecision) {
  Solver solver;
  SymVal v = SymVal::FromSet({1, 2});
  v.assumed = true;
  ExprPtr cond = Expr::Bin(esm::BinaryOp::kGe, LeafOf(0, v), Expr::Const(1));
  auto r = solver.Solve(cond);
  EXPECT_EQ(r.outcome, Outcome::kAlwaysTrue);
  EXPECT_TRUE(r.assumed);
  // And an assumed leaf can never ground a type-tautology claim.
  EXPECT_FALSE(solver.IsTypeTautology(cond));
}

TEST(SymSolver, StorageOutcomeJudgesTypesNotValues) {
  Solver solver;
  // b is a bool that the analysis knows is exactly 1; (b <= 1) holds for the
  // whole storage, (b == 1) only for the learned value.
  ExprPtr vacuous =
      Expr::Bin(esm::BinaryOp::kLe, LeafOf(0, SymVal::Exact(1), Type::Bool()), Expr::Const(1));
  EXPECT_EQ(solver.StorageOutcome(vacuous), Outcome::kAlwaysTrue);
  EXPECT_TRUE(solver.IsTypeTautology(vacuous));
  ExprPtr contingent =
      Expr::Bin(esm::BinaryOp::kEq, LeafOf(0, SymVal::Exact(1), Type::Bool()), Expr::Const(1));
  EXPECT_EQ(solver.StorageOutcome(contingent), Outcome::kUnknown);
  EXPECT_FALSE(solver.IsTypeTautology(contingent));
}

TEST(SymSolver, StorageOutcomeAlwaysFalseAtBitWidthBoundary) {
  Solver solver;
  // A u8 can never exceed 255 — dead for any value its storage admits.
  ExprPtr dead =
      Expr::Bin(esm::BinaryOp::kGt, LeafOf(0, SymVal::Exact(3), Type::U8()), Expr::Const(300));
  EXPECT_EQ(solver.StorageOutcome(dead), Outcome::kAlwaysFalse);
}

TEST(SymSolver, StorageOutcomeUnknownWithoutProgramLeaves) {
  Solver solver;
  // `while (1)` headers: a constant condition is control flow, not a type
  // fact, so neither lint rule may claim it.
  EXPECT_EQ(solver.StorageOutcome(Expr::Const(1)), Outcome::kUnknown);
  EXPECT_FALSE(solver.IsTypeTautology(Expr::Const(1)));
}

// ---- executor over small lowered specs -------------------------------------

constexpr char kPairEsi[] = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";

constexpr char kEchoDown[] = R"esm(
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v);
  goto end_reply;
}
)esm";

struct SymOutcome {
  std::unique_ptr<ir::Compilation> comp;
  CompilationSummary summary;
};

SymOutcome RunSym(const std::string& esm, bool allow_nondet = false,
                  const analysis::sym::SymOptions& options = {}) {
  SymOutcome out;
  DiagnosticEngine diag;
  ir::CompileOptions copts;
  copts.allow_nondet = allow_nondet;
  out.comp = ir::Compile(kPairEsi, esm, diag, copts);
  EXPECT_NE(out.comp, nullptr) << diag.RenderAll();
  if (out.comp == nullptr) {
    return out;
  }
  out.summary = analysis::sym::AnalyzeCompilationSym(*out.comp, options);
  return out;
}

const ModuleSummary* FindModuleSummary(const SymOutcome& out, const std::string& layer) {
  for (const ModuleSummary& m : out.summary.modules) {
    if (m.layer == layer) {
      return &m;
    }
  }
  return nullptr;
}

// All assert-kind sites of one module, in program order.
std::vector<const SiteVerdict*> AssertSites(const ModuleSummary& m) {
  std::vector<const SiteVerdict*> sites;
  for (const SiteVerdict& s : m.sites) {
    if (s.kind == SiteVerdict::Kind::kAssert) {
      sites.push_back(&s);
    }
  }
  return sites;
}

TEST(SymExec, RendezvousProvesCrossLayerAssert) {
  // Up's reply facts come from Down's computed send summary (assume-guarantee
  // round 2), so the assert is proved without any assumed contract.
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(5);
  assert(r.r == 5);
}
)esm") + kEchoDown);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  auto asserts = AssertSites(*up);
  ASSERT_EQ(asserts.size(), 1u);
  EXPECT_TRUE(asserts[0]->proved) << asserts[0]->value;
  EXPECT_FALSE(asserts[0]->assumed);
  bool any_assumed = true;
  EXPECT_TRUE(out.summary.AllProved(&any_assumed));
  EXPECT_FALSE(any_assumed);
  EXPECT_GE(out.summary.rounds, 2);
}

TEST(SymExec, ShortCircuitOrConditionIsProved) {
  // Short-circuit `||` lowers to a CFG that joins the condition cell from two
  // blocks; the proof needs the arm-local strengthening of the condition cell
  // itself (the cell is not a leaf of its own defining expression).
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  r = UpTalkDown(1);
  if (r.r > 0) {
    x = 0;
  } else {
    x = 2;
  }
  assert(x == 0 || x == 2);
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  auto asserts = AssertSites(*up);
  ASSERT_EQ(asserts.size(), 1u);
  EXPECT_TRUE(asserts[0]->proved) << asserts[0]->value;
  EXPECT_FALSE(asserts[0]->assumed);
}

TEST(SymExec, NondetChoicesBecomeExactSets) {
  // One summary covers both nondet arms; the assert bounds the choice.
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  int c;
  c = nondet(2);
  assert(c < 2);
  r = UpTalkDown(c);
}
)esm") + kEchoDown,
                          /*allow_nondet=*/true);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  auto asserts = AssertSites(*up);
  ASSERT_EQ(asserts.size(), 1u);
  EXPECT_TRUE(asserts[0]->proved) << asserts[0]->value;
}

TEST(SymExec, GuardedDivisionIsProved) {
  // The `d > 0` refinement is interval-representable ([1, hi]); a `d != 0`
  // guard around an interval spanning zero would not be (interior-point
  // exclusion), and the obligation would soundly stay unproved.
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  int d;
  int y;
  r = UpTalkDown(3);
  d = r.r;
  if (d > 0) {
    y = 12 / d;
  } else {
    y = 0;
  }
  r = UpTalkDown(y);
}
)esm") + kEchoDown);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  bool saw_divisor = false;
  for (const SiteVerdict& s : up->sites) {
    if (s.kind == SiteVerdict::Kind::kDivisor) {
      saw_divisor = true;
      EXPECT_TRUE(s.proved) << s.value;
    }
  }
  EXPECT_TRUE(saw_divisor);
}

TEST(SymExec, UnguardedNondetDivisorStaysUnproved) {
  // d draws from {0, 1, 2}; 12 / d can fail, and no proof may claim
  // otherwise.
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  int d;
  int y;
  d = nondet(3);
  y = 12 / d;
  r = UpTalkDown(y);
}
)esm") + kEchoDown,
                          /*allow_nondet=*/true);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  bool saw_divisor = false;
  for (const SiteVerdict& s : up->sites) {
    if (s.kind == SiteVerdict::Kind::kDivisor) {
      saw_divisor = true;
      EXPECT_FALSE(s.proved) << s.value;
    }
  }
  EXPECT_TRUE(saw_divisor);
  EXPECT_FALSE(out.summary.AllProved());
}

TEST(SymExec, LoopIndexBoundsProvedThroughWidening) {
  // The loop counter widens at the loop head, but the branch refinement on
  // `i < 4` re-narrows the body store, so the index obligation stays proved.
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  int arr[4];
  int i;
  i = 0;
  while (i < 4) {
    arr[i] = i;
    i = i + 1;
  }
  r = UpTalkDown(arr[3]);
}
)esm") + kEchoDown);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  EXPECT_TRUE(up->complete);
  EXPECT_GE(up->widenings, 0u);
  bool saw_index = false;
  for (const SiteVerdict& s : up->sites) {
    if (s.kind == SiteVerdict::Kind::kIndex) {
      saw_index = true;
      EXPECT_TRUE(s.proved) << s.value;
    }
  }
  EXPECT_TRUE(saw_index);
}

TEST(SymExec, BudgetExhaustionLeavesSitesUnproved) {
  // A loop forces loop-head revisits (straight-line chains complete in one
  // visit), so a one-visit budget must abort and withhold every proof.
  analysis::sym::SymOptions options;
  options.max_block_visits = 1;
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  int i;
  i = 0;
  while (i < 4) {
    i = i + 1;
  }
  r = UpTalkDown(5);
  assert(r.r == 5);
}
)esm") + kEchoDown,
                          /*allow_nondet=*/false, options);
  const ModuleSummary* up = FindModuleSummary(out, "Up");
  ASSERT_NE(up, nullptr);
  EXPECT_FALSE(up->complete);
  EXPECT_FALSE(out.summary.AllProved());
}

// ---- sym-backed lint rules: triggering and silent cases --------------------

struct SymLintOutcome {
  analysis::AnalysisResult result;
  std::string rendered;
};

SymLintOutcome SymLint(const std::string& esm, const analysis::AnalysisOptions& options = {},
                       bool allow_nondet = false) {
  SymLintOutcome outcome;
  SymOutcome sym = RunSym(esm, allow_nondet);
  if (sym.comp == nullptr) {
    return outcome;
  }
  DiagnosticEngine diag;
  outcome.result = analysis::ReportSymFindings(*sym.comp, sym.summary, diag, options);
  outcome.rendered = diag.RenderAll();
  return outcome;
}

TEST(SymLintRules, AssertAlwaysTrueFiresOnTypeTautology) {
  SymLintOutcome out = SymLint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b;
  r = UpTalkDown(7);
  b = r.r;
  assert(b < 256);
  r = UpTalkDown(b);
}
)esm") + kEchoDown);
  EXPECT_GE(out.result.warnings, 1);
  EXPECT_NE(out.rendered.find("[assert-always-true]"), std::string::npos) << out.rendered;
}

TEST(SymLintRules, ContingentProvedAssertStaysSilent) {
  // Provable from the learned values but not from the types: a verification
  // success, not a spec smell.
  SymLintOutcome out = SymLint(std::string(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(5);
  assert(r.r == 5);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
  EXPECT_EQ(out.result.errors, 0) << out.rendered;
}

TEST(SymLintRules, InfeasibleBranchFiresOnTypeLevelDeadArm) {
  SymLintOutcome out = SymLint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b;
  r = UpTalkDown(7);
  b = r.r;
  if (b > 300) {
    r = UpTalkDown(0);
  }
  r = UpTalkDown(b);
}
)esm") + kEchoDown);
  EXPECT_GE(out.result.warnings, 1);
  EXPECT_NE(out.rendered.find("[infeasible-branch]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("operand types"), std::string::npos) << out.rendered;
}

TEST(SymLintRules, PeerDerivedDeadArmStaysSilent) {
  // The arm is dead only because THIS Down never sends 3 — the spec text is
  // live under other peers, so it is a configuration fact, not a finding.
  SymLintOutcome out = SymLint(std::string(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
  if (r.r == 3) {
    r = UpTalkDown(0);
  }
  r = UpTalkDown(2);
}
)esm") + std::string(R"esm(
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm"));
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
  EXPECT_EQ(out.result.errors, 0) << out.rendered;
}

TEST(SymLintRules, WerrorEscalatesAndPragmaSuppresses) {
  analysis::AnalysisOptions werror;
  werror.werror = true;
  SymLintOutcome out = SymLint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b;
  r = UpTalkDown(7);
  b = r.r;
  assert(b < 256);
  r = UpTalkDown(b);
}
)esm") + kEchoDown,
                               werror);
  EXPECT_GE(out.result.errors, 1);
  EXPECT_FALSE(out.result.ok());

  SymLintOutcome suppressed = SymLint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b;
  r = UpTalkDown(7);
  b = r.r;
#pragma esmlint suppress assert-always-true
  assert(b < 256);
  r = UpTalkDown(b);
}
)esm") + kEchoDown,
                                      werror);
  EXPECT_EQ(suppressed.result.errors, 0) << suppressed.rendered;
  EXPECT_EQ(suppressed.result.suppressed, 1);
}

// ---- golden summary rendering ----------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(EFEU_GOLDEN_DIR) + "/" + name;
}

void CompareOrUpdate(const std::string& name, const std::string& generated) {
  const std::string path = GoldenPath(name);
  if (std::getenv("EFEU_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << generated;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run `efeu_tests --update-goldens` to create it";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(generated, golden.str())
      << "sym summary for " << name << " changed; if intended, refresh with "
      << "`efeu_tests --update-goldens` and commit the diff";
}

TEST(SymGolden, SummaryRenderingMatchesGolden) {
  // One spec touching every summary section: proved and unproved sites of
  // all three kinds, an infeasible branch, send facts, and path statistics
  // (counters are deterministic — the executor explores in program order).
  SymOutcome out = RunSym(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b;
  int y;
  r = UpTalkDown(6);
  b = r.r;
  assert(b < 256);
  if (b > 300) {
    y = 1;
  } else {
    y = 12 / b;
  }
  r = UpTalkDown(y);
}
)esm") + kEchoDown);
  ASSERT_NE(out.comp, nullptr);
  CompareOrUpdate("sym_summary.txt",
                  analysis::sym::RenderSymSummary(*out.comp, out.summary));
}

// ---- shipped specifications prove clean under --sym=Werror ------------------

void ExpectSymClean(const ir::Compilation& comp, const std::string& what) {
  CompilationSummary summary = analysis::sym::AnalyzeCompilationSym(comp);
  DiagnosticEngine diag;
  analysis::AnalysisOptions options;
  options.werror = true;
  analysis::AnalysisResult result = analysis::ReportSymFindings(comp, summary, diag, options);
  EXPECT_EQ(result.errors, 0) << what << ":\n" << diag.RenderAll();
  EXPECT_EQ(result.warnings, 0) << what << ":\n" << diag.RenderAll();
  EXPECT_EQ(result.suppressed, 0) << what << ": shipped specs must not need sym suppressions";
}

TEST(ShippedSpecsSym, DriverStacksAreCleanUnderWerror) {
  {
    DiagnosticEngine diag;
    auto comp = i2c::CompileControllerStack(diag);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectSymClean(*comp, "controller stack");
  }
  {
    DiagnosticEngine diag;
    i2c::ControllerStackOptions options;
    options.no_clock_stretching = true;
    options.ks0127_compat = true;
    auto comp = i2c::CompileControllerStack(diag, options);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectSymClean(*comp, "controller stack (quirks)");
  }
  {
    DiagnosticEngine diag;
    auto comp = i2c::CompileResponderStack(diag);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectSymClean(*comp, "responder stack");
  }
  {
    DiagnosticEngine diag;
    i2c::ResponderStackOptions options;
    options.ks0127 = true;
    auto comp = i2c::CompileResponderStack(diag, options);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectSymClean(*comp, "responder stack (ks0127)");
  }
}

TEST(ShippedSpecsSym, VerifierMixesAreCleanUnderWerror) {
  using i2c::VerifyAbstraction;
  using i2c::VerifyLevel;
  struct Combo {
    VerifyLevel level;
    VerifyAbstraction abstraction;
  };
  const Combo combos[] = {
      {VerifyLevel::kSymbol, VerifyAbstraction::kNone},
      {VerifyLevel::kByte, VerifyAbstraction::kSymbol},
      {VerifyLevel::kTransaction, VerifyAbstraction::kByte},
      {VerifyLevel::kEepDriver, VerifyAbstraction::kTransaction},
  };
  for (const Combo& combo : combos) {
    i2c::VerifyConfig config;
    config.level = combo.level;
    config.abstraction = combo.abstraction;
    DiagnosticEngine diag;
    auto vs = i2c::BuildVerifier(config, diag);
    ASSERT_NE(vs, nullptr) << diag.RenderAll();
    std::string what = "i2c verifier level=" + std::to_string(static_cast<int>(combo.level)) +
                       " abstraction=" + std::to_string(static_cast<int>(combo.abstraction));
    for (const auto& comp : vs->compilations()) {
      ExpectSymClean(*comp, what);
    }
  }
}

// ---- checker fast path: symbolic discharge ---------------------------------

i2c::VerifyConfig FaultConfig(int fault_events, int reset_events, int max_len) {
  i2c::VerifyConfig config;
  config.level = i2c::VerifyLevel::kEepDriver;
  config.abstraction = i2c::VerifyAbstraction::kTransaction;
  config.num_eeproms = 1;
  config.num_ops = 2;
  config.max_len = max_len;
  config.fault_events = fault_events;
  config.reset_events = reset_events;
  return config;
}

TEST(SymDischarge, FaultConfigFullyDischargesSafetyPass) {
  // The degraded fault oracle is provable from the declared transaction
  // facts alone, so the explicit safety pass is skipped entirely: its
  // properties hold for ALL fault schedules at once.
  i2c::VerifyConfig config = FaultConfig(/*fault_events=*/2, /*reset_events=*/0, /*max_len=*/2);
  config.sym_discharge = true;
  DiagnosticEngine diag;
  i2c::VerifyRunResult result = i2c::RunVerification(config, diag);
  EXPECT_TRUE(result.ok) << diag.RenderAll();
  EXPECT_TRUE(result.sym.attempted);
  EXPECT_TRUE(result.sym.discharged);
  EXPECT_EQ(result.sym.proved, result.sym.obligations);
  EXPECT_GT(result.sym.obligations, 0);
  EXPECT_EQ(result.safety.states_stored, 0u);
  EXPECT_GT(result.liveness.states_stored, 0u);
}

TEST(SymDischarge, ResetConfigDoesNotDischargeAndKeepsStateParity) {
  // The reset-convergence oracle counts failures across operations — beyond
  // the per-message facts the executor tracks — so the fast path must fall
  // back to the explicit passes, byte-for-byte the same exploration.
  i2c::VerifyConfig config = FaultConfig(/*fault_events=*/1, /*reset_events=*/1, /*max_len=*/2);
  DiagnosticEngine diag_off;
  i2c::VerifyRunResult off = i2c::RunVerification(config, diag_off);
  config.sym_discharge = true;
  DiagnosticEngine diag_on;
  i2c::VerifyRunResult on = i2c::RunVerification(config, diag_on);
  EXPECT_TRUE(on.sym.attempted);
  EXPECT_FALSE(on.sym.discharged);
  EXPECT_LT(on.sym.proved, on.sym.obligations);
  EXPECT_EQ(on.ok, off.ok);
  EXPECT_EQ(on.safety.ok, off.safety.ok);
  EXPECT_EQ(on.safety.states_stored, off.safety.states_stored);
  EXPECT_EQ(on.liveness.states_stored, off.liveness.states_stored);
}

TEST(SymDischarge, FaultFreeDataOracleDoesNotDischarge) {
  // Without faults the CWorld oracle checks full data correspondence
  // (read-back equals the model array) — relational state the symbolic
  // summary cannot express — so the config must not discharge.
  i2c::VerifyConfig config = FaultConfig(/*fault_events=*/0, /*reset_events=*/0, /*max_len=*/2);
  DiagnosticEngine diag_off;
  i2c::VerifyRunResult off = i2c::RunVerification(config, diag_off);
  config.sym_discharge = true;
  DiagnosticEngine diag_on;
  i2c::VerifyRunResult on = i2c::RunVerification(config, diag_on);
  EXPECT_TRUE(on.sym.attempted);
  EXPECT_FALSE(on.sym.discharged);
  EXPECT_EQ(on.ok, off.ok);
  EXPECT_EQ(on.safety.states_stored, off.safety.states_stored);
  EXPECT_EQ(on.liveness.states_stored, off.liveness.states_stored);
}

}  // namespace
}  // namespace efeu
