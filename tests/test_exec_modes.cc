// Cross-tier equivalence for the VM execution modes (src/vm/exec_mode.h).
// The interpreter is the reference semantics; the direct-threaded and
// compiled tiers must be *indistinguishable* from it: identical frames,
// identical canonical pc, identical step counts (including budget stops
// landing between fused superinstruction halves), identical blocking points,
// and byte-identical error strings. The fuzz harness extends this with
// randomized programs; these tests pin the contract on targeted cases.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/compile.h"
#include "src/vm/compiled.h"
#include "src/vm/system.h"
#include "src/vm/threaded.h"

namespace efeu {
namespace {

constexpr const char* kEsi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 a; i32 b; u8 arr[3]; },
  <= { i32 r; u8 echo[3]; }
};
)esi";

constexpr vm::ExecMode kAllModes[] = {vm::ExecMode::kInterp, vm::ExecMode::kThreaded,
                                      vm::ExecMode::kCompiled};

std::unique_ptr<ir::Compilation> Compile(const std::string& esm) {
  DiagnosticEngine diag;
  auto comp = ir::Compile(kEsi, esm, diag, ir::CompileOptions{});
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

// Full machine-state comparison: canonical pc, run state, step counter,
// progress bit, and every frame slot (temps included — the tiers must agree
// even on dead values because they execute the same instruction sequence).
void ExpectSameMachineState(const vm::IrExecutor& a, const vm::IrExecutor& b,
                            const std::string& context) {
  EXPECT_EQ(a.state(), b.state()) << context;
  EXPECT_EQ(a.current_block(), b.current_block()) << context;
  EXPECT_EQ(a.current_inst_index(), b.current_inst_index()) << context;
  EXPECT_EQ(a.steps(), b.steps()) << context;
  EXPECT_EQ(a.ProgressSeen(), b.ProgressSeen()) << context;
  EXPECT_EQ(a.error(), b.error()) << context;
  ASSERT_EQ(a.frame().size(), b.frame().size()) << context;
  for (size_t i = 0; i < a.frame().size(); ++i) {
    EXPECT_EQ(a.frame()[i], b.frame()[i]) << context << " slot " << i;
  }
}

// Runs `module` under every tier in lockstep with the given step budget per
// Run() call, comparing the full machine state after every slice. A budget
// of 1 forces a stop after every instruction, including between the halves
// of fused pairs and straight through compiled-tier re-entry dispatch.
void LockstepAllTiers(const ir::Module* module, uint64_t budget) {
  vm::IrExecutor reference(module);
  vm::IrExecutor threaded(module);
  vm::IrExecutor compiled(module);
  threaded.set_exec_mode(vm::ExecMode::kThreaded);
  compiled.set_exec_mode(vm::ExecMode::kCompiled);
  for (int slice = 0; slice < 100000; ++slice) {
    vm::RunState state = reference.Run(budget);
    threaded.Run(budget);
    compiled.Run(budget);
    std::string context = module->layer_name + " budget=" + std::to_string(budget) +
                          " slice=" + std::to_string(slice);
    ExpectSameMachineState(reference, threaded, context + " [threaded]");
    ExpectSameMachineState(reference, compiled, context + " [compiled]");
    if (state != vm::RunState::kRunnable) {
      return;  // Blocked, halted, or failed identically in all tiers.
    }
  }
  FAIL() << "program did not terminate";
}

// Exercises every opcode class: constants, truncating copies, unary and
// binary operators (with fusable const+binop and binop+branch pairs), array
// indexing, loops, and a final halt.
constexpr const char* kArithBody = R"esm(
void Up() {
  int x;
  int i;
  byte acc[4];
  short s;
  bit flip;
  x = 1;
  i = 0;
  while (i < 17) {
    x = x * 3 + i;
    x = x % 9973;
    s = x;
    flip = !flip;
    acc[i % 4] = x >> (i % 8);
    x = x + acc[(i + 1) % 4] + s + flip;
    x = x - (x / 7);
    i = i + 1;
  }
  assert(x >= 0 || x < 0);
}
)esm";

TEST(ExecModes, LockstepArithmeticAllBudgets) {
  auto comp = Compile(kArithBody);
  ASSERT_NE(comp, nullptr);
  const ir::Module* module = comp->FindModule("Up");
  for (uint64_t budget : {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{7}, uint64_t{0}}) {
    LockstepAllTiers(module, budget);
  }
}

TEST(ExecModes, IdenticalDivisionByZeroError) {
  auto comp = Compile("void Up() { int n; int x; n = 0; x = 10 / n; }");
  ASSERT_NE(comp, nullptr);
  LockstepAllTiers(comp->FindModule("Up"), 0);
  vm::IrExecutor compiled(comp->FindModule("Up"));
  compiled.set_exec_mode(vm::ExecMode::kCompiled);
  compiled.Run();
  EXPECT_EQ(compiled.state(), vm::RunState::kRuntimeError);
  EXPECT_NE(compiled.error().find("division by zero"), std::string::npos) << compiled.error();
}

TEST(ExecModes, IdenticalOutOfBoundsError) {
  auto comp = Compile("void Up() { byte a[3]; int i; i = 5; a[i] = 1; }");
  ASSERT_NE(comp, nullptr);
  LockstepAllTiers(comp->FindModule("Up"), 0);
  vm::IrExecutor compiled(comp->FindModule("Up"));
  compiled.set_exec_mode(vm::ExecMode::kCompiled);
  compiled.Run();
  EXPECT_EQ(compiled.state(), vm::RunState::kRuntimeError);
  EXPECT_NE(compiled.error().find("index 5 out of bounds"), std::string::npos)
      << compiled.error();
}

TEST(ExecModes, IdenticalAssertError) {
  auto comp = Compile("void Up() { int x; x = 3; assert(x == 4); }");
  ASSERT_NE(comp, nullptr);
  LockstepAllTiers(comp->FindModule("Up"), 0);
  LockstepAllTiers(comp->FindModule("Up"), 1);
}

constexpr const char* kEchoPair = R"esm(
void Up() {
  DownToUp r;
  byte arr[3];
  arr[0] = 1;
  arr[1] = 2;
  arr[2] = 3;
  r = UpTalkDown(40, 2, arr);
  assert(r.r == 42);
  assert(r.echo[0] == 1);
  assert(r.echo[2] == 3);
}

void Down() {
  UpToDown q;
  byte out[3];
  int i;
  end_init:
  q = DownReadUp();
  i = 0;
  while (i < 3) {
    out[i] = q.arr[i];
    i = i + 1;
  }
  end_reply:
  q = DownTalkUp(q.a + q.b, out);
  goto end_reply;
}
)esm";

// Whole-system equivalence: the rendezvous scheduler drives both layers in
// each tier; final states, per-process steps, and the observed per-channel
// message sequences must match the interpreter run.
TEST(ExecModes, SystemRendezvousEquivalence) {
  auto comp = Compile(kEchoPair);
  ASSERT_NE(comp, nullptr);
  std::vector<std::vector<int32_t>> reference_messages;
  std::vector<uint64_t> reference_steps;
  for (vm::ExecMode mode : kAllModes) {
    vm::System system;
    system.SetExecMode(mode);
    int up = system.AddProcess(comp->FindModule("Up"), "Up");
    int down = system.AddProcess(comp->FindModule("Down"), "Down");
    const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
    const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
    system.Connect(system.FindPort(up, to_down, true), system.FindPort(down, to_down, false));
    system.Connect(system.FindPort(down, to_up, true), system.FindPort(up, to_up, false));
    system.Precompile();
    std::vector<std::vector<int32_t>> messages;
    system.SetTransferObserver(
        [&messages](vm::PortRef sender, vm::PortRef, std::span<const int32_t> message) {
          if (sender.process < 0) {
            return;  // Compare internal rendezvous sequences only.
          }
          messages.emplace_back(message.begin(), message.end());
        });
    ASSERT_EQ(system.Run(), vm::SystemState::kQuiescent) << system.error();
    EXPECT_EQ(system.executor(up).state(), vm::RunState::kHalted);
    EXPECT_EQ(system.executor(down).state(), vm::RunState::kBlockedRecv);
    EXPECT_TRUE(system.executor(down).AtValidEndState());
    std::vector<uint64_t> steps = {system.executor(up).steps(), system.executor(down).steps()};
    if (mode == vm::ExecMode::kInterp) {
      reference_messages = messages;
      reference_steps = steps;
    } else {
      EXPECT_EQ(messages, reference_messages) << vm::ExecModeName(mode);
      EXPECT_EQ(steps, reference_steps) << vm::ExecModeName(mode);
    }
  }
}

// A process may switch tiers at any blocking point: start interpreting, stop
// at the recv, snapshot, restore into a compiled-mode executor, and finish.
TEST(ExecModes, TierSwitchAtBlockingPoint) {
  auto comp = Compile(kEchoPair);
  ASSERT_NE(comp, nullptr);
  const ir::Module* module = comp->FindModule("Down");

  vm::IrExecutor interp(module);
  interp.Run();
  ASSERT_EQ(interp.state(), vm::RunState::kBlockedRecv);
  std::vector<int32_t> snapshot(interp.SnapshotSize());
  interp.Snapshot(snapshot);

  for (vm::ExecMode mode : {vm::ExecMode::kThreaded, vm::ExecMode::kCompiled}) {
    vm::IrExecutor other(module);
    other.set_exec_mode(mode);
    other.Restore(snapshot);
    ASSERT_EQ(other.state(), vm::RunState::kBlockedRecv);
    const std::vector<int32_t> request = {6, 7, 9, 8, 7};
    other.CompleteRecv(request);
    interp.Restore(snapshot);
    interp.CompleteRecv(request);
    interp.Run();
    other.Run();
    ASSERT_EQ(other.state(), vm::RunState::kBlockedSend) << vm::ExecModeName(mode);
    ASSERT_EQ(interp.state(), vm::RunState::kBlockedSend);
    EXPECT_EQ(std::vector<int32_t>(other.pending_message().begin(),
                                   other.pending_message().end()),
              std::vector<int32_t>(interp.pending_message().begin(),
                                   interp.pending_message().end()))
        << vm::ExecModeName(mode);
  }
}

TEST(ExecModes, ParseAndNames) {
  vm::ExecMode mode = vm::ExecMode::kInterp;
  EXPECT_TRUE(vm::ParseExecMode("interp", &mode));
  EXPECT_EQ(mode, vm::ExecMode::kInterp);
  EXPECT_TRUE(vm::ParseExecMode("threaded", &mode));
  EXPECT_EQ(mode, vm::ExecMode::kThreaded);
  EXPECT_TRUE(vm::ParseExecMode("compiled", &mode));
  EXPECT_EQ(mode, vm::ExecMode::kCompiled);
  EXPECT_FALSE(vm::ParseExecMode("jit", &mode));
  EXPECT_STREQ(vm::ExecModeName(vm::ExecMode::kInterp), "interp");
  EXPECT_STREQ(vm::ExecModeName(vm::ExecMode::kThreaded), "threaded");
  EXPECT_STREQ(vm::ExecModeName(vm::ExecMode::kCompiled), "compiled");
}

// kCompiled silently degrades to kThreaded when no artifact can be built;
// effective_mode() reports the tier that actually executes.
TEST(ExecModes, EffectiveModeReflectsAvailability) {
  auto comp = Compile("void Up() { int x; x = 1; }");
  ASSERT_NE(comp, nullptr);
  vm::IrExecutor executor(comp->FindModule("Up"));
  EXPECT_EQ(executor.effective_mode(), vm::ExecMode::kInterp);
  executor.set_exec_mode(vm::ExecMode::kCompiled);
  if (vm::CompiledTierAvailable()) {
    EXPECT_EQ(executor.effective_mode(), vm::ExecMode::kCompiled);
  } else {
    EXPECT_EQ(executor.effective_mode(), vm::ExecMode::kThreaded);
  }
}

// The flattener must keep the pc mapping 1:1 and actually fuse something on
// a program with const+binop and binop+branch patterns.
TEST(ExecModes, FlatProgramStructure) {
  auto comp = Compile(kArithBody);
  ASSERT_NE(comp, nullptr);
  const ir::Module* module = comp->FindModule("Up");
  auto flat = vm::FlatProgram::Build(*module);
  ASSERT_EQ(static_cast<int>(flat->insts.size()), module->CountInsts());
  for (size_t f = 0; f < flat->insts.size(); ++f) {
    const int block = flat->flat_block[f];
    const int index = flat->flat_index[f];
    EXPECT_EQ(flat->block_base[block] + index, static_cast<int>(f));
    EXPECT_EQ(flat->insts[f].inst, &module->blocks[block].insts[index]);
  }
  EXPECT_GT(flat->fused_pairs, 0);
}

// The emitted C is deterministic (it is the artifact cache key).
TEST(ExecModes, EmittedSourceDeterministic) {
  auto comp = Compile(kArithBody);
  ASSERT_NE(comp, nullptr);
  const ir::Module* module = comp->FindModule("Up");
  std::string a = vm::CompiledModule::EmitC(*module, "efeu_step");
  std::string b = vm::CompiledModule::EmitC(*module, "efeu_step");
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("efeu_step"), std::string::npos);
}

}  // namespace
}  // namespace efeu
