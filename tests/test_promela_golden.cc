// Golden-file tests for the Promela backend: two small ESI/ESM systems whose
// complete generated models are pinned byte-for-byte against committed
// goldens, so formatting or lowering changes in the backend are a conscious
// decision. Refresh with `efeu_tests --update-goldens` after reviewing the
// diff.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/codegen/promela/promela_backend.h"
#include "src/ir/compile.h"

namespace efeu {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(EFEU_GOLDEN_DIR) + "/" + name;
}

void CompareOrUpdate(const std::string& name, const std::string& generated) {
  const std::string path = GoldenPath(name);
  if (std::getenv("EFEU_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << generated;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run `efeu_tests --update-goldens` to create it";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(generated, golden.str())
      << "Promela output for " << name << " changed; if intended, refresh with "
      << "`efeu_tests --update-goldens` and commit the diff";
}

std::string GeneratePromelaFor(const char* esi, const char* esm) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = true;
  auto comp = ir::Compile(esi, esm, diag, options);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  if (comp == nullptr) {
    return {};
  }
  return codegen::GeneratePromela(*comp).Combined();
}

// A minimal request/response pair: rendezvous channels in both directions,
// a loop with an assertion on the controller side, an end-labeled server
// loop on the responder side.
TEST(PromelaGolden, PingPongModelMatchesGolden) {
  const char* esi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";
  const char* esm = R"esm(
void Up() {
  DownToUp r;
  int i;
  i = 0;
  while (i < 3) {
    r = UpTalkDown(i);
    assert(r.r == i + i);
    i = i + 1;
  }
}

void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v + q.v);
  goto end_reply;
}
)esm";
  CompareOrUpdate("promela_ping_pong.pml", GeneratePromelaFor(esi, esm));
}

// Nondeterministic choice plus an else-less if: covers the `else -> skip`
// completion and the nondet lowering the backend documents.
TEST(PromelaGolden, NondetBranchModelMatchesGolden) {
  const char* esi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";
  const char* esm = R"esm(
void Up() {
  DownToUp r;
  int b;
  int acc;
  acc = 0;
  b = nondet(3);
  if (b == 1) {
    acc = acc + 1;
  }
  if (b == 2) {
    acc = acc + 2;
  } else {
    acc = acc + 10;
  }
  r = UpTalkDown(acc);
  assert(r.r >= 10 || r.r == 1);
}

void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v);
  goto end_reply;
}
)esm";
  CompareOrUpdate("promela_nondet_branch.pml", GeneratePromelaFor(esi, esm));
}

}  // namespace
}  // namespace efeu
