// Fault-injection harness tests: the deterministic FaultPlan itself, the
// faithful 24AA512 behaviours it perturbs (page-buffer commit-on-STOP, the
// write-cycle busy window), and the drivers' retry/timeout/backoff recovery
// on top — including the acceptance demo (read-after-write completing under
// a seeded schedule of several distinct fault kinds) and the zero-fault
// byte-identical guarantee.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/driver/baselines.h"
#include "src/driver/hybrid.h"
#include "src/driver/resources.h"
#include "src/i2c/codes.h"
#include "src/rtl/system.h"
#include "src/sim/eeprom.h"
#include "src/sim/fault_plan.h"
#include "src/sim/i2c_bus.h"

namespace efeu::driver {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, InactiveByDefault) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.Consult(sim::FaultKind::kNackOnAddress), 0);
  EXPECT_EQ(plan.faults_injected(), 0u);
}

TEST(FaultPlan, ScriptedFiresAtExactOpportunity) {
  sim::FaultPlan plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kNackOnAddress, 2, 1},
      {sim::FaultKind::kDeviceBusy, 0, 3},
  });
  ASSERT_TRUE(plan.active());
  // Opportunities 0 and 1 pass, 2 fires, 3 passes again.
  EXPECT_EQ(plan.Consult(sim::FaultKind::kNackOnAddress), 0);
  EXPECT_EQ(plan.Consult(sim::FaultKind::kNackOnAddress), 0);
  EXPECT_EQ(plan.Consult(sim::FaultKind::kNackOnAddress), 1);
  EXPECT_EQ(plan.Consult(sim::FaultKind::kNackOnAddress), 0);
  // Independent per-kind counter; the duration comes through.
  EXPECT_EQ(plan.Consult(sim::FaultKind::kDeviceBusy), 3);
  ASSERT_EQ(plan.trace().size(), 2u);
  EXPECT_EQ(plan.trace()[0].kind, sim::FaultKind::kNackOnAddress);
  EXPECT_EQ(plan.trace()[0].opportunity, 2u);
  EXPECT_EQ(plan.trace()[1].kind, sim::FaultKind::kDeviceBusy);
  EXPECT_EQ(plan.DistinctKindsInjected(), 2);
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  auto drive = [](sim::FaultPlan& plan) {
    for (int i = 0; i < 400; ++i) {
      plan.Consult(sim::FaultKind::kNackOnAddress);
      plan.Consult(sim::FaultKind::kNackOnData);
      plan.Consult(sim::FaultKind::kAckGlitch);
    }
  };
  sim::FaultPlan a = sim::FaultPlan::Random(1234, 0.05);
  sim::FaultPlan b = sim::FaultPlan::Random(1234, 0.05);
  sim::FaultPlan c = sim::FaultPlan::Random(99, 0.05);
  drive(a);
  drive(b);
  drive(c);
  EXPECT_GT(a.faults_injected(), 0u);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].kind, b.trace()[i].kind);
    EXPECT_EQ(a.trace()[i].opportunity, b.trace()[i].opportunity);
    EXPECT_EQ(a.trace()[i].duration, b.trace()[i].duration);
  }
  // A different seed gives a different schedule (with overwhelming
  // probability for 1200 draws at rate 0.05).
  bool differs = a.trace().size() != c.trace().size();
  for (size_t i = 0; !differs && i < a.trace().size(); ++i) {
    differs = a.trace()[i].opportunity != c.trace()[i].opportunity ||
              a.trace()[i].kind != c.trace()[i].kind;
  }
  EXPECT_TRUE(differs);

  // Reset rewinds the stream completely.
  std::vector<sim::FaultRecord> before = a.trace();
  a.Reset();
  EXPECT_EQ(a.faults_injected(), 0u);
  drive(a);
  ASSERT_EQ(a.trace().size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(a.trace()[i].opportunity, before[i].opportunity);
  }
}

TEST(FaultPlan, RandomHonorsMaxFaults) {
  sim::FaultPlan plan = sim::FaultPlan::Random(7, 0.5, /*max_faults=*/3);
  for (int i = 0; i < 200; ++i) {
    plan.Consult(sim::FaultKind::kNackOnData);
  }
  EXPECT_EQ(plan.faults_injected(), 3u);
}

TEST(FaultPlan, ReplayedReproducesRandomTrace) {
  sim::FaultPlan random = sim::FaultPlan::Random(42, 0.1);
  for (int i = 0; i < 100; ++i) {
    random.Consult(sim::FaultKind::kNackOnAddress);
    random.Consult(sim::FaultKind::kAckGlitch);
  }
  ASSERT_GT(random.faults_injected(), 0u);
  sim::FaultPlan replay = random.Replayed();
  for (int i = 0; i < 100; ++i) {
    replay.Consult(sim::FaultKind::kNackOnAddress);
    replay.Consult(sim::FaultKind::kAckGlitch);
  }
  ASSERT_EQ(replay.trace().size(), random.trace().size());
  for (size_t i = 0; i < random.trace().size(); ++i) {
    EXPECT_EQ(replay.trace()[i].kind, random.trace()[i].kind);
    EXPECT_EQ(replay.trace()[i].opportunity, random.trace()[i].opportunity);
    EXPECT_EQ(replay.trace()[i].duration, random.trace()[i].duration);
  }
}

// Random plans skip the MMIO/interrupt boundary kinds unless opted in, so a
// wire-fault seed produces the same schedule whether or not the driver
// coupling's extra consult sites exist.
TEST(FaultPlan, RandomSkipsBoundaryKindsByDefault) {
  sim::FaultPlan plan = sim::FaultPlan::Random(11, 1.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(plan.Consult(sim::FaultKind::kDroppedInterrupt), 0);
    EXPECT_EQ(plan.Consult(sim::FaultKind::kStalledUpMessage), 0);
    EXPECT_EQ(plan.Consult(sim::FaultKind::kLostDoorbell), 0);
  }
  EXPECT_EQ(plan.faults_injected(), 0u);

  sim::FaultPlan opted = sim::FaultPlan::Random(11, 1.0);
  opted.set_boundary_faults(true);
  EXPECT_GT(opted.Consult(sim::FaultKind::kDroppedInterrupt), 0);
  EXPECT_EQ(opted.faults_injected(), 1u);

  // Scripted plans fire boundary kinds regardless of the flag.
  sim::FaultPlan scripted =
      sim::FaultPlan::Scripted({{sim::FaultKind::kLostDoorbell, 0, 1}});
  EXPECT_EQ(scripted.Consult(sim::FaultKind::kLostDoorbell), 1);
}

TEST(FaultPlan, DisabledBoundaryConsultsLeaveWireStreamUnchanged) {
  // The same seed must yield the same wire-fault trace whether or not
  // (disabled) boundary consults are interleaved: the RNG stream may only
  // advance on opportunities that can fire.
  auto wire_trace = [](bool interleave_boundary) {
    sim::FaultPlan plan = sim::FaultPlan::Random(77, 0.1);
    for (int i = 0; i < 200; ++i) {
      if (interleave_boundary) {
        plan.Consult(sim::FaultKind::kCorruptedMmioRead);
        plan.Consult(sim::FaultKind::kSpuriousInterrupt);
      }
      plan.Consult(sim::FaultKind::kNackOnAddress);
      plan.Consult(sim::FaultKind::kAckGlitch);
    }
    return plan.trace();
  };
  std::vector<sim::FaultRecord> plain = wire_trace(false);
  std::vector<sim::FaultRecord> interleaved = wire_trace(true);
  ASSERT_GT(plain.size(), 0u);
  ASSERT_EQ(plain.size(), interleaved.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].kind, interleaved[i].kind);
    EXPECT_EQ(plain[i].opportunity, interleaved[i].opportunity);
    EXPECT_EQ(plain[i].duration, interleaved[i].duration);
  }
}

// The replay surface embedded in assertion messages: Describe() is the
// human-readable schedule, ReplayCommand() a pasteable line of C++. Pinned
// here so a CI log's replay snippet always compiles.
TEST(FaultPlan, DescribeAndReplayCommandAreStable) {
  sim::FaultPlan plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kDroppedInterrupt, 2, 1},
      {sim::FaultKind::kCorruptedMmioRead, 0, 3},
  });
  plan.Consult(sim::FaultKind::kDroppedInterrupt);
  plan.Consult(sim::FaultKind::kDroppedInterrupt);
  plan.Consult(sim::FaultKind::kDroppedInterrupt);  // opportunity 2: fires
  plan.Consult(sim::FaultKind::kCorruptedMmioRead);  // opportunity 0: fires
  EXPECT_EQ(plan.Describe(),
            "scripted(2 events) trace=[dropped-interrupt@2x1 corrupted-mmio-read@0x3]");
  EXPECT_EQ(plan.ReplayCommand(),
            "FaultPlan::Scripted({{FaultKind::kDroppedInterrupt, 2, 1}, "
            "{FaultKind::kCorruptedMmioRead, 0, 3}})");

  sim::FaultPlan random = sim::FaultPlan::Random(0x2a, 0.02, /*max_faults=*/4);
  EXPECT_EQ(random.Describe(), "random(seed=0x2a, rate=0.02, max=4) trace=[]");
}

// ---------------------------------------------------------------------------
// EEPROM page-buffer and write-cycle faithfulness (bit-banged directly)
// ---------------------------------------------------------------------------

// Minimal bus rig: one GPIO-style driver plus the EEPROM on an RTL timeline.
class EepromRig {
 public:
  explicit EepromRig(const sim::EepromConfig& config) : rtl_(10.0) {
    id_ = bus_.AddDriver();
    eeprom_ = std::make_unique<sim::Eeprom24aa512>(&bus_, config);
    rtl_.AddComponent(eeprom_.get());
    Set(true, true);
    Step(4);
  }

  sim::Eeprom24aa512& eeprom() { return *eeprom_; }

  void Start() {
    Set(true, true);
    Step(2);
    Set(true, false);
    Step(2);
    Set(false, false);
    Step(2);
  }

  void Stop() {
    Set(false, false);
    Step(2);
    Set(true, false);
    Step(2);
    Set(true, true);
    Step(2);
  }

  // Clocks out one byte MSB-first and samples the acknowledgment.
  bool SendByte(uint8_t byte) {
    for (int bit = 7; bit >= 0; --bit) {
      bool sda = ((byte >> bit) & 1) != 0;
      Set(false, sda);
      Step(2);
      Set(true, sda);
      Step(2);
      Set(false, sda);
      Step(2);
    }
    Set(false, true);  // release SDA for the device's ACK
    Step(2);
    Set(true, true);
    Step(2);
    bool ack = !bus_.sda();
    Set(false, true);
    Step(2);
    return ack;
  }

 private:
  void Set(bool scl, bool sda) { bus_.SetDriver(id_, scl, sda); }
  void Step(int n) {
    for (int i = 0; i < n; ++i) {
      rtl_.Tick();
    }
  }

  sim::I2cBus bus_;
  rtl::RtlSystem rtl_;
  std::unique_ptr<sim::Eeprom24aa512> eeprom_;
  int id_ = -1;
};

TEST(EepromModel, StopCommitsPageBufferAndArmsWriteCycle) {
  sim::EepromConfig config;
  config.write_cycle_ns = 100000;
  EepromRig rig(config);
  rig.Start();
  ASSERT_TRUE(rig.SendByte(0x50 << 1));  // address, write
  ASSERT_TRUE(rig.SendByte(0x01));       // offset high
  ASSERT_TRUE(rig.SendByte(0x10));       // offset low
  ASSERT_TRUE(rig.SendByte(0xAB));
  // Nothing lands in memory before the STOP, and no write cycle runs.
  EXPECT_EQ(rig.eeprom().MemoryAt(0x0110), 0x00);
  EXPECT_FALSE(rig.eeprom().busy());
  EXPECT_EQ(rig.eeprom().bytes_written(), 0u);
  rig.Stop();
  EXPECT_EQ(rig.eeprom().MemoryAt(0x0110), 0xAB);
  EXPECT_TRUE(rig.eeprom().busy());
  EXPECT_EQ(rig.eeprom().bytes_written(), 1u);
}

// The regression this harness was built to catch: a write transfer whose
// STOP never arrives (e.g. glitched away) must not silently land in memory —
// previously each byte was committed immediately on receipt, so a torn
// transfer both corrupted memory and skipped the busy window.
TEST(EepromModel, MissedStopDiscardsPageBuffer) {
  sim::EepromConfig config;
  config.write_cycle_ns = 100000;
  EepromRig rig(config);
  rig.Start();
  ASSERT_TRUE(rig.SendByte(0x50 << 1));
  ASSERT_TRUE(rig.SendByte(0x01));
  ASSERT_TRUE(rig.SendByte(0x10));
  ASSERT_TRUE(rig.SendByte(0xAB));
  // A new START instead of the STOP aborts the transfer.
  rig.Start();
  rig.Stop();
  EXPECT_EQ(rig.eeprom().MemoryAt(0x0110), 0x00);
  EXPECT_FALSE(rig.eeprom().busy());
  EXPECT_EQ(rig.eeprom().bytes_written(), 0u);
}

// ---------------------------------------------------------------------------
// Driver recovery (satellite: write-during-write-cycle NACKs; tentpole:
// retry/backoff completes operations under faults)
// ---------------------------------------------------------------------------

HybridConfig BaseConfig() {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  // Keep the model's write cycle short so tests stay fast.
  config.eeprom.write_cycle_ns = 50000;
  return config;
}

TEST(DriverRecovery, WriteDuringWriteCycleNacksWithoutRecovery) {
  HybridDriver driver(BaseConfig());
  ASSERT_TRUE(driver.Write(0x20, {0x01, 0x02}));
  // The device is in its internal write cycle; the next write must be
  // refused (address NACK), not silently succeed.
  EXPECT_FALSE(driver.Write(0x20, {0x03, 0x04}));
  EXPECT_EQ(driver.last_status(), i2c::kCeResNack);
  EXPECT_EQ(driver.eeprom().MemoryAt(0x20), 0x01);
}

TEST(DriverRecovery, BackoffRidesOutWriteCycle) {
  HybridConfig config = BaseConfig();
  config.recovery.enabled = true;
  HybridDriver driver(config);
  ASSERT_TRUE(driver.Write(0x20, {0x01, 0x02}));
  // With the retry/backoff policy the second write rides out the 50 us write
  // cycle by sleeping between attempts and then succeeds.
  ASSERT_TRUE(driver.Write(0x20, {0x03, 0x04}));
  EXPECT_EQ(driver.eeprom().MemoryAt(0x20), 0x03);
  EXPECT_EQ(driver.eeprom().MemoryAt(0x21), 0x04);
  const RecoveryCounters& counters = driver.recovery_counters();
  EXPECT_GT(counters.retries, 0u);
  EXPECT_GT(counters.nacks, 0u);
  EXPECT_GT(counters.backoff_ns, 0.0);
  EXPECT_EQ(counters.timeouts, 0u);
  EXPECT_FALSE(driver.wedged());
}

// The acceptance demo: a read-after-write completes under a seeded schedule
// with several distinct fault kinds, with the counters showing the work.
TEST(DriverRecovery, ReadAfterWriteUnderSeededFaultSchedule) {
  HybridConfig config = BaseConfig();
  config.recovery.enabled = true;
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kSclStuckLow, 0, 2},   // stretch burst at the very start
      {sim::FaultKind::kNackOnAddress, 0, 1}, // first address byte refused
      {sim::FaultKind::kAckGlitch, 0, 1},     // next address ACK misread
      {sim::FaultKind::kNackOnData, 0, 1},    // then the first data byte refused
  });
  HybridDriver driver(config);
  std::vector<uint8_t> payload = {0x5A, 0x5B, 0x5C};
  ASSERT_TRUE(driver.Write(0x0140, payload))
      << FormatRecoveryCounters(driver.recovery_counters()) << "\n"
      << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  std::vector<uint8_t> data;
  ASSERT_TRUE(driver.Read(0x0140, 3, &data))
      << FormatRecoveryCounters(driver.recovery_counters()) << "\n"
      << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  EXPECT_EQ(data, payload);

  const RecoveryCounters& counters = driver.recovery_counters();
  EXPECT_GE(counters.retries, 3u) << FormatRecoveryCounters(counters);
  EXPECT_GE(counters.nacks, 3u);
  EXPECT_GE(driver.fault_plan().DistinctKindsInjected(), 3);
  EXPECT_GE(driver.fault_plan().faults_injected(), 3u);
  EXPECT_FALSE(driver.wedged());
}

// Zero faults => byte-identical behaviour: enabling the recovery machinery
// without any fault plan must not change a single bus sample.
TEST(DriverRecovery, ZeroFaultsIsByteIdentical) {
  HybridConfig plain = BaseConfig();
  plain.capture_waveform = true;
  // No write cycle: every operation succeeds first try, so the armed driver's
  // internal retry loop never engages and the two timelines must coincide.
  // (With a write cycle the plain run retries the NACK from the app loop while
  // the armed run retries internally with backoff — different by design.)
  plain.eeprom.write_cycle_ns = 0;
  HybridConfig armed = plain;
  armed.recovery.enabled = true;
  armed.fault_plan = sim::FaultPlan::Scripted({});  // active but empty

  HybridDriver a(plain);
  HybridDriver b(armed);
  std::vector<uint8_t> payload = {0x10, 0x22, 0x34, 0x46};
  for (HybridDriver* driver : {&a, &b}) {
    ASSERT_TRUE(driver->Write(0x0300, payload));
    std::vector<uint8_t> data;
    ASSERT_TRUE(driver->Read(0x0300, 4, &data));
    EXPECT_EQ(data, payload);
  }
  const auto& sa = a.bus().samples();
  const auto& sb = b.bus().samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].t_ns, sb[i].t_ns) << "sample " << i;
    ASSERT_EQ(sa[i].scl, sb[i].scl) << "sample " << i;
    ASSERT_EQ(sa[i].sda, sb[i].sda) << "sample " << i;
  }
  EXPECT_EQ(b.fault_plan().faults_injected(), 0u);
  EXPECT_EQ(b.recovery_counters().retries, 0u);
}

// A bus held down forever is a terminal error: the per-wait deadline fires,
// the one-off bus recovery is attempted, and the driver reports failure
// instead of hanging — then fails fast on every further operation.
TEST(DriverRecovery, StuckBusIsTerminalNotHang) {
  HybridConfig config = BaseConfig();
  config.recovery.enabled = true;
  config.recovery.wait_timeout_ns = 2e6;
  config.recovery.op_deadline_ns = 1e7;
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kSclStuckLow, 4, 1 << 30},
  });
  HybridDriver driver(config);
  EXPECT_FALSE(driver.Write(0x10, {0x01})) << driver.fault_plan().Describe();
  EXPECT_TRUE(driver.wedged()) << driver.fault_plan().Describe();
  EXPECT_EQ(driver.last_status(), i2c::kCeResFail);
  const RecoveryCounters& counters = driver.recovery_counters();
  EXPECT_EQ(counters.timeouts, 1u);
  EXPECT_GE(counters.bus_recoveries, 1u);
  // Fail-fast: no further attempts are issued into the dead stack.
  uint64_t attempts = counters.attempts;
  EXPECT_FALSE(driver.Write(0x10, {0x02}));
  EXPECT_EQ(driver.recovery_counters().attempts, attempts);
}

TEST(DriverRecovery, BitBangRecoversFromFaults) {
  TimingModel timing;
  sim::EepromConfig eeprom;
  eeprom.write_cycle_ns = 50000;
  sim::FaultPlan plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kNackOnAddress, 0, 1},
      {sim::FaultKind::kNackOnData, 0, 1},
  });
  RecoveryPolicy recovery;
  recovery.enabled = true;
  BitBangDriver driver(timing, eeprom, /*capture_waveform=*/false, plan, recovery);
  std::vector<uint8_t> payload = {0x77, 0x78};
  ASSERT_TRUE(driver.Write(0x60, payload))
      << FormatRecoveryCounters(driver.recovery_counters())
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  ASSERT_TRUE(driver.Write(0x62, payload))  // rides out the write cycle too
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  EXPECT_EQ(driver.eeprom().MemoryAt(0x60), 0x77);
  EXPECT_EQ(driver.eeprom().MemoryAt(0x62), 0x77);
  EXPECT_GE(driver.recovery_counters().retries, 2u);
  EXPECT_GE(driver.fault_plan().DistinctKindsInjected(), 2);
}

// A random run is replayable bit-for-bit from its recorded trace.
TEST(DriverRecovery, ReplayedPlanReproducesRandomRun) {
  auto run = [](const sim::FaultPlan& plan, sim::FaultPlan* trace_out,
                std::vector<int32_t>* statuses) {
    HybridConfig config = BaseConfig();
    config.recovery.enabled = true;
    config.fault_plan = plan;
    HybridDriver driver(config);
    statuses->push_back(driver.Write(0x80, {0x01, 0x02}) ? 1 : 0);
    statuses->push_back(driver.last_status());
    std::vector<uint8_t> data;
    statuses->push_back(driver.Read(0x80, 2, &data) ? 1 : 0);
    statuses->push_back(driver.last_status());
    *trace_out = driver.fault_plan();
  };
  sim::FaultPlan first_trace;
  std::vector<int32_t> first_statuses;
  run(sim::FaultPlan::Random(2024, 0.01, /*max_faults=*/4), &first_trace, &first_statuses);

  sim::FaultPlan replay_trace;
  std::vector<int32_t> replay_statuses;
  run(first_trace.Replayed(), &replay_trace, &replay_statuses);

  EXPECT_EQ(replay_statuses, first_statuses);
  ASSERT_EQ(replay_trace.trace().size(), first_trace.trace().size());
  for (size_t i = 0; i < first_trace.trace().size(); ++i) {
    EXPECT_EQ(replay_trace.trace()[i].kind, first_trace.trace()[i].kind);
    EXPECT_EQ(replay_trace.trace()[i].opportunity, first_trace.trace()[i].opportunity);
    EXPECT_EQ(replay_trace.trace()[i].duration, first_trace.trace()[i].duration);
  }
}

TEST(Resources, RecoveryWatchdogEstimateIsSmall) {
  ResourceEstimate watchdog = EstimateRecoveryWatchdog(/*up_words=*/18);
  EXPECT_GT(watchdog.luts, 0);
  EXPECT_GT(watchdog.ffs, 0);
  // The robustness add-on must stay a rounding error next to the FPGA.
  EXPECT_LT(watchdog.luts * 100, kFpgaTotalLuts);
  EXPECT_LT(watchdog.ffs * 100, kFpgaTotalFfs);
}

}  // namespace
}  // namespace efeu::driver
