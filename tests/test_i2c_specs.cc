// Tests for the I2C specification module: the C++ enum-code mirrors match
// the compiled ESI, compilation variants work, and the native verifier
// processes (Electrical combiner, Transaction behaviour spec) behave.

#include <gtest/gtest.h>

#include "src/i2c/codes.h"
#include "src/i2c/electrical.h"
#include "src/i2c/specs/specs.h"
#include "src/i2c/stack.h"
#include "src/i2c/transaction_spec.h"
#include "src/support/text.h"

namespace efeu::i2c {
namespace {

TEST(I2cCodes, MirrorsCompiledEnumOrdinals) {
  DiagnosticEngine diag;
  auto comp = CompileControllerStack(diag);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  const esi::SystemInfo& info = comp->system();
  struct Expect {
    const char* member;
    int32_t value;
  };
  Expect expectations[] = {
      {"CE_ACT_WRITE", kCeActWrite},   {"CE_ACT_READ", kCeActRead},
      {"CE_ACT_IDLE", kCeActIdle},     {"CE_RES_OK", kCeResOk},
      {"CE_RES_NACK", kCeResNack},     {"CT_ACT_WRITE", kCtActWrite},
      {"CT_ACT_READ", kCtActRead},     {"CT_ACT_STOP", kCtActStop},
      {"CT_ACT_IDLE", kCtActIdle},     {"CT_RES_OK", kCtResOk},
      {"CT_RES_FAIL", kCtResFail},     {"CT_RES_NACK", kCtResNack},
      {"CB_ACT_START", kCbActStart},   {"CB_ACT_STOP", kCbActStop},
      {"CB_ACT_WRITE", kCbActWrite},   {"CB_ACT_READ", kCbActRead},
      {"CB_ACT_ACK", kCbActAck},       {"CB_ACT_NACK", kCbActNack},
      {"CB_ACT_IDLE", kCbActIdle},     {"CB_RES_OK", kCbResOk},
      {"CB_RES_NACK", kCbResNack},     {"CB_RES_ARB_LOST", kCbResArbLost},
      {"CS_ACT_START", kCsActStart},   {"CS_ACT_STOP", kCsActStop},
      {"CS_ACT_BIT0", kCsActBit0},     {"CS_ACT_BIT1", kCsActBit1},
      {"CS_ACT_IDLE", kCsActIdle},     {"RS_ACT_LISTEN", kRsActListen},
      {"RS_ACT_DRIVE0", kRsActDrive0}, {"RS_ACT_STRETCH", kRsActStretch},
      {"RS_EV_START", kRsEvStart},     {"RS_EV_STOP", kRsEvStop},
      {"RS_EV_BIT0", kRsEvBit0},       {"RS_EV_BIT1", kRsEvBit1},
      {"RS_EV_STRETCHED", kRsEvStretched},
      {"RB_ACT_LISTEN", kRbActListen}, {"RB_ACT_ACK", kRbActAck},
      {"RB_ACT_NACK", kRbActNack},     {"RB_ACT_SEND", kRbActSend},
      {"RB_EV_START", kRbEvStart},     {"RB_EV_STOP", kRbEvStop},
      {"RB_EV_BYTE", kRbEvByte},       {"RB_EV_ACKED", kRbEvAcked},
      {"RB_EV_NACKED", kRbEvNacked},   {"RB_EV_DONE", kRbEvDone},
      {"RE_EV_ADDR_WRITE", kReEvAddrWrite},
      {"RE_EV_ADDR_READ", kReEvAddrRead},
      {"RE_EV_DATA", kReEvData},       {"RE_EV_READ_REQ", kReEvReadReq},
      {"RE_EV_STOP", kReEvStop},       {"RE_RES_ACK", kReResAck},
      {"RE_RES_NACK", kReResNack},
  };
  for (const Expect& expectation : expectations) {
    int value = -1;
    ASSERT_NE(info.FindEnumByMember(expectation.member, &value), nullptr)
        << expectation.member;
    EXPECT_EQ(value, expectation.value) << expectation.member;
  }
}

TEST(I2cStack, ControllerVariantsCompile) {
  for (bool no_stretch : {false, true}) {
    for (bool compat : {false, true}) {
      DiagnosticEngine diag;
      ControllerStackOptions options;
      options.no_clock_stretching = no_stretch;
      options.ks0127_compat = compat;
      EXPECT_NE(CompileControllerStack(diag, options), nullptr)
          << no_stretch << compat << "\n"
          << diag.RenderAll();
    }
  }
}

TEST(I2cStack, ResponderVariantsCompile) {
  for (bool ks : {false, true}) {
    for (int address : {0x50, 0x51, 0x52}) {
      DiagnosticEngine diag;
      ResponderStackOptions options;
      options.ks0127 = ks;
      options.address = address;
      EXPECT_NE(CompileResponderStack(diag, options), nullptr) << diag.RenderAll();
    }
  }
}

TEST(I2cStack, AllFourLayersPresent) {
  DiagnosticEngine diag;
  auto comp = CompileControllerStack(diag);
  ASSERT_NE(comp, nullptr);
  for (const char* layer : {"CSymbol", "CByte", "CTransaction", "CEepDriver"}) {
    EXPECT_NE(comp->FindModule(layer), nullptr) << layer;
  }
  auto rcomp = CompileResponderStack(diag);
  ASSERT_NE(rcomp, nullptr);
  for (const char* layer : {"RSymbol", "RByte", "RTransaction", "REep"}) {
    EXPECT_NE(rcomp->FindModule(layer), nullptr) << layer;
  }
}

TEST(I2cSpecs, AllSpecificationsNonTrivial) {
  // Every specification file has real content (guards against accidental
  // truncation of the embedded sources).
  EXPECT_GT(CountCodeLines(StandardEsi()), 100);
  EXPECT_GT(CountCodeLines(CSymbolEsm()), 30);
  EXPECT_GT(CountCodeLines(ByteIncEsm()), 100);
  EXPECT_GT(CountCodeLines(ByteKs0127IncEsm()), 60);
  EXPECT_GT(CountCodeLines(CTransactionEsm()), 50);
  EXPECT_GT(CountCodeLines(CEepDriverEsm()), 40);
  EXPECT_GT(CountCodeLines(RSymbolEsm()), 30);
  EXPECT_GT(CountCodeLines(RTransactionEsm()), 70);
  EXPECT_GT(CountCodeLines(REepEsm()), 20);
  EXPECT_GT(CountCodeLines(SymbolSpecEsm()), 40);
  EXPECT_GT(CountCodeLines(ByteSpecEsm()), 30);
  EXPECT_GT(CountCodeLines(SymbolVerifierEsm()), 50);
  EXPECT_GT(CountCodeLines(ByteVerifierEsm()), 80);
  EXPECT_GT(CountCodeLines(TransactionVerifierEsm()), 80);
  EXPECT_GT(CountCodeLines(EepVerifierEsm()), 40);
}

TEST(ElectricalProcess, CombinesWiredAnd) {
  DiagnosticEngine diag;
  auto ccomp = CompileControllerStack(diag);
  auto rcomp = CompileResponderStack(diag);
  ASSERT_NE(ccomp, nullptr);
  ASSERT_NE(rcomp, nullptr);
  ElectricalEndpoint controller;
  controller.from_symbol = ccomp->system().FindChannel("CSymbol", "Electrical");
  controller.to_symbol = ccomp->system().FindChannel("Electrical", "CSymbol");
  ElectricalEndpoint responder;
  responder.from_symbol = rcomp->system().FindChannel("RSymbol", "Electrical");
  responder.to_symbol = rcomp->system().FindChannel("Electrical", "RSymbol");
  ElectricalProcess electrical(controller, {responder});

  // Round: responder drives (1,0), controller (0,1): combined (0,0).
  ASSERT_EQ(electrical.state(), vm::RunState::kBlockedRecv);
  std::vector<int32_t> r_levels = {1, 0};
  electrical.CompleteRecv(r_levels);
  ASSERT_EQ(electrical.state(), vm::RunState::kBlockedRecv);
  EXPECT_TRUE(electrical.AtValidEndState());  // parked at the controller recv
  std::vector<int32_t> c_levels = {0, 1};
  electrical.CompleteRecv(c_levels);
  ASSERT_EQ(electrical.state(), vm::RunState::kBlockedSend);
  EXPECT_FALSE(electrical.AtValidEndState());
  std::span<const int32_t> combined = electrical.PendingMessage();
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0], 0);
  EXPECT_EQ(combined[1], 0);
  // Deliver to controller, then to the responder; the round wraps.
  electrical.CompleteSend();
  ASSERT_EQ(electrical.state(), vm::RunState::kBlockedSend);
  electrical.CompleteSend();
  EXPECT_EQ(electrical.state(), vm::RunState::kBlockedRecv);
}

TEST(ElectricalProcess, SnapshotRoundTrip) {
  DiagnosticEngine diag;
  auto ccomp = CompileControllerStack(diag);
  auto rcomp = CompileResponderStack(diag);
  ElectricalEndpoint controller{ccomp->system().FindChannel("CSymbol", "Electrical"),
                                ccomp->system().FindChannel("Electrical", "CSymbol")};
  ElectricalEndpoint responder{rcomp->system().FindChannel("RSymbol", "Electrical"),
                               rcomp->system().FindChannel("Electrical", "RSymbol")};
  ElectricalProcess electrical(controller, {responder});
  std::vector<int32_t> levels = {0, 1};
  electrical.CompleteRecv(levels);
  std::vector<int32_t> snapshot(electrical.SnapshotSize());
  electrical.Snapshot(snapshot);
  electrical.Reset();
  EXPECT_TRUE(electrical.AtValidEndState() || electrical.state() == vm::RunState::kBlockedRecv);
  electrical.Restore(snapshot);
  std::vector<int32_t> snapshot2(electrical.SnapshotSize());
  electrical.Snapshot(snapshot2);
  EXPECT_EQ(snapshot, snapshot2);
}

TEST(TransactionSpec, RoutesByAddressAndNacksUnknown) {
  DiagnosticEngine diag;
  MixOptions mix;
  mix.ceepdriver = true;
  mix.reep = true;
  mix.verifier = true;
  auto comp = CompileMix(diag, mix);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  const esi::SystemInfo& info = comp->system();

  TransactionSpecDevice device;
  device.to_eep = info.FindChannel("RTransaction", "REep");
  device.from_eep = info.FindChannel("REep", "RTransaction");
  device.address = 0x50;
  TransactionSpecProcess spec(info.FindChannel("CEepDriver", "CTransaction"),
                              info.FindChannel("CTransaction", "CEepDriver"), {device});

  // A write to an unpopulated address is NACKed without touching the device.
  std::vector<int32_t> cmd(19, 0);
  cmd[0] = kCtActWrite;
  cmd[1] = 0x31;
  cmd[2] = 1;
  ASSERT_EQ(spec.state(), vm::RunState::kBlockedRecv);
  spec.CompleteRecv(cmd);
  ASSERT_EQ(spec.state(), vm::RunState::kBlockedSend);
  std::span<const int32_t> reply = spec.PendingMessage();
  EXPECT_EQ(reply[0], kCtResNack);
  spec.CompleteSend();
  EXPECT_TRUE(spec.AtValidEndState());

  // A write to 0x50 produces ADDR_WRITE then DATA events.
  cmd[1] = 0x50;
  cmd[2] = 2;
  cmd[3] = 0xAB;
  cmd[4] = 0xCD;
  spec.CompleteRecv(cmd);
  ASSERT_EQ(spec.state(), vm::RunState::kBlockedSend);
  EXPECT_EQ(spec.PendingMessage()[0], kReEvAddrWrite);
  spec.CompleteSend();
  std::vector<int32_t> ack = {kReResAck, 0};
  spec.CompleteRecv(ack);
  ASSERT_EQ(spec.state(), vm::RunState::kBlockedSend);
  EXPECT_EQ(spec.PendingMessage()[0], kReEvData);
  EXPECT_EQ(spec.PendingMessage()[1], 0xAB);
  spec.CompleteSend();
  spec.CompleteRecv(ack);
  EXPECT_EQ(spec.PendingMessage()[1], 0xCD);
  spec.CompleteSend();
  spec.CompleteRecv(ack);
  // Reply to the controller: OK with the full length.
  ASSERT_EQ(spec.state(), vm::RunState::kBlockedSend);
  reply = spec.PendingMessage();
  EXPECT_EQ(reply[0], kCtResOk);
  EXPECT_EQ(reply[1], 2);
}

}  // namespace
}  // namespace efeu::i2c
