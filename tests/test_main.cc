// Custom test entry point: `efeu_tests --update-goldens` regenerates the
// committed golden files (see test_promela_golden.cc) instead of comparing
// against them, then runs the suite as usual.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-goldens") == 0) {
      setenv("EFEU_UPDATE_GOLDENS", "1", /*overwrite=*/1);
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
