// Higher-level driver properties: the paper's performance orderings hold in
// the co-simulation, interrupts reduce CPU usage, multiple devices on one
// bus stay isolated, and waveform capture feeds the measurement pipeline.

#include <gtest/gtest.h>

#include "src/driver/baselines.h"
#include "src/driver/hybrid.h"

namespace efeu::driver {
namespace {

DriverMetrics Measure(SplitPoint split, bool interrupt_driven, int ops = 2) {
  HybridConfig config;
  config.split = split;
  config.interrupt_driven = interrupt_driven;
  config.capture_waveform = true;
  HybridDriver driver(config);
  return driver.MeasureReads(ops, 14);
}

TEST(DriverMetrics, BusSpeedRisesMonotonicallyWithSplitPoint) {
  // Paper Figure 10 (top), polling drivers.
  double previous = 0;
  for (SplitPoint split : {SplitPoint::kElectrical, SplitPoint::kSymbol, SplitPoint::kByte,
                           SplitPoint::kTransaction, SplitPoint::kEepDriver}) {
    DriverMetrics metrics = Measure(split, /*interrupt_driven=*/false);
    ASSERT_TRUE(metrics.functional) << SplitPointName(split);
    EXPECT_GT(metrics.frequency.mean_khz, previous) << SplitPointName(split);
    previous = metrics.frequency.mean_khz;
  }
  // The top of the ladder approaches the 400 kHz Fast Mode target.
  EXPECT_GT(previous, 390.0);
}

TEST(DriverMetrics, PollingPinsOneCore) {
  for (SplitPoint split : {SplitPoint::kElectrical, SplitPoint::kByte, SplitPoint::kEepDriver}) {
    DriverMetrics metrics = Measure(split, /*interrupt_driven=*/false);
    EXPECT_NEAR(metrics.cpu_usage, 1.0, 0.01) << SplitPointName(split);
  }
}

TEST(DriverMetrics, InterruptCpuFallsMonotonically) {
  // Paper Figure 10 (bottom): Symbol > Byte > Transaction > EepDriver.
  double previous = 2.0;
  for (SplitPoint split : {SplitPoint::kSymbol, SplitPoint::kByte, SplitPoint::kTransaction,
                           SplitPoint::kEepDriver}) {
    DriverMetrics metrics = Measure(split, /*interrupt_driven=*/true);
    ASSERT_TRUE(metrics.functional) << SplitPointName(split);
    EXPECT_LT(metrics.cpu_usage, previous) << SplitPointName(split);
    previous = metrics.cpu_usage;
  }
  EXPECT_LT(previous, 0.06);  // EepDriver: a few percent, below the Xilinx IP
}

TEST(DriverMetrics, ByteSplitHasTheLargestSpread) {
  // The distinctive Figure 10 feature: the Byte split's boundary crossing
  // lands between the bytes of a transfer, producing a large standard
  // deviation relative to its neighbors.
  DriverMetrics symbol = Measure(SplitPoint::kSymbol, false);
  DriverMetrics byte = Measure(SplitPoint::kByte, false);
  DriverMetrics eep = Measure(SplitPoint::kEepDriver, false);
  EXPECT_GT(byte.frequency.stddev_khz, symbol.frequency.stddev_khz);
  EXPECT_GT(byte.frequency.stddev_khz, eep.frequency.stddev_khz);
}

TEST(DriverMetrics, InterruptElectricalDoesNotFunction) {
  DriverMetrics metrics = Measure(SplitPoint::kElectrical, /*interrupt_driven=*/true, 1);
  EXPECT_FALSE(metrics.functional);
  EXPECT_NE(metrics.note.find("interrupt"), std::string::npos);
}

TEST(DriverMetrics, InterruptModeCountsInterrupts) {
  DriverMetrics metrics = Measure(SplitPoint::kTransaction, /*interrupt_driven=*/true, 2);
  // Three transaction-level round trips per EEPROM read (offset write, data
  // read, stop): one interrupt each.
  EXPECT_EQ(metrics.irq_count, 6u);
}

TEST(DriverMetrics, BaselinesBracketTheGeneratedDrivers) {
  TimingModel timing;
  sim::EepromConfig eeprom;
  BitBangDriver bitbang(timing, eeprom, true);
  XilinxIpDriver xilinx(timing, eeprom, true);
  DriverMetrics bb = bitbang.MeasureReads(2, 14);
  DriverMetrics xi = xilinx.MeasureReads(2, 14);
  DriverMetrics electrical = Measure(SplitPoint::kElectrical, false);
  DriverMetrics eep = Measure(SplitPoint::kEepDriver, false);
  ASSERT_TRUE(bb.functional);
  ASSERT_TRUE(xi.functional);
  // Bit-banging and the Electrical split are comparable and far below target.
  EXPECT_LT(bb.frequency.mean_khz, 220.0);
  EXPECT_NEAR(electrical.frequency.mean_khz, bb.frequency.mean_khz,
              0.25 * bb.frequency.mean_khz);
  // The all-hardware driver matches (or slightly exceeds) the Xilinx IP.
  EXPECT_GT(eep.frequency.mean_khz, xi.frequency.mean_khz - 5.0);
  // The IP's interrupt-driven CPU usage sits near the paper's 12%.
  EXPECT_NEAR(xi.cpu_usage, 0.12, 0.05);
}

TEST(MultiDevice, TwoEepromsAreIsolated) {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  config.interrupt_driven = true;
  config.eeprom.address = 0x50;
  config.eeprom.write_cycle_ns = 20000;
  sim::EepromConfig second;
  second.address = 0x51;
  second.write_cycle_ns = 20000;
  config.extra_eeproms.push_back(second);
  HybridDriver driver(config);

  ASSERT_TRUE(driver.WriteTo(0x50, 0x10, {0xAA}));
  ASSERT_TRUE(driver.WriteTo(0x51, 0x10, {0xBB}));
  EXPECT_EQ(driver.eeprom().MemoryAt(0x10), 0xAA);
  EXPECT_EQ(driver.extra_eeprom(0).MemoryAt(0x10), 0xBB);
  // Wait out both write cycles via retries, then read both back.
  std::vector<uint8_t> data;
  int attempts = 0;
  while (!driver.ReadFrom(0x50, 0x10, 1, &data) && attempts++ < 500) {
  }
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], 0xAA);
  attempts = 0;
  while (!driver.ReadFrom(0x51, 0x10, 1, &data) && attempts++ < 500) {
  }
  EXPECT_EQ(data[0], 0xBB);
}

TEST(MultiDevice, UnpopulatedAddressNacks) {
  HybridConfig config;
  config.split = SplitPoint::kTransaction;
  HybridDriver driver(config);
  std::vector<uint8_t> data;
  EXPECT_FALSE(driver.ReadFrom(0x31, 0, 1, &data));
  // The bus remains usable afterwards.
  driver.eeprom().Preload(0, 0x77);
  ASSERT_TRUE(driver.ReadFrom(0x50, 0, 1, &data));
  EXPECT_EQ(data[0], 0x77);
}

TEST(DriverAblation, FixedHoldAdapterLowersTheCeiling) {
  HybridConfig config;
  config.split = SplitPoint::kEepDriver;
  config.capture_waveform = true;
  HybridDriver fast(config);
  config.ablate_fixed_hold_adapter = true;
  HybridDriver slow(config);
  DriverMetrics fast_metrics = fast.MeasureReads(2, 14);
  DriverMetrics slow_metrics = slow.MeasureReads(2, 14);
  EXPECT_GT(fast_metrics.frequency.mean_khz, slow_metrics.frequency.mean_khz + 30.0);
}

TEST(DriverAblation, NoAutoResetBreaksTheDriver) {
  HybridConfig config;
  config.split = SplitPoint::kSymbol;
  config.ablate_no_auto_reset = true;
  HybridDriver driver(config);
  driver.eeprom().Preload(0, 0x5A);
  std::vector<uint8_t> data;
  EXPECT_FALSE(driver.Read(0, 1, &data) && data.size() == 1 && data[0] == 0x5A);
}

}  // namespace

// ---------------------------------------------------------------------------
// Boundary batching, interrupt coalescing, and execution tiers
// ---------------------------------------------------------------------------

// MMIO bursts change the modeled cost of boundary crossings, never the data:
// reads return identical bytes and the bus keeps its protocol timing, while
// every multi-word crossing is counted as a burst.
TEST(DriverBatching, MmioBurstsPreserveDataAndCount) {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  // Keep the model's write cycle short so the ack-poll below stays bounded.
  config.eeprom.write_cycle_ns = 50000;
  HybridConfig burst_config = config;
  burst_config.mmio_bursts = true;

  HybridDriver plain(config);
  HybridDriver burst(burst_config);
  std::vector<uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  ASSERT_TRUE(plain.Write(32, payload));
  ASSERT_TRUE(burst.Write(32, payload));
  // Ack-poll the device through its internal write cycle.
  std::vector<uint8_t> a;
  std::vector<uint8_t> b;
  int attempts = 0;
  while (!plain.Read(32, 5, &a) && attempts < 100) {
    ++attempts;
  }
  ASSERT_LT(attempts, 100);
  attempts = 0;
  while (!burst.Read(32, 5, &b) && attempts < 100) {
    ++attempts;
  }
  ASSERT_LT(attempts, 100);
  EXPECT_EQ(a, payload);
  EXPECT_EQ(b, payload);
  EXPECT_EQ(plain.mmio_bursts(), 0u);
  EXPECT_GT(burst.mmio_bursts(), 0u);
}

// Bursting the boundary reduces the software's share of each crossing, so
// the measured bus frequency can only improve at software-paced splits.
TEST(DriverBatching, MmioBurstsDoNotSlowTheBus) {
  // kTransaction crosses 19/18-word messages, kByte 2/2-word ones; kSymbol's
  // single-word boundary has nothing to burst, so its counter must stay zero.
  for (SplitPoint split :
       {SplitPoint::kTransaction, SplitPoint::kByte, SplitPoint::kSymbol}) {
    HybridConfig config;
    config.split = split;
    config.capture_waveform = true;
    DriverMetrics plain = HybridDriver(config).MeasureReads(2, 14);
    config.mmio_bursts = true;
    DriverMetrics burst = HybridDriver(config).MeasureReads(2, 14);
    ASSERT_TRUE(plain.functional && burst.functional) << SplitPointName(split);
    EXPECT_GE(burst.frequency.mean_khz, plain.frequency.mean_khz * 0.999)
        << SplitPointName(split);
    if (split == SplitPoint::kSymbol) {
      EXPECT_EQ(burst.mmio_bursts, 0u);
    } else {
      EXPECT_GT(burst.mmio_bursts, 0u) << SplitPointName(split);
    }
  }
}

// With a drain window armed, back-to-back up-messages at a chatty split ride
// one interrupt: the IRQ count drops and the coalesced counter accounts for
// the difference in deliveries.
TEST(DriverBatching, IrqCoalescingReducesInterrupts) {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  config.interrupt_driven = true;
  DriverMetrics plain = HybridDriver(config).MeasureReads(2, 14);
  config.irq_coalesce_window_ns = 40000.0;  // ~2 byte times at 400 kHz
  DriverMetrics coalesced = HybridDriver(config).MeasureReads(2, 14);
  ASSERT_TRUE(plain.functional && coalesced.functional);
  EXPECT_EQ(plain.irqs_coalesced, 0u);
  EXPECT_GT(coalesced.irqs_coalesced, 0u);
  EXPECT_LT(coalesced.irq_count, plain.irq_count);
}

// The execution tier is invisible to the modeled timeline: metrics from a
// compiled-tier driver are identical to the interpreter's, and the
// instructions-retired counter matches exactly.
TEST(DriverBatching, ExecTiersAgreeOnModeledMetrics) {
  DriverMetrics reference;
  for (vm::ExecMode mode : {vm::ExecMode::kInterp, vm::ExecMode::kThreaded,
                            vm::ExecMode::kCompiled}) {
    HybridConfig config;
    config.split = SplitPoint::kByte;
    config.capture_waveform = true;
    config.exec_mode = mode;
    DriverMetrics metrics = HybridDriver(config).MeasureReads(2, 14);
    ASSERT_TRUE(metrics.functional) << vm::ExecModeName(mode);
    EXPECT_GT(metrics.instructions_retired, 0u);
    if (mode == vm::ExecMode::kInterp) {
      reference = metrics;
    } else {
      EXPECT_EQ(metrics.instructions_retired, reference.instructions_retired)
          << vm::ExecModeName(mode);
      EXPECT_DOUBLE_EQ(metrics.elapsed_ns, reference.elapsed_ns) << vm::ExecModeName(mode);
      EXPECT_DOUBLE_EQ(metrics.cpu_usage, reference.cpu_usage) << vm::ExecModeName(mode);
      EXPECT_EQ(metrics.irq_count, reference.irq_count) << vm::ExecModeName(mode);
    }
  }
}

}  // namespace efeu::driver
