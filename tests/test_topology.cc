// Bus-topology tests (the fleet tentpole's fault surface): the I2C mux model
// bit-banged directly (select latch, read-back, repeater pass gates, the
// mux-stuck and misroute faults), the second-master arbitration model, the
// driver-level recovery matrices (mux-stuck + arbitration-loss schedules in
// polling AND interrupt modes, asserting the supervision ladder ends healthy),
// and the register-file MFD device: register window semantics, IRQ-chip
// gating, cell fan-out, and the MfdClient dispatch top half.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/driver/hybrid.h"
#include "src/driver/mfd.h"
#include "src/driver/resources.h"
#include "src/driver/supervisor.h"
#include "src/rtl/system.h"
#include "src/sim/fault_plan.h"
#include "src/sim/i2c_bus.h"
#include "src/sim/mux.h"
#include "src/sim/regfile_device.h"
#include "src/sim/second_master.h"

namespace efeu::driver {
namespace {

// ---------------------------------------------------------------------------
// Mux model, bit-banged directly
// ---------------------------------------------------------------------------

// Minimal rig: a GPIO-style master on the upstream bus, the mux fanning out
// to `channels` downstream segments, and one EEPROM on downstream channel 0.
class MuxRig {
 public:
  explicit MuxRig(int channels = 4) : rtl_(10.0) {
    id_ = upstream_.AddDriver();
    for (int c = 0; c < channels; ++c) {
      downstream_.push_back(std::make_unique<sim::I2cBus>());
    }
    std::vector<sim::I2cBus*> raw;
    for (auto& bus : downstream_) {
      raw.push_back(bus.get());
    }
    sim::MuxConfig config;
    config.channels = channels;
    mux_ = std::make_unique<sim::I2cMux>(&upstream_, raw, config);
    sim::EepromConfig eeprom;
    eeprom.write_cycle_ns = 0;
    eeprom_ = std::make_unique<sim::Eeprom24aa512>(downstream_[0].get(), eeprom);
    rtl_.AddComponent(mux_.get());
    rtl_.AddComponent(eeprom_.get());
    Set(true, true);
    Step(4);
  }

  sim::I2cMux& mux() { return *mux_; }

  void Start() {
    Set(true, true);
    Step(2);
    Set(true, false);
    Step(2);
    Set(false, false);
    Step(2);
  }

  void Stop() {
    Set(false, false);
    Step(2);
    Set(true, false);
    Step(2);
    Set(true, true);
    Step(2);
  }

  bool SendByte(uint8_t byte) {
    for (int bit = 7; bit >= 0; --bit) {
      bool sda = ((byte >> bit) & 1) != 0;
      Set(false, sda);
      Step(2);
      Set(true, sda);
      Step(2);
      Set(false, sda);
      Step(2);
    }
    Set(false, true);  // release SDA for the ACK
    Step(2);
    Set(true, true);
    Step(2);
    bool ack = !upstream_.sda();
    Set(false, true);
    Step(2);
    return ack;
  }

  // Clocks in one byte from the addressed device, NACKing it afterwards.
  uint8_t ReceiveByte() {
    uint8_t byte = 0;
    for (int bit = 7; bit >= 0; --bit) {
      Set(false, true);
      Step(2);
      Set(true, true);
      Step(2);
      if (upstream_.sda()) {
        byte = static_cast<uint8_t>(byte | (1 << bit));
      }
      Set(false, true);
      Step(2);
    }
    // Master NACK: SDA stays high through the ninth clock.
    Set(false, true);
    Step(2);
    Set(true, true);
    Step(2);
    Set(false, true);
    Step(2);
    return byte;
  }

  // One full select transfer: START, address+W, one mask byte, STOP.
  bool Select(uint8_t mask) {
    Start();
    bool ack = SendByte(static_cast<uint8_t>(0x70 << 1));
    ack = SendByte(mask) && ack;
    Stop();
    return ack;
  }

  uint8_t ReadBack() {
    Start();
    EXPECT_TRUE(SendByte(static_cast<uint8_t>((0x70 << 1) | 1)));
    uint8_t mask = ReceiveByte();
    Stop();
    return mask;
  }

 private:
  void Set(bool scl, bool sda) { upstream_.SetDriver(id_, scl, sda); }
  void Step(int n) {
    for (int i = 0; i < n; ++i) {
      rtl_.Tick();
    }
  }

  sim::I2cBus upstream_;
  rtl::RtlSystem rtl_;
  std::vector<std::unique_ptr<sim::I2cBus>> downstream_;
  std::unique_ptr<sim::I2cMux> mux_;
  std::unique_ptr<sim::Eeprom24aa512> eeprom_;
  int id_ = -1;
};

TEST(MuxModel, SelectLatchesOnStopAndReadsBack) {
  MuxRig rig;
  EXPECT_EQ(rig.mux().control_mask(), 0);
  ASSERT_TRUE(rig.Select(0x05));
  EXPECT_EQ(rig.mux().control_mask(), 0x05);
  EXPECT_EQ(rig.mux().routed_mask(), 0x05);
  EXPECT_EQ(rig.mux().selects_applied(), 1u);
  // Read-back returns the latched mask without disturbing it.
  EXPECT_EQ(rig.ReadBack(), 0x05);
  EXPECT_EQ(rig.mux().control_mask(), 0x05);
  EXPECT_EQ(rig.mux().selects_applied(), 1u);
}

TEST(MuxModel, MaskClipsToChannelCount) {
  MuxRig rig(/*channels=*/2);
  ASSERT_TRUE(rig.Select(0xFF));
  EXPECT_EQ(rig.mux().control_mask(), 0x03);
}

TEST(MuxModel, RepeaterGatesDownstreamDevices) {
  MuxRig rig;
  // Channel 0 deselected: the EEPROM behind it is unreachable — its address
  // byte goes unacknowledged on the upstream segment.
  rig.Start();
  EXPECT_FALSE(rig.SendByte(0x50 << 1));
  rig.Stop();
  // Close the channel-0 pass gate and the same transfer reaches the device.
  ASSERT_TRUE(rig.Select(0x01));
  rig.Start();
  EXPECT_TRUE(rig.SendByte(0x50 << 1));
  rig.Stop();
  // Deselect again: gate open, device gone.
  ASSERT_TRUE(rig.Select(0x00));
  rig.Start();
  EXPECT_FALSE(rig.SendByte(0x50 << 1));
  rig.Stop();
}

TEST(MuxModel, StuckFaultFreezesBothLatches) {
  MuxRig rig;
  sim::FaultPlan plan =
      sim::FaultPlan::Scripted({{sim::FaultKind::kMuxStuck, 0, 1}});
  rig.mux().SetFaultPlan(&plan);
  // The select is acknowledged on the wire but the latch does not move —
  // exactly what the driver's read-back verification exists to catch.
  ASSERT_TRUE(rig.Select(0x02));
  EXPECT_EQ(rig.mux().control_mask(), 0x00);
  EXPECT_EQ(rig.ReadBack(), 0x00);
  EXPECT_EQ(rig.mux().selects_stuck(), 1u);
  // The next select applies normally.
  ASSERT_TRUE(rig.Select(0x02));
  EXPECT_EQ(rig.mux().control_mask(), 0x02);
  EXPECT_EQ(rig.mux().routed_mask(), 0x02);
}

TEST(MuxModel, MisrouteFaultPassesReadBackButRoutesWrong) {
  MuxRig rig;
  sim::FaultPlan plan =
      sim::FaultPlan::Scripted({{sim::FaultKind::kMuxMisroute, 0, 1}});
  rig.mux().SetFaultPlan(&plan);
  ASSERT_TRUE(rig.Select(0x01));
  // Read-back looks clean; the pass gates closed on the rotated mask.
  EXPECT_EQ(rig.mux().control_mask(), 0x01);
  EXPECT_EQ(rig.ReadBack(), 0x01);
  EXPECT_EQ(rig.mux().routed_mask(), 0x02);
  EXPECT_EQ(rig.mux().selects_misrouted(), 1u);
  // The device on channel 0 is unreachable despite the clean-looking select.
  rig.Start();
  EXPECT_FALSE(rig.SendByte(0x50 << 1));
  rig.Stop();
}

// ---------------------------------------------------------------------------
// Driver-level topology recovery matrices
// ---------------------------------------------------------------------------

HybridConfig TopologyConfig(bool interrupt_driven) {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  config.interrupt_driven = interrupt_driven;
  config.eeprom.write_cycle_ns = 50000;
  config.recovery.enabled = true;
  config.recovery.wait_timeout_ns = 2e6;
  config.recovery.op_deadline_ns = 1e7;
  return config;
}

// A mux between controller and device plus a scripted topology fault; the
// supervised write+read must end healthy with the select healed.
void RunMuxFaultCase(sim::FaultKind kind, int duration, bool interrupt_driven) {
  HybridConfig config = TopologyConfig(interrupt_driven);
  config.mux_topology.enabled = true;
  config.mux_topology.mux.channels = 4;
  config.mux_topology.device_channel = 2;
  config.fault_plan = sim::FaultPlan::Scripted({{kind, 0, duration}});
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  std::string context = std::string(sim::FaultKindName(kind)) +
                        (interrupt_driven ? " (interrupt)" : " (polling)");
  std::vector<uint8_t> payload = {0x5A, 0x6B};
  ASSERT_TRUE(sup.Write(0x0240, payload))
      << context << ": " << driver.fault_plan().Describe() << "\nreplay: "
      << driver.fault_plan().ReplayCommand() << "\n"
      << FormatRecoveryCounters(sup.counters());
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x0240, 2, &data)) << context;
  EXPECT_EQ(data, payload) << context;
  EXPECT_NE(sup.health(), HealthState::kWedged) << context;
  EXPECT_GT(driver.fault_plan().faults_injected(), 0u)
      << context << ": scripted topology fault never fired";
  // The select was verified against the fault: more than the single clean
  // attempt was needed.
  EXPECT_GT(sup.counters().mux_selects, 1u) << context;
  EXPECT_EQ(driver.mux()->routed_mask(), 1 << 2) << context;
}

TEST(MuxRecovery, StuckSelectHealsInPollingMode) {
  RunMuxFaultCase(sim::FaultKind::kMuxStuck, /*duration=*/2, false);
}

TEST(MuxRecovery, StuckSelectHealsInInterruptMode) {
  RunMuxFaultCase(sim::FaultKind::kMuxStuck, /*duration=*/2, true);
}

TEST(MuxRecovery, MisrouteHealsInPollingMode) {
  RunMuxFaultCase(sim::FaultKind::kMuxMisroute, /*duration=*/1, false);
}

TEST(MuxRecovery, MisrouteHealsInInterruptMode) {
  RunMuxFaultCase(sim::FaultKind::kMuxMisroute, /*duration=*/1, true);
}

TEST(MuxRecovery, MisrouteCostsASoftReset) {
  // A misrouted select passes read-back, so only the device NACKs expose it:
  // the heal necessarily runs through the supervisor's reset rung (which
  // drops the select cache) rather than inside EnsureMuxSelected.
  HybridConfig config = TopologyConfig(/*interrupt_driven=*/false);
  config.mux_topology.enabled = true;
  config.fault_plan =
      sim::FaultPlan::Scripted({{sim::FaultKind::kMuxMisroute, 0, 1}});
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  ASSERT_TRUE(sup.Write(0x0250, {0x77}));
  EXPECT_GT(sup.counters().soft_resets, 0u);
  EXPECT_EQ(driver.mux()->selects_misrouted(), 1u);
}

TEST(MuxRecovery, CleanMuxCostsOneSelect) {
  // No faults: the select+verify runs once, is cached, and every further
  // operation rides the cached selection.
  HybridConfig config = TopologyConfig(/*interrupt_driven=*/false);
  config.mux_topology.enabled = true;
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  std::vector<uint8_t> payload = {0x01, 0x02, 0x03};
  ASSERT_TRUE(sup.Write(0x0260, payload));
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x0260, 3, &data));
  EXPECT_EQ(data, payload);
  EXPECT_EQ(sup.counters().mux_selects, 1u);
  EXPECT_EQ(sup.counters().soft_resets, 0u);
  EXPECT_EQ(driver.mux()->selects_applied(), 1u);
}

void RunArbitrationCase(bool interrupt_driven) {
  HybridConfig config = TopologyConfig(interrupt_driven);
  config.enable_second_master = true;
  config.fault_plan =
      sim::FaultPlan::Scripted({{sim::FaultKind::kArbitrationLoss, 0, 1}});
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  const char* context = interrupt_driven ? "interrupt" : "polling";
  std::vector<uint8_t> payload = {0x9C, 0x9D};
  ASSERT_TRUE(sup.Write(0x0270, payload))
      << context << ": " << driver.fault_plan().Describe() << "\nreplay: "
      << driver.fault_plan().ReplayCommand() << "\n"
      << FormatRecoveryCounters(sup.counters());
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x0270, 2, &data)) << context;
  EXPECT_EQ(data, payload) << context;
  EXPECT_NE(sup.health(), HealthState::kWedged) << context;
  // The second master genuinely won the bus once, the stack's hardware wait
  // wedged, and the arbitration rung saw the owned bus before the reset.
  EXPECT_EQ(driver.second_master()->arbitration_wins(), 1u) << context;
  EXPECT_GT(sup.counters().timeouts, 0u) << context;
  EXPECT_GT(sup.counters().arbitration_waits, 0u) << context;
  EXPECT_GT(sup.counters().soft_resets, 0u) << context;
  EXPECT_FALSE(driver.second_master()->holding()) << context;
}

TEST(ArbitrationRecovery, LossHealsInPollingMode) {
  RunArbitrationCase(/*interrupt_driven=*/false);
}

TEST(ArbitrationRecovery, LossHealsInInterruptMode) {
  RunArbitrationCase(/*interrupt_driven=*/true);
}

TEST(ArbitrationRecovery, QuietSecondMasterIsFree) {
  // A competing master that never wins costs nothing: no waits, no resets.
  HybridConfig config = TopologyConfig(/*interrupt_driven=*/false);
  config.enable_second_master = true;
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  ASSERT_TRUE(sup.Write(0x0280, {0x31, 0x32}));
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x0280, 2, &data));
  EXPECT_GT(driver.second_master()->starts_seen(), 0u);
  EXPECT_EQ(driver.second_master()->arbitration_wins(), 0u);
  EXPECT_EQ(sup.counters().arbitration_waits, 0u);
  EXPECT_EQ(sup.counters().soft_resets, 0u);
}

// ---------------------------------------------------------------------------
// Register-file MFD device + MfdClient
// ---------------------------------------------------------------------------

HybridConfig MfdDriverConfig() {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  config.eeprom.write_cycle_ns = 0;
  config.mfd_devices.push_back(sim::MfdConfig{});
  return config;
}

TEST(MfdDevice, IdRegisterCarriesMagicAndCellCount) {
  HybridDriver driver(MfdDriverConfig());
  MfdClient<HybridDriver> client(&driver, sim::MfdConfig{}.address);
  uint16_t id = 0;
  ASSERT_TRUE(client.ProbeId(&id));
  EXPECT_EQ(id, 0xEF03);  // three default cells
  EXPECT_EQ(driver.mfd(0).num_cells(), 3);
}

TEST(MfdDevice, RegisterPairsAutoIncrementBothDirections) {
  HybridDriver driver(MfdDriverConfig());
  // One 4-byte transfer = two 16-bit registers, big-endian, auto-increment.
  // Indices 3-4 sit in the unmapped gap before the first cell bank: plain
  // storage, no side effects.
  ASSERT_TRUE(driver.WriteTo(0x30, 3, {0x11, 0x22, 0x33, 0x44}));
  EXPECT_EQ(driver.mfd(0).RegisterAt(3), 0x1122);
  EXPECT_EQ(driver.mfd(0).RegisterAt(4), 0x3344);
  std::vector<uint8_t> data;
  ASSERT_TRUE(driver.ReadFrom(0x30, 3, 4, &data));
  EXPECT_EQ(data, (std::vector<uint8_t>{0x11, 0x22, 0x33, 0x44}));
}

TEST(MfdDevice, GpioOutLatchesInAndRaisesEdgeIrq) {
  HybridDriver driver(MfdDriverConfig());
  MfdClient<HybridDriver> client(&driver, 0x30);
  const int gpio_out = sim::kMfdCellStride;
  ASSERT_TRUE(client.WriteReg(gpio_out, 0xBEEF));
  uint16_t in = 0;
  ASSERT_TRUE(client.ReadReg(gpio_out + 1, &in));
  EXPECT_EQ(in, 0xBEEF);
  // The edge raised the cell-0 bit in STATUS regardless of ENABLE.
  EXPECT_EQ(driver.mfd(0).RegisterAt(sim::kMfdRegIrqStatus) & 1, 1);
  // ...but the INT# line stays down until the cell is enabled.
  EXPECT_FALSE(driver.mfd(0).irq_asserted());
  ASSERT_TRUE(client.EnableIrqs(0x0001));
  EXPECT_TRUE(driver.mfd(0).irq_asserted());
}

TEST(MfdDevice, IrqStatusIsWriteOneToClear) {
  HybridDriver driver(MfdDriverConfig());
  MfdClient<HybridDriver> client(&driver, 0x30);
  driver.mfd(0).PokeRegister(sim::kMfdRegIrqStatus, 0x0005);
  // Clearing bit 0 leaves bit 2 pending; writing zeros clears nothing.
  ASSERT_TRUE(client.WriteReg(sim::kMfdRegIrqStatus, 0x0001));
  EXPECT_EQ(driver.mfd(0).RegisterAt(sim::kMfdRegIrqStatus), 0x0004);
  ASSERT_TRUE(client.WriteReg(sim::kMfdRegIrqStatus, 0x0000));
  EXPECT_EQ(driver.mfd(0).RegisterAt(sim::kMfdRegIrqStatus), 0x0004);
}

TEST(MfdDevice, CounterCellCountsDownAndRollsOverToIrq) {
  HybridDriver driver(MfdDriverConfig());
  MfdClient<HybridDriver> client(&driver, 0x30);
  const int counter_ctrl = 2 * sim::kMfdCellStride;
  ASSERT_TRUE(client.WriteReg(counter_ctrl, 4));
  // The countdown runs on the shared RTL timeline; any bus traffic (here: a
  // register read loop) advances it. 4 counts x 64 prescale ticks is a few
  // microseconds — one register round trip is far longer.
  uint16_t count = 0xFFFF;
  ASSERT_TRUE(client.ReadReg(counter_ctrl + 1, &count));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(driver.mfd(0).RegisterAt(sim::kMfdRegIrqStatus) & 2, 2);
}

TEST(MfdDevice, StatCellBusyWindowSeedsValueAndIrq) {
  HybridDriver driver(MfdDriverConfig());
  MfdClient<HybridDriver> client(&driver, 0x30);
  const int stat_base = 3 * sim::kMfdCellStride;
  ASSERT_TRUE(client.WriteReg(stat_base, 1));  // TRIGGER
  uint16_t status = 0xFFFF;
  ASSERT_TRUE(client.ReadReg(stat_base + 2, &status));
  EXPECT_EQ(status & 1, 0) << "busy window outlived a full register read";
  uint16_t value = 0;
  ASSERT_TRUE(client.ReadReg(stat_base + 1, &value));
  EXPECT_NE(value, 0);
  EXPECT_EQ(driver.mfd(0).RegisterAt(sim::kMfdRegIrqStatus) & 4, 4);
  // The same seed reproduces the same conversion value.
  HybridDriver twin(MfdDriverConfig());
  MfdClient<HybridDriver> twin_client(&twin, 0x30);
  ASSERT_TRUE(twin_client.WriteReg(stat_base, 1));
  uint16_t twin_value = 0;
  ASSERT_TRUE(twin_client.ReadReg(stat_base + 1, &twin_value));
  EXPECT_EQ(twin_value, value);
}

TEST(MfdClientDispatch, FansOutOnceAndAcksObservedBits) {
  HybridConfig config = MfdDriverConfig();
  config.recovery.enabled = true;
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  MfdClient<Supervisor<HybridDriver>> client(&sup, 0x30);
  std::vector<int> hits;
  client.SetCellHandler(0, [&hits](uint16_t) { hits.push_back(0); });
  client.SetCellHandler(1, [&hits](uint16_t) { hits.push_back(1); });
  ASSERT_TRUE(client.EnableIrqs(0xFFFF));
  // Raise cells 0 and 1: a GPIO edge and a counter rollover.
  ASSERT_TRUE(client.WriteReg(sim::kMfdCellStride, 0x0001));
  ASSERT_TRUE(client.WriteReg(2 * sim::kMfdCellStride, 1));
  EXPECT_EQ(client.DispatchIrqs(), 2);
  EXPECT_EQ(hits, (std::vector<int>{0, 1}));
  // Everything observed was acknowledged; nothing pends.
  EXPECT_EQ(client.DispatchIrqs(), 0);
  EXPECT_FALSE(driver.mfd(0).irq_asserted());
  EXPECT_EQ(client.irqs_dispatched(), 2u);
}

TEST(MfdClientDispatch, SupervisedDispatchSurvivesWireFaults) {
  HybridConfig config = MfdDriverConfig();
  config.recovery.enabled = true;
  config.recovery.wait_timeout_ns = 2e6;
  config.recovery.op_deadline_ns = 1e7;
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kNackOnAddress, 0, 1},
      {sim::FaultKind::kNackOnData, 1, 1},
  });
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  MfdClient<Supervisor<HybridDriver>> client(&sup, 0x30);
  uint64_t handled = 0;
  client.SetCellHandler(0, [&handled](uint16_t) { ++handled; });
  ASSERT_TRUE(client.EnableIrqs(0xFFFF))
      << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  ASSERT_TRUE(client.WriteReg(sim::kMfdCellStride, 0x00A5));
  EXPECT_EQ(client.DispatchIrqs(), 1);
  EXPECT_EQ(handled, 1u);
  EXPECT_NE(sup.health(), HealthState::kWedged);
  EXPECT_GT(driver.fault_plan().faults_injected(), 0u);
}

}  // namespace
}  // namespace efeu::driver
