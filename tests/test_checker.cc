// Unit tests for the model checker on small synthetic systems: assertion
// failures with counterexample traces, invalid end states (deadlock),
// nondeterministic choice exploration, non-progress cycles (livelock),
// budgets, and native-process integration.

#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/check/native_process.h"
#include "src/ir/compile.h"

namespace efeu {
namespace {

constexpr const char* kEsi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";

std::unique_ptr<ir::Compilation> Compile(const std::string& esm) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = true;
  auto comp = ir::Compile(kEsi, esm, diag, options);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

void Wire(check::CheckedSystem& system, const ir::Compilation& comp, int up, int down) {
  system.ConnectByChannel(up, down, comp.system().FindChannel("Up", "Down"));
  system.ConnectByChannel(down, up, comp.system().FindChannel("Down", "Up"));
}

TEST(Checker, CleanSystemPasses) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v * 2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.states_stored, 0u);
  EXPECT_GT(result.transitions, 0u);
}

TEST(Checker, AssertionFailureWithTrace) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 43);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v * 2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kAssertionFailed);
  EXPECT_FALSE(result.violation->trace.empty());
}

TEST(Checker, DeadlockIsInvalidEndState) {
  // Down never replies: Up remains blocked receiving at a non-end position.
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  stuck:
  q = DownReadUp();
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  // Down never talks back; only the forward channel exists to wire.
  system.ConnectByChannel(up, down, comp->system().FindChannel("Up", "Down"));
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kInvalidEndState);
  EXPECT_NE(result.violation->message.find("Up"), std::string::npos);
}

TEST(Checker, EndLabelMakesBlockingValid) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(9);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  EXPECT_TRUE(system.Check().ok);
}

TEST(Checker, NondetExploresAllChoices) {
  // Only choice 3 trips the assert; the checker must find it.
  auto comp = Compile(R"esm(
void Up() {
  int x;
  x = nondet(5);
  assert(x != 3);
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kAssertionFailed);
  // The trace names the fatal choice.
  bool found = false;
  for (const std::string& step : result.violation->trace) {
    if (step.find("nondet -> 3") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Checker, NondetAllChoicesPass) {
  auto comp = Compile(R"esm(
void Up() {
  int x;
  int y;
  x = nondet(4);
  y = nondet(4);
  assert(x + y <= 6);
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok);
  // 4 choices for x, then 4 for y: at least 16 leaf states explored.
  EXPECT_GE(result.transitions, 16u);
}

TEST(Checker, LivelockDetectedWithoutProgressLabel) {
  // Up and Down exchange forever with no progress label anywhere.
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  spin:
  r = UpTalkDown(1);
  goto spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  check::CheckResult result = system.Check(options);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kNonProgressCycle);
}

TEST(Checker, ProgressLabelSuppressesLivelock) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  progress_spin:
  r = UpTalkDown(1);
  goto progress_spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  EXPECT_TRUE(system.Check(options).ok);
}

TEST(Checker, StateBudgetStopsSearch) {
  auto comp = Compile(R"esm(
void Up() {
  int x;
  int a;
  int b;
  int c;
  a = nondet(8);
  b = nondet(8);
  c = nondet(8);
  x = a + b + c;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.max_states = 10;
  check::CheckResult result = system.Check(options);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(Checker, RuntimeErrorReported) {
  auto comp = Compile(R"esm(
void Up() {
  int x;
  int d;
  d = nondet(2);
  x = 4 / d;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kRuntimeError);
}

// A native process that answers one request with value*2 and then parks.
class DoublerProcess : public check::NativeProcess {
 public:
  DoublerProcess(const esi::ChannelInfo* in, const esi::ChannelInfo* out)
      : NativeProcess("Doubler"), in_(in), out_(out) {
    in_port_ = AddPort(in, /*is_send=*/false);
    out_port_ = AddPort(out, /*is_send=*/true);
    ResizeState(2);  // [phase, value]
    Reset();
  }

  bool AtValidEndState() const override { return current_state()[0] == 0; }

  std::unique_ptr<check::Process> Clone() const override {
    return std::make_unique<DoublerProcess>(in_, out_);
  }

 protected:
  void InitState(std::vector<int32_t>& state) override { std::fill(state.begin(), state.end(), 0); }

  PendingOp ComputePending(const std::vector<int32_t>& state) const override {
    PendingOp op;
    if (state[0] == 0) {
      op.kind = vm::RunState::kBlockedRecv;
      op.port = in_port_;
    } else {
      op.kind = vm::RunState::kBlockedSend;
      op.port = out_port_;
      op.message = {state[1] * 2};
    }
    return op;
  }

  void OnRecv(int port, std::span<const int32_t> message,
              std::vector<int32_t>& state) override {
    state[1] = message[0];
    state[0] = 1;
  }

  void OnSendComplete(int port, std::vector<int32_t>& state) override { state[0] = 0; }

 private:
  const esi::ChannelInfo* in_ = nullptr;
  const esi::ChannelInfo* out_ = nullptr;
  int in_port_ = -1;
  int out_port_ = -1;
};

// Regression: a non-progress cycle whose states are first visited on a
// higher-credit path (through the progress-labeled detour) and then
// re-reached through a cross edge with no progress. Plain visited-state
// dedup prunes the low-credit re-traversal before it can close the
// equal-credit back edge, silently missing the livelock; the checker must
// re-admit states reached with strictly lower progress credit.
TEST(Checker, CrossEdgeLivelockDetected) {
  auto comp = Compile(R"esm(
void Up() {
  int b;
  hub:
  b = nondet(2);
  if (b == 0) {
    progress_detour:
    b = 0;
  }
  b = 0;
  yy:
  b = nondet(2);
  b = 0;
  cc:
  b = nondet(2);
  b = 0;
  goto hub;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  check::CheckResult result = system.Check(options);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kNonProgressCycle);
}

// Counterpart: progress on the shared cycle path itself. Every cycle passes
// progress_mid, so the credit-relaxation re-exploration must not turn this
// into a false positive.
TEST(Checker, ProgressOnCycleSuppressesCrossEdgeLivelock) {
  auto comp = Compile(R"esm(
void Up() {
  int b;
  hub:
  b = nondet(2);
  if (b == 0) {
    progress_detour:
    b = 0;
  }
  b = 0;
  progress_mid:
  b = nondet(2);
  b = 0;
  cc:
  b = nondet(2);
  b = 0;
  goto hub;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  check::CheckResult result = system.Check(options);
  EXPECT_TRUE(result.ok) << (result.violation.has_value() ? result.violation->message : "");
}

// Order-swapped companion to CrossEdgeLivelockDetected: here the progress
// detour is the second nondet branch, so DFS visits the cycle states on the
// credit-0 path first and the re-admission logic is exercised in the other
// direction. Detection must not depend on which branch happens to be
// explored first.
TEST(Checker, CrossEdgeLivelockDetectedRegardlessOfBranchOrder) {
  auto comp = Compile(R"esm(
void Up() {
  int b;
  hub:
  b = nondet(2);
  if (b == 1) {
    progress_detour:
    b = 0;
  }
  b = 0;
  yy:
  b = nondet(2);
  b = 0;
  cc:
  b = nondet(2);
  b = 0;
  goto hub;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  check::CheckResult result = system.Check(options);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kNonProgressCycle);
}

// budget_exhausted means "a reachable subtree was actually skipped". A
// depth-pruned frame whose successors were all visited already does not
// qualify: this one-state self-loop is fully explored even at max_depth 0.
TEST(Checker, DepthPruneWithoutSkippedWorkNotExhausted) {
  auto comp = Compile(R"esm(
void Up() {
  int b;
  spin:
  b = nondet(2);
  b = 0;
  goto spin;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.max_depth = 0;
  check::CheckResult result = system.Check(options);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.budget_exhausted);
  // Pruned frames are not counted toward the deepest explored depth.
  EXPECT_LE(result.max_depth_reached, options.max_depth);
}

TEST(Checker, DepthPruneWithSkippedWorkExhausted) {
  auto comp = Compile(R"esm(
void Up() {
  int a;
  int b;
  int c;
  a = nondet(2);
  b = nondet(2);
  c = nondet(2);
  a = a + b + c;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.max_depth = 1;
  check::CheckResult result = system.Check(options);
  EXPECT_TRUE(result.ok);  // No violation found within the budget...
  EXPECT_TRUE(result.budget_exhausted);  // ...but deeper states were skipped.
  EXPECT_LE(result.max_depth_reached, options.max_depth);
}

TEST(Checker, FingerprintOnlyMatchesFullSearch) {
  const char* esm = R"esm(
void Up() {
  int x;
  int y;
  x = nondet(4);
  y = nondet(4);
  assert(x + y <= 6);
}
)esm";
  auto comp = Compile(esm);
  // Compare hash compaction against full *uncompressed* vectors; COLLAPSE
  // would shrink the full table below 8 bytes/state for this one-process
  // system and has its own equivalence tests.
  check::CheckedSystem full_system;
  full_system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions full_options;
  full_options.collapse = false;
  check::CheckResult full = full_system.Check(full_options);

  check::CheckedSystem fp_system;
  fp_system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.fingerprint_only = true;
  options.collapse = false;
  check::CheckResult fp = fp_system.Check(options);

  EXPECT_EQ(full.ok, fp.ok);
  EXPECT_EQ(full.states_stored, fp.states_stored);
  EXPECT_EQ(full.transitions, fp.transitions);
  // Hash compaction stores exactly 8 bytes per state; the full table stores
  // the complete snapshot vector.
  EXPECT_EQ(fp.state_bytes, 8 * fp.states_stored);
  EXPECT_GT(full.state_bytes, fp.state_bytes);
}

TEST(Checker, CloneExploresIdentically) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42);
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  int doubler = system.AddProcess(std::make_unique<DoublerProcess>(to_down, to_up));
  system.ConnectByChannel(up, doubler, to_down);
  system.ConnectByChannel(doubler, up, to_up);

  std::unique_ptr<check::CheckedSystem> clone = system.Clone();
  check::CheckResult original = system.Check();
  check::CheckResult cloned = clone->Check();
  EXPECT_EQ(original.ok, cloned.ok);
  EXPECT_EQ(original.states_stored, cloned.states_stored);
  EXPECT_EQ(original.transitions, cloned.transitions);
}

// With a full-state table the parallel engine claims every state exactly once
// before expanding it, so the stored-state and applied-transition counts are
// identical to the sequential search — not merely close.
TEST(Checker, ParallelMatchesSequentialOnNondetSystem) {
  const char* esm = R"esm(
void Up() {
  int a;
  int b;
  int c;
  a = nondet(6);
  b = nondet(6);
  c = nondet(6);
  a = a + b + c;
}
)esm";
  auto comp = Compile(esm);
  check::CheckedSystem seq_system;
  seq_system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult seq = seq_system.Check();

  check::CheckedSystem par_system;
  par_system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.num_threads = 4;
  check::CheckResult par = par_system.Check(options);

  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.states_stored, par.states_stored);
  EXPECT_EQ(seq.transitions, par.transitions);
  EXPECT_FALSE(par.budget_exhausted);
}

TEST(Checker, ParallelFindsViolationWithValidTrace) {
  auto comp = Compile(R"esm(
void Up() {
  int a;
  int b;
  a = nondet(5);
  b = nondet(5);
  assert(!(a == 3 && b == 4));
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.num_threads = 4;
  check::CheckResult result = system.Check(options);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kAssertionFailed);
  ASSERT_FALSE(result.violation->trace.empty());
  // The trace must contain both fatal choices, in order.
  size_t first = std::string::npos;
  size_t second = std::string::npos;
  for (size_t i = 0; i < result.violation->trace.size(); ++i) {
    if (result.violation->trace[i].find("nondet -> 3") != std::string::npos && first == std::string::npos) {
      first = i;
    }
    if (result.violation->trace[i].find("nondet -> 4") != std::string::npos) {
      second = i;
    }
  }
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST(Checker, NativeProcessInterops) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42);
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  int doubler = system.AddProcess(std::make_unique<DoublerProcess>(to_down, to_up));
  system.ConnectByChannel(up, doubler, to_down);
  system.ConnectByChannel(doubler, up, to_up);
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok) << (result.violation.has_value() ? result.violation->message : "");
}

// A native process with its own nondeterministic branch point (the shape the
// TransactionSpecProcess fault choice uses): after receiving a request it
// either answers value*2 or "fails" with -1.
class FlakyDoublerProcess : public check::NativeProcess {
 public:
  FlakyDoublerProcess(const esi::ChannelInfo* in, const esi::ChannelInfo* out)
      : NativeProcess("FlakyDoubler"), in_(in), out_(out) {
    in_port_ = AddPort(in, /*is_send=*/false);
    out_port_ = AddPort(out, /*is_send=*/true);
    ResizeState(2);  // [phase, value]
    Reset();
  }

  bool AtValidEndState() const override { return current_state()[0] == 0; }

  std::unique_ptr<check::Process> Clone() const override {
    return std::make_unique<FlakyDoublerProcess>(in_, out_);
  }

 protected:
  void InitState(std::vector<int32_t>& state) override { std::fill(state.begin(), state.end(), 0); }

  PendingOp ComputePending(const std::vector<int32_t>& state) const override {
    PendingOp op;
    if (state[0] == 0) {
      op.kind = vm::RunState::kBlockedRecv;
      op.port = in_port_;
    } else if (state[0] == 1) {
      op.kind = vm::RunState::kBlockedNondet;
      op.arity = 2;
    } else {
      op.kind = vm::RunState::kBlockedSend;
      op.port = out_port_;
      op.message = {state[1]};
    }
    return op;
  }

  void OnRecv(int port, std::span<const int32_t> message,
              std::vector<int32_t>& state) override {
    state[1] = message[0];
    state[0] = 1;
  }

  void OnChoice(int32_t choice, std::vector<int32_t>& state) override {
    state[1] = choice == 0 ? state[1] * 2 : -1;
    state[0] = 2;
  }

  void OnSendComplete(int port, std::vector<int32_t>& state) override { state[0] = 0; }

 private:
  const esi::ChannelInfo* in_ = nullptr;
  const esi::ChannelInfo* out_ = nullptr;
  int in_port_ = -1;
  int out_port_ = -1;
};

// Both native nondet branches are genuinely explored: the tolerant oracle
// passes, the strict one sees the -1 branch fail.
TEST(Checker, NativeNondetExploresAllChoices) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42 || r.r == 0 - 1);
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  int flaky = system.AddProcess(std::make_unique<FlakyDoublerProcess>(to_down, to_up));
  system.ConnectByChannel(up, flaky, to_down);
  system.ConnectByChannel(flaky, up, to_up);
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok) << (result.violation.has_value() ? result.violation->message : "");

  auto strict = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42);
}
)esm");
  check::CheckedSystem strict_system;
  int sup = strict_system.AddModule(strict->FindModule("Up"), "Up");
  const esi::ChannelInfo* sdown = strict->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* sup_ch = strict->system().FindChannel("Down", "Up");
  int sflaky = strict_system.AddProcess(std::make_unique<FlakyDoublerProcess>(sdown, sup_ch));
  strict_system.ConnectByChannel(sup, sflaky, sdown);
  strict_system.ConnectByChannel(sflaky, sup, sup_ch);
  check::CheckResult strict_result = strict_system.Check();
  ASSERT_FALSE(strict_result.ok);
  EXPECT_EQ(strict_result.violation->kind, check::ViolationKind::kAssertionFailed);
}

// The parallel engine handles native nondet branches identically to the
// sequential one.
TEST(Checker, ParallelMatchesSequentialOnNativeNondet) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  int i;
  i = 0;
  while (i < 3) {
    r = UpTalkDown(i + 7);
    assert(r.r == 2 * (i + 7) || r.r == 0 - 1);
    i = i + 1;
  }
}
)esm");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  auto build = [&](check::CheckedSystem& system) {
    int up = system.AddModule(comp->FindModule("Up"), "Up");
    int flaky = system.AddProcess(std::make_unique<FlakyDoublerProcess>(to_down, to_up));
    system.ConnectByChannel(up, flaky, to_down);
    system.ConnectByChannel(flaky, up, to_up);
  };
  check::CheckedSystem seq_system;
  build(seq_system);
  check::CheckResult seq = seq_system.Check();

  check::CheckedSystem par_system;
  build(par_system);
  check::CheckerOptions options;
  options.num_threads = 4;
  check::CheckResult par = par_system.Check(options);

  EXPECT_TRUE(seq.ok) << (seq.violation.has_value() ? seq.violation->message : "");
  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.states_stored, par.states_stored);
  EXPECT_EQ(seq.transitions, par.transitions);
}

}  // namespace
}  // namespace efeu
