// Unit tests for the model checker on small synthetic systems: assertion
// failures with counterexample traces, invalid end states (deadlock),
// nondeterministic choice exploration, non-progress cycles (livelock),
// budgets, and native-process integration.

#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/check/native_process.h"
#include "src/ir/compile.h"

namespace efeu {
namespace {

constexpr const char* kEsi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";

std::unique_ptr<ir::Compilation> Compile(const std::string& esm) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = true;
  auto comp = ir::Compile(kEsi, esm, diag, options);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

void Wire(check::CheckedSystem& system, const ir::Compilation& comp, int up, int down) {
  system.ConnectByChannel(up, down, comp.system().FindChannel("Up", "Down"));
  system.ConnectByChannel(down, up, comp.system().FindChannel("Down", "Up"));
}

TEST(Checker, CleanSystemPasses) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v * 2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.states_stored, 0u);
  EXPECT_GT(result.transitions, 0u);
}

TEST(Checker, AssertionFailureWithTrace) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 43);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v * 2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kAssertionFailed);
  EXPECT_FALSE(result.violation->trace.empty());
}

TEST(Checker, DeadlockIsInvalidEndState) {
  // Down never replies: Up remains blocked receiving at a non-end position.
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  stuck:
  q = DownReadUp();
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  // Down never talks back; only the forward channel exists to wire.
  system.ConnectByChannel(up, down, comp->system().FindChannel("Up", "Down"));
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kInvalidEndState);
  EXPECT_NE(result.violation->message.find("Up"), std::string::npos);
}

TEST(Checker, EndLabelMakesBlockingValid) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(9);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  EXPECT_TRUE(system.Check().ok);
}

TEST(Checker, NondetExploresAllChoices) {
  // Only choice 3 trips the assert; the checker must find it.
  auto comp = Compile(R"esm(
void Up() {
  int x;
  x = nondet(5);
  assert(x != 3);
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kAssertionFailed);
  // The trace names the fatal choice.
  bool found = false;
  for (const std::string& step : result.violation->trace) {
    if (step.find("nondet -> 3") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Checker, NondetAllChoicesPass) {
  auto comp = Compile(R"esm(
void Up() {
  int x;
  int y;
  x = nondet(4);
  y = nondet(4);
  assert(x + y <= 6);
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok);
  // 4 choices for x, then 4 for y: at least 16 leaf states explored.
  EXPECT_GE(result.transitions, 16u);
}

TEST(Checker, LivelockDetectedWithoutProgressLabel) {
  // Up and Down exchange forever with no progress label anywhere.
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  spin:
  r = UpTalkDown(1);
  goto spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  check::CheckResult result = system.Check(options);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kNonProgressCycle);
}

TEST(Checker, ProgressLabelSuppressesLivelock) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  progress_spin:
  r = UpTalkDown(1);
  goto progress_spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  int down = system.AddModule(comp->FindModule("Down"), "Down");
  Wire(system, *comp, up, down);
  check::CheckerOptions options;
  options.check_deadlock = false;
  options.check_livelock = true;
  EXPECT_TRUE(system.Check(options).ok);
}

TEST(Checker, StateBudgetStopsSearch) {
  auto comp = Compile(R"esm(
void Up() {
  int x;
  int a;
  int b;
  int c;
  a = nondet(8);
  b = nondet(8);
  c = nondet(8);
  x = a + b + c;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckerOptions options;
  options.max_states = 10;
  check::CheckResult result = system.Check(options);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(Checker, RuntimeErrorReported) {
  auto comp = Compile(R"esm(
void Up() {
  int x;
  int d;
  d = nondet(2);
  x = 4 / d;
}
)esm");
  check::CheckedSystem system;
  system.AddModule(comp->FindModule("Up"), "Up");
  check::CheckResult result = system.Check();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation->kind, check::ViolationKind::kRuntimeError);
}

// A native process that answers one request with value*2 and then parks.
class DoublerProcess : public check::NativeProcess {
 public:
  DoublerProcess(const esi::ChannelInfo* in, const esi::ChannelInfo* out)
      : NativeProcess("Doubler") {
    in_port_ = AddPort(in, /*is_send=*/false);
    out_port_ = AddPort(out, /*is_send=*/true);
    ResizeState(2);  // [phase, value]
    Reset();
  }

  bool AtValidEndState() const override { return current_state()[0] == 0; }

 protected:
  void InitState(std::vector<int32_t>& state) override { std::fill(state.begin(), state.end(), 0); }

  PendingOp ComputePending(const std::vector<int32_t>& state) const override {
    PendingOp op;
    if (state[0] == 0) {
      op.kind = vm::RunState::kBlockedRecv;
      op.port = in_port_;
    } else {
      op.kind = vm::RunState::kBlockedSend;
      op.port = out_port_;
      op.message = {state[1] * 2};
    }
    return op;
  }

  void OnRecv(int port, std::span<const int32_t> message,
              std::vector<int32_t>& state) override {
    state[1] = message[0];
    state[0] = 1;
  }

  void OnSendComplete(int port, std::vector<int32_t>& state) override { state[0] = 0; }

 private:
  int in_port_ = -1;
  int out_port_ = -1;
};

TEST(Checker, NativeProcessInterops) {
  auto comp = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(21);
  assert(r.r == 42);
}
)esm");
  check::CheckedSystem system;
  int up = system.AddModule(comp->FindModule("Up"), "Up");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  int doubler = system.AddProcess(std::make_unique<DoublerProcess>(to_down, to_up));
  system.ConnectByChannel(up, doubler, to_down);
  system.ConnectByChannel(doubler, up, to_up);
  check::CheckResult result = system.Check();
  EXPECT_TRUE(result.ok) << (result.violation.has_value() ? result.violation->message : "");
}

}  // namespace
}  // namespace efeu
