// End-to-end validation of the C backend: generate the controller stack as C
// (top-down driver library, Figure 5), compile it with the system's C
// compiler, load it with dlopen, plug a bus-adapter hook underneath
// (the "boilerplate written by user"), and run real EEPROM operations
// through the *generated C code* against the simulated open-drain bus and
// the behavioural 24AA512 — the strongest possible check that the generated
// driver is not just well-formed but correct.

#include <dlfcn.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/codegen/c/c_backend.h"
#include "src/i2c/stack.h"
#include "src/rtl/system.h"
#include "src/sim/eeprom.h"
#include "src/sim/i2c_bus.h"

namespace efeu {
namespace {

// The bus world the generated C drives through its Electrical_step hook.
struct BusWorld {
  sim::I2cBus bus;
  int driver_id = -1;
  rtl::RtlSystem rtl;
  std::unique_ptr<sim::Eeprom24aa512> eeprom;
};

BusWorld* g_world = nullptr;

extern "C" void ElecHook(int scl, int sda, int* out_scl, int* out_sda) {
  // One bus half cycle: drive the levels, let the device observe them for a
  // hold period, then sample the combined lines.
  g_world->bus.SetDriver(g_world->driver_id, scl != 0, sda != 0);
  for (int i = 0; i < 50; ++i) {
    g_world->rtl.Tick();
  }
  *out_scl = g_world->bus.scl() ? 1 : 0;
  *out_sda = g_world->bus.sda() ? 1 : 0;
}

constexpr const char* kHarnessC = R"c(
#include "efeu_gen.h"

typedef void (*efeu_elec_hook_t)(int scl, int sda, int* out_scl, int* out_sda);
efeu_elec_hook_t efeu_elec_hook;

/* The user-provided bus-driving boilerplate under the generated stack. */
void Electrical_step(struct CSymbolToElectrical _in, struct ElectricalToCSymbol* _out) {
  int scl;
  int sda;
  efeu_elec_hook(_in.scl, _in.sda, &scl, &sda);
  _out->scl = (bit)scl;
  _out->sda = (bit)sda;
}

/* Plain-int ABI wrapper so the test does not depend on struct layout. */
void efeu_test_op(int action, int dev, int offset, int length, const unsigned char* data,
                  int* res, int* rlen, unsigned char* rdata) {
  struct CWorldToCEepDriver in;
  struct CEepDriverToCWorld out;
  int i;
  for (i = 0; i < 16; ++i) {
    in.data[i] = data != 0 ? data[i] : 0;
    out.data[i] = 0;
  }
  in.action = (enum CEAction)action;
  in.dev = (byte)dev;
  in.offset = (short)offset;
  in.length = (byte)length;
  out.res = CE_RES_FAIL;
  out.length = 0;
  CEepDriver_invoke(in, &out);
  *res = (int)out.res;
  *rlen = (int)out.length;
  for (i = 0; i < 16; ++i) {
    rdata[i] = out.data[i];
  }
}
)c";

class GeneratedCDriver : public ::testing::Test {
 protected:
  void SetUp() override {
    // Generate the C driver library.
    DiagnosticEngine diag;
    compilation_ = i2c::CompileControllerStack(diag);
    ASSERT_NE(compilation_, nullptr) << diag.RenderAll();
    codegen::COutput output = codegen::GenerateC(*compilation_, "CEepDriver");

    char tmpl[] = "/tmp/efeu_gen_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    WriteFile("efeu_gen.h", output.header);
    std::string sources;
    for (const auto& [layer, text] : output.layers) {
      WriteFile(layer + ".c", text);
      sources += dir_ + "/" + layer + ".c ";
    }
    WriteFile("harness.c", kHarnessC);
    sources += dir_ + "/harness.c";

    // Compile with the system C compiler; warnings surfaced but not fatal.
    std::string command = "cc -std=c99 -Wall -O1 -shared -fPIC -I" + dir_ + " -o " + dir_ +
                          "/libgen.so " + sources + " 2>" + dir_ + "/cc.log";
    int rc = std::system(command.c_str());
    if (rc != 0) {
      std::ifstream log(dir_ + "/cc.log");
      std::string line;
      std::string all;
      while (std::getline(log, line)) {
        all += line + "\n";
      }
      FAIL() << "generated C failed to compile:\n" << all;
    }

    handle_ = dlopen((dir_ + "/libgen.so").c_str(), RTLD_NOW);
    ASSERT_NE(handle_, nullptr) << dlerror();
    op_ = reinterpret_cast<OpFn>(dlsym(handle_, "efeu_test_op"));
    ASSERT_NE(op_, nullptr);
    auto* hook = reinterpret_cast<void (**)(int, int, int*, int*)>(
        dlsym(handle_, "efeu_elec_hook"));
    ASSERT_NE(hook, nullptr);
    *hook = &ElecHook;

    // Stand up the bus world.
    world_ = std::make_unique<BusWorld>();
    world_->driver_id = world_->bus.AddDriver();
    sim::EepromConfig config;
    config.write_cycle_ns = 20000;
    world_->eeprom = std::make_unique<sim::Eeprom24aa512>(&world_->bus, config);
    world_->rtl.AddComponent(world_->eeprom.get());
    g_world = world_.get();
  }

  void TearDown() override {
    g_world = nullptr;
    if (handle_ != nullptr) {
      dlclose(handle_);
    }
    if (!dir_.empty()) {
      std::string cleanup = "rm -rf " + dir_;
      (void)std::system(cleanup.c_str());
    }
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ + "/" + name);
    out << content;
  }

  struct OpResult {
    int res = -1;
    int length = 0;
    unsigned char data[16] = {};
  };

  OpResult Invoke(int action, int dev, int offset, int length, const unsigned char* data) {
    OpResult result;
    op_(action, dev, offset, length, data, &result.res, &result.length, result.data);
    return result;
  }

  using OpFn = void (*)(int, int, int, int, const unsigned char*, int*, int*, unsigned char*);

  std::unique_ptr<ir::Compilation> compilation_;
  std::string dir_;
  void* handle_ = nullptr;
  OpFn op_ = nullptr;
  std::unique_ptr<BusWorld> world_;
};

constexpr int kActWrite = 0;  // CE_ACT_WRITE
constexpr int kActRead = 1;   // CE_ACT_READ
constexpr int kResOk = 0;     // CE_RES_OK

TEST_F(GeneratedCDriver, ReadsPreloadedBytes) {
  for (int i = 0; i < 8; ++i) {
    world_->eeprom->Preload(0x40 + i, static_cast<uint8_t>(0xC0 + i));
  }
  OpResult result = Invoke(kActRead, 0x50, 0x40, 8, nullptr);
  ASSERT_EQ(result.res, kResOk);
  ASSERT_EQ(result.length, 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(result.data[i], 0xC0 + i) << "byte " << i;
  }
}

TEST_F(GeneratedCDriver, WriteThenReadBack) {
  unsigned char payload[16] = {0x11, 0x22, 0x33, 0x44, 0x55};
  OpResult write_result = Invoke(kActWrite, 0x50, 0x0200, 5, payload);
  ASSERT_EQ(write_result.res, kResOk);
  // Device memory updated on the device side.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(world_->eeprom->MemoryAt(0x0200 + i), payload[i]);
  }
  // The device is busy after the STOP; retry until it acknowledges again.
  OpResult read_result;
  for (int attempt = 0; attempt < 200; ++attempt) {
    read_result = Invoke(kActRead, 0x50, 0x0200, 5, nullptr);
    if (read_result.res == kResOk) {
      break;
    }
  }
  ASSERT_EQ(read_result.res, kResOk);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read_result.data[i], payload[i]) << "byte " << i;
  }
}

TEST_F(GeneratedCDriver, NackFromEmptyAddress) {
  OpResult result = Invoke(kActRead, 0x31, 0, 1, nullptr);
  EXPECT_NE(result.res, kResOk);  // CE_RES_NACK: nobody answers at 0x31
}

TEST_F(GeneratedCDriver, BackToBackOperationsKeepFsmStateConsistent) {
  // The generated library keeps its FSM state in statics; consecutive
  // operations must not interfere.
  for (int round = 0; round < 3; ++round) {
    unsigned char payload[16] = {static_cast<unsigned char>(0xA0 + round)};
    OpResult write_result = Invoke(kActWrite, 0x50, round, 1, payload);
    ASSERT_EQ(write_result.res, kResOk) << "round " << round;
    OpResult read_result;
    for (int attempt = 0; attempt < 200; ++attempt) {
      read_result = Invoke(kActRead, 0x50, round, 1, nullptr);
      if (read_result.res == kResOk) {
        break;
      }
    }
    ASSERT_EQ(read_result.res, kResOk) << "round " << round;
    EXPECT_EQ(read_result.data[0], 0xA0 + round);
  }
}

}  // namespace
}  // namespace efeu
