// SPI extension tests (paper section 7 future work): the mode-0 stack
// verifies at both levels; the mode-1 (CPHA mismatch) controller is caught
// by the byte-level verifier — a second protocol expressed entirely in the
// same ESI/ESM languages and checked by the same model checker.

#include <gtest/gtest.h>

#include "src/spi/verify.h"

namespace efeu::spi {
namespace {

std::string Describe(const SpiVerifyResult& result) {
  std::string out;
  if (result.safety.violation.has_value()) {
    out += "safety: " + result.safety.violation->message + "\n";
    for (const std::string& step : result.safety.violation->trace) {
      out += "  " + step + "\n";
    }
  }
  if (result.liveness.violation.has_value()) {
    out += "liveness: " + result.liveness.violation->message;
  }
  return out;
}

TEST(SpiVerifier, ByteLevelPasses) {
  SpiVerifyConfig config;
  config.level = SpiVerifyLevel::kByte;
  config.num_ops = 2;
  DiagnosticEngine diag;
  SpiVerifyResult result = RunSpiVerification(config, diag);
  ASSERT_FALSE(diag.HasErrors()) << diag.RenderAll();
  EXPECT_TRUE(result.ok) << Describe(result);
  EXPECT_GT(result.safety.states_stored, 0u);
}

TEST(SpiVerifier, DriverLevelPasses) {
  SpiVerifyConfig config;
  config.level = SpiVerifyLevel::kDriver;
  config.num_ops = 2;
  DiagnosticEngine diag;
  SpiVerifyResult result = RunSpiVerification(config, diag);
  ASSERT_FALSE(diag.HasErrors()) << diag.RenderAll();
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(SpiVerifier, Mode1ControllerFailsByteLevel) {
  // The clock-phase mismatch: a mode-1 controller against the mode-0 device
  // corrupts bytes in both directions; the verifier catches it.
  SpiVerifyConfig config;
  config.level = SpiVerifyLevel::kByte;
  config.num_ops = 1;
  config.mode1_controller = true;
  DiagnosticEngine diag;
  SpiVerifyResult result = RunSpiVerification(config, diag);
  ASSERT_FALSE(diag.HasErrors()) << diag.RenderAll();
  EXPECT_FALSE(result.ok);
}

TEST(SpiVerifier, Mode1ControllerFailsDriverLevel) {
  SpiVerifyConfig config;
  config.level = SpiVerifyLevel::kDriver;
  config.num_ops = 2;
  config.mode1_controller = true;
  DiagnosticEngine diag;
  SpiVerifyResult result = RunSpiVerification(config, diag);
  ASSERT_FALSE(diag.HasErrors()) << diag.RenderAll();
  EXPECT_FALSE(result.ok);
}

// Regression: RunSpiVerification used to ignore caller options entirely
// (building fresh CheckerOptions for both passes), unlike the I2C runner. A
// caller-supplied state budget must reach both checker passes.
TEST(SpiVerifier, BaseOptionsReachThePasses) {
  SpiVerifyConfig config;
  config.level = SpiVerifyLevel::kByte;
  config.num_ops = 2;
  check::CheckerOptions base;
  base.max_states = 5;
  DiagnosticEngine diag;
  SpiVerifyResult result = RunSpiVerification(config, diag, base);
  ASSERT_FALSE(diag.HasErrors()) << diag.RenderAll();
  EXPECT_TRUE(result.safety.budget_exhausted);
  EXPECT_LE(result.safety.states_stored, 5u);
  EXPECT_TRUE(result.liveness.budget_exhausted);
}

TEST(SpiVerifier, ParallelMatchesSequentialAcrossCphaQuirk) {
  for (bool mode1 : {false, true}) {
    SpiVerifyConfig config;
    config.level = SpiVerifyLevel::kByte;
    config.num_ops = 2;
    config.mode1_controller = mode1;
    // Count equality between the engines only holds for the unreduced
    // search: the sequential DFS and the parallel engine use different cycle
    // provisos, so POR may reduce them differently (verdict equivalence with
    // POR on is covered by the por/collapse equivalence suite).
    check::CheckerOptions unreduced;
    unreduced.por = false;
    DiagnosticEngine diag;
    SpiVerifyResult sequential = RunSpiVerification(config, diag, unreduced);
    check::CheckerOptions base;
    base.num_threads = 4;
    base.por = false;
    DiagnosticEngine diag2;
    SpiVerifyResult parallel = RunSpiVerification(config, diag2, base);
    EXPECT_EQ(sequential.ok, parallel.ok) << "mode1=" << mode1;
    EXPECT_EQ(sequential.safety.ok, parallel.safety.ok) << "mode1=" << mode1;
    if (sequential.safety.ok) {
      EXPECT_EQ(sequential.safety.states_stored, parallel.safety.states_stored);
      EXPECT_EQ(sequential.safety.transitions, parallel.safety.transitions);
    } else {
      ASSERT_TRUE(parallel.safety.violation.has_value());
      EXPECT_EQ(sequential.safety.violation->kind, parallel.safety.violation->kind);
    }
  }
}

TEST(SpiVerifier, DeterministicStateCounts) {
  SpiVerifyConfig config;
  config.level = SpiVerifyLevel::kByte;
  config.num_ops = 1;
  uint64_t states[2];
  for (int round = 0; round < 2; ++round) {
    DiagnosticEngine diag;
    auto vs = BuildSpiVerifier(config, diag);
    ASSERT_NE(vs, nullptr) << diag.RenderAll();
    check::CheckResult result = vs->system().Check();
    ASSERT_TRUE(result.ok);
    states[round] = result.states_stored;
  }
  EXPECT_EQ(states[0], states[1]);
}

}  // namespace
}  // namespace efeu::spi
