// Additional coverage: executor invariants at blocking points, checker
// interleaving over concurrent channels, generated-text well-formedness
// properties, and smaller utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "src/check/checker.h"
#include "src/codegen/common/expr_printer.h"
#include "src/codegen/mmio/mmio_backend.h"
#include "src/codegen/promela/promela_backend.h"
#include "src/codegen/verilog/verilog_backend.h"
#include "src/esm/preprocessor.h"
#include <sstream>
#include "src/i2c/stack.h"
#include "src/ir/compile.h"
#include "src/sim/waveform.h"
#include "src/vm/system.h"

namespace efeu {
namespace {

// ---------------------------------------------------------------------------
// Executor: staged message survives a snapshot taken while blocked at a send.
// ---------------------------------------------------------------------------

TEST(Executor, StagedSendSurvivesSnapshotRestore) {
  DiagnosticEngine diag;
  auto comp = ir::Compile(
      "layer A; layer B; interface <A, B> { => { i32 x; i32 y; }, <= { i32 r; } };",
      "void A() { BToA v; v = ATalkB(11, 22); }", diag);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  vm::IrExecutor executor(comp->FindModule("A"));
  executor.Run();
  ASSERT_EQ(executor.state(), vm::RunState::kBlockedSend);
  std::vector<int32_t> staged(executor.pending_message().begin(),
                              executor.pending_message().end());
  EXPECT_EQ(staged, (std::vector<int32_t>{11, 22}));

  // Snapshot while blocked at the send (temps are canonicalized; the staging
  // area must not be).
  std::vector<int32_t> snapshot(executor.SnapshotSize());
  executor.Snapshot(snapshot);
  vm::IrExecutor other(comp->FindModule("A"));
  other.Restore(snapshot);
  ASSERT_EQ(other.state(), vm::RunState::kBlockedSend);
  std::vector<int32_t> staged2(other.pending_message().begin(),
                               other.pending_message().end());
  EXPECT_EQ(staged2, staged);
}

// ---------------------------------------------------------------------------
// Checker: two independent rendezvous pairs are explored in both orders but
// converge (the visited set collapses the commuting interleavings).
// ---------------------------------------------------------------------------

TEST(CheckerInterleaving, ConcurrentPairsConverge) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = true;
  auto comp = ir::Compile(
      R"esi(
layer A; layer B; layer C; layer D;
interface <A, B> { => { i32 v; }, <= { i32 r; } };
interface <C, D> { => { i32 v; }, <= { i32 r; } };
)esi",
      R"esm(
void A() { BToA r; r = ATalkB(1); assert(r.r == 2); }
void B() {
  AToB q;
  end_i: q = BReadA();
  end_r: q = BTalkA(q.v + 1);
  goto end_r;
}
void C() { DToC r; r = CTalkD(5); assert(r.r == 10); }
void D() {
  CToD q;
  end_i: q = DReadC();
  end_r: q = DTalkC(q.v * 2);
  goto end_r;
}
)esm",
      diag, options);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  check::CheckedSystem system;
  int a = system.AddModule(comp->FindModule("A"), "A");
  int b = system.AddModule(comp->FindModule("B"), "B");
  int c = system.AddModule(comp->FindModule("C"), "C");
  int d = system.AddModule(comp->FindModule("D"), "D");
  system.ConnectByChannel(a, b, comp->system().FindChannel("A", "B"));
  system.ConnectByChannel(b, a, comp->system().FindChannel("B", "A"));
  system.ConnectByChannel(c, d, comp->system().FindChannel("C", "D"));
  system.ConnectByChannel(d, c, comp->system().FindChannel("D", "C"));
  check::CheckerOptions unreduced;
  unreduced.por = false;
  check::CheckResult result = system.Check(unreduced);
  EXPECT_TRUE(result.ok);
  // Both interleavings of the two independent transfers were tried: more
  // transitions than a single linear execution would take (4).
  EXPECT_GT(result.transitions, 4u);

  // Partial-order reduction recognizes the two pairs as independent and
  // explores only one interleaving, with the same verdict.
  system.ResetAll();
  check::CheckResult reduced = system.Check();
  EXPECT_TRUE(reduced.ok);
  EXPECT_LT(reduced.transitions, result.transitions);
}

// ---------------------------------------------------------------------------
// Preprocessor: nested includes and re-includes.
// ---------------------------------------------------------------------------

TEST(PreprocessorNesting, IncludeWithinInclude) {
  esm::Preprocessor pp;
  pp.AddInclude("inner", "leaf\n");
  pp.AddInclude("outer", "#include \"inner\"\nmiddle\n");
  std::string error;
  auto out = pp.Process("#include \"outer\"\ntop\n", &error);
  ASSERT_TRUE(out.has_value()) << error;
  EXPECT_LT(out->find("leaf"), out->find("middle"));
  EXPECT_LT(out->find("middle"), out->find("top"));
}

TEST(PreprocessorNesting, MacroDefinedInIncludeVisibleAfter) {
  esm::Preprocessor pp;
  pp.AddInclude("defs", "#define WIDTH 8\n");
  std::string error;
  auto out = pp.Process("#include \"defs\"\nx = WIDTH;\n", &error);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->find("x = 8;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Expression printer.
// ---------------------------------------------------------------------------

TEST(ExprPrinter, RoundTripsThroughGeneratedPromela) {
  // Build an expression-heavy layer and verify the printed Promela contains
  // faithfully parenthesized expressions.
  DiagnosticEngine diag;
  ir::CompileOptions options;
  auto comp = ir::Compile(
      "layer A; layer B; interface <A, B> { => { i32 v; }, <= { i32 r; } };",
      R"esm(
void A() {
  int x;
  int y;
  x = (1 + 2) * 3 - (4 >> 1);
  y = ~x & (x | 7) ^ 1;
  if (x < y && !(y == 0)) {
    x = -y;
  }
  BToA r;
  r = ATalkB(x);
}
)esm",
      diag, options);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  const std::string& text = out.layers.at("A");
  EXPECT_NE(text.find("((1 + 2) * 3) - (4 >> 1)"), std::string::npos);
  EXPECT_NE(text.find("(x < y) && (!(y == 0))"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Generated-text well-formedness properties across all layers.
// ---------------------------------------------------------------------------

int Balance(const std::string& text, char open, char close) {
  int depth = 0;
  for (char c : text) {
    if (c == open) {
      ++depth;
    } else if (c == close) {
      --depth;
    }
  }
  return depth;
}

TEST(GeneratedText, PromelaBracesBalanceInEveryLayer) {
  DiagnosticEngine diag;
  auto comp = i2c::CompileControllerStack(diag);
  ASSERT_NE(comp, nullptr);
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  for (const auto& [layer, text] : out.layers) {
    EXPECT_EQ(Balance(text, '{', '}'), 0) << layer;
    EXPECT_EQ(Balance(text, '(', ')'), 0) << layer;
  }
  EXPECT_EQ(Balance(out.shared, '{', '}'), 0);
}

TEST(GeneratedText, PromelaIfFiAndDoOdBalance) {
  DiagnosticEngine diag;
  auto comp = i2c::CompileControllerStack(diag);
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  for (const auto& [layer, text] : out.layers) {
    size_t ifs = 0;
    size_t fis = 0;
    size_t dos = 0;
    size_t ods = 0;
    for (size_t pos = 0; (pos = text.find("\n", pos)) != std::string::npos; ++pos) {
      std::string_view rest = std::string_view(text).substr(pos + 1);
      // Count statement-leading keywords only (indented lines).
      size_t start = rest.find_first_not_of(' ');
      if (start == std::string_view::npos) {
        continue;
      }
      rest = rest.substr(start);
      if (rest.rfind("if\n", 0) == 0 || rest.rfind("if ", 0) == 0) {
        ++ifs;
      } else if (rest.rfind("fi;", 0) == 0) {
        ++fis;
      } else if (rest.rfind("do\n", 0) == 0) {
        ++dos;
      } else if (rest.rfind("od;", 0) == 0) {
        ++ods;
      }
    }
    EXPECT_EQ(ifs, fis) << layer;
    EXPECT_EQ(dos, ods) << layer;
  }
}

TEST(GeneratedText, VerilogBeginEndBalanceInEveryModule) {
  DiagnosticEngine diag;
  auto comp = i2c::CompileControllerStack(diag);
  auto out = codegen::GenerateVerilog(*comp);
  for (const auto& [layer, text] : out.modules) {
    // Count whole-word begin/end tokens.
    int begins = 0;
    int ends = 0;
    std::istringstream stream(text);
    std::string token;
    while (stream >> token) {
      if (token == "begin") {
        ++begins;
      } else if (token == "end") {
        ++ends;
      }
    }
    EXPECT_EQ(begins, ends) << layer;
    EXPECT_NE(text.find("endmodule"), std::string::npos) << layer;
  }
}

TEST(GeneratedText, MmioRegistersNeverOverlap) {
  DiagnosticEngine diag;
  auto comp = i2c::CompileControllerStack(diag);
  const esi::ChannelInfo* down = comp->system().FindChannel("CEepDriver", "CTransaction");
  const esi::ChannelInfo* up = comp->system().FindChannel("CTransaction", "CEepDriver");
  codegen::MmioOutput out = codegen::GenerateMmio("X", down, up);
  std::vector<std::pair<int, int>> ranges;  // offset, bytes
  ranges.push_back({out.map.status_offset, 4});
  for (const auto& reg : out.map.down_data) {
    ranges.push_back({reg.offset, 4 * reg.word_count});
  }
  ranges.push_back({out.map.down_valid_offset, 4});
  ranges.push_back({out.map.down_ready_offset, 4});
  for (const auto& reg : out.map.up_data) {
    ranges.push_back({reg.offset, 4 * reg.word_count});
  }
  ranges.push_back({out.map.up_valid_offset, 4});
  ranges.push_back({out.map.up_ready_offset, 4});
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      bool disjoint = ranges[i].first + ranges[i].second <= ranges[j].first ||
                      ranges[j].first + ranges[j].second <= ranges[i].first;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
  EXPECT_LE(ranges.back().first + 4, out.map.total_bytes);
}

// ---------------------------------------------------------------------------
// Waveform edge cases.
// ---------------------------------------------------------------------------

TEST(WaveformEdge, EmptyCapture) {
  std::vector<sim::I2cBus::Sample> samples;
  sim::FrequencyStats stats = sim::AnalyzeSclFrequency(samples);
  EXPECT_EQ(stats.edge_count, 0);
  EXPECT_EQ(stats.mean_khz, 0);
  EXPECT_EQ(sim::RenderAsciiWaveform(samples, 1000), "(no samples)\n");
}

TEST(WaveformEdge, SingleEdgeNoFrequency) {
  std::vector<sim::I2cBus::Sample> samples = {{0, false, true}, {100, true, true}};
  sim::FrequencyStats stats = sim::AnalyzeSclFrequency(samples);
  EXPECT_EQ(stats.edge_count, 1);
  EXPECT_EQ(stats.mean_khz, 0);
}

// Two rising edges with coincident timestamps: every period is zero-length,
// so no frequency is measurable. This used to divide by zero and report NaN.
TEST(WaveformEdge, CoincidentEdgesNoFrequency) {
  std::vector<sim::I2cBus::Sample> samples = {
      {100, false, true}, {100, true, true}, {100, false, true}, {100, true, true}};
  sim::FrequencyStats stats = sim::AnalyzeSclFrequency(samples);
  EXPECT_EQ(stats.edge_count, 2);
  EXPECT_EQ(stats.mean_khz, 0);
  EXPECT_EQ(stats.stddev_khz, 0);
  EXPECT_FALSE(std::isnan(stats.mean_khz));
}

TEST(WaveformEdge, DegenerateRenderWindow) {
  std::vector<sim::I2cBus::Sample> samples = {{0, true, true}};
  EXPECT_EQ(sim::RenderAsciiWaveform(samples, 1000, 0), "(empty window)\n");
  EXPECT_EQ(sim::RenderAsciiWaveform(samples, 0, 100), "(empty window)\n");
  EXPECT_EQ(sim::RenderAsciiWaveform(samples, -5, -1), "(empty window)\n");
  // A real window still renders one row per signal.
  std::string rendered = sim::RenderAsciiWaveform(samples, 1000, 10);
  EXPECT_NE(rendered.find("SCL"), std::string::npos);
  EXPECT_NE(rendered.find("SDA"), std::string::npos);
}

// ---------------------------------------------------------------------------
// vm::System bounded transfers.
// ---------------------------------------------------------------------------

TEST(VmSystemBudget, MaxTransfersStopsEarly) {
  DiagnosticEngine diag;
  auto comp = ir::Compile(
      "layer A; layer B; interface <A, B> { => { i32 v; }, <= { i32 r; } };",
      R"esm(
void A() {
  BToA r;
  spin:
  r = ATalkB(1);
  goto spin;
}
void B() {
  AToB q;
  end_i: q = BReadA();
  end_r: q = BTalkA(2);
  goto end_r;
}
)esm",
      diag);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  vm::System system;
  int a = system.AddProcess(comp->FindModule("A"), "A");
  int b = system.AddProcess(comp->FindModule("B"), "B");
  const esi::ChannelInfo* ab = comp->system().FindChannel("A", "B");
  const esi::ChannelInfo* ba = comp->system().FindChannel("B", "A");
  system.Connect(system.FindPort(a, ab, true), system.FindPort(b, ab, false));
  system.Connect(system.FindPort(b, ba, true), system.FindPort(a, ba, false));
  EXPECT_EQ(system.Run(/*max_transfers=*/10), vm::SystemState::kRunning);
}

}  // namespace
}  // namespace efeu
