// Unit tests for the ESI frontend: lexing, parsing, and semantic analysis of
// layer/enum/interface declarations.

#include <gtest/gtest.h>

#include "src/esi/parser.h"
#include "src/esi/system_info.h"

namespace efeu::esi {
namespace {

std::optional<SystemInfo> Build(const std::string& text, std::string* errors = nullptr) {
  SourceBuffer buffer("test.esi", text);
  DiagnosticEngine diag;
  std::optional<EsiFile> file = ParseEsi(buffer, diag);
  if (!file.has_value()) {
    if (errors != nullptr) {
      *errors = diag.RenderAll();
    }
    return std::nullopt;
  }
  std::optional<SystemInfo> info = SystemInfo::Build(*file, buffer, diag);
  if (!info.has_value() && errors != nullptr) {
    *errors = diag.RenderAll();
  }
  return info;
}

constexpr const char* kBasic = R"esi(
layer A;
layer B;
enum Op { OP_X, OP_Y, };
interface <A, B> {
  => { Op op; u8 value; u8 data[4]; },
  <= { bit done; }
};
)esi";

TEST(EsiParser, ParsesLayersEnumsInterfaces) {
  std::string errors;
  auto info = Build(kBasic, &errors);
  ASSERT_TRUE(info.has_value()) << errors;
  EXPECT_EQ(info->layers().size(), 2u);
  EXPECT_EQ(info->enums().size(), 1u);
  EXPECT_EQ(info->interfaces().size(), 1u);
}

TEST(EsiParser, CommentsAreSkipped) {
  auto info = Build("// comment\nlayer A; /* block\ncomment */ layer B;\n");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->layers().size(), 2u);
}

TEST(EsiSema, ChannelLayoutFlattensArrays) {
  auto info = Build(kBasic);
  ASSERT_TRUE(info.has_value());
  const ChannelInfo* channel = info->FindChannel("A", "B");
  ASSERT_NE(channel, nullptr);
  EXPECT_EQ(channel->flat_size, 6);  // op + value + data[4]
  const FieldInfo* data = channel->FindField("data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->flat_offset, 2);
  EXPECT_EQ(data->type.array_size, 4);
}

TEST(EsiSema, DirectedChannelLookup) {
  auto info = Build(kBasic);
  ASSERT_TRUE(info.has_value());
  EXPECT_NE(info->FindChannel("A", "B"), nullptr);
  ASSERT_NE(info->FindChannel("B", "A"), nullptr);
  EXPECT_EQ(info->FindChannel("B", "A")->flat_size, 1);
  EXPECT_EQ(info->FindChannel("A", "C"), nullptr);
}

TEST(EsiSema, MessageStructNames) {
  auto info = Build(kBasic);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->FindChannel("A", "B")->MessageStructName(), "AToB");
  EXPECT_NE(info->FindChannelByStructName("BToA"), nullptr);
  EXPECT_EQ(info->FindChannelByStructName("CToA"), nullptr);
}

TEST(EsiSema, EnumMemberLookupIsGlobal) {
  auto info = Build(kBasic);
  ASSERT_TRUE(info.has_value());
  int value = -1;
  const EnumInfo* e = info->FindEnumByMember("OP_Y", &value);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->name, "Op");
  EXPECT_EQ(value, 1);
}

TEST(EsiSema, Neighbors) {
  auto info = Build(kBasic);
  ASSERT_TRUE(info.has_value());
  auto neighbors = info->Neighbors("A");
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], "B");
}

TEST(EsiSema, RejectsDuplicateLayer) {
  EXPECT_FALSE(Build("layer A;\nlayer A;\n").has_value());
}

TEST(EsiSema, RejectsUndeclaredInterfaceEndpoint) {
  EXPECT_FALSE(Build("layer A;\ninterface <A, B> { => { bit x; } };\n").has_value());
}

TEST(EsiSema, RejectsSelfInterface) {
  EXPECT_FALSE(Build("layer A;\ninterface <A, A> { => { bit x; } };\n").has_value());
}

TEST(EsiSema, RejectsDuplicateEnumMemberAcrossEnums) {
  EXPECT_FALSE(Build("layer A;\nenum E1 { M };\nenum E2 { M };\n").has_value());
}

TEST(EsiSema, RejectsUnknownFieldType) {
  EXPECT_FALSE(
      Build("layer A; layer B;\ninterface <A, B> { => { Wat x; } };\n").has_value());
}

TEST(EsiSema, RejectsDuplicateFieldName) {
  EXPECT_FALSE(
      Build("layer A; layer B;\ninterface <A, B> { => { bit x; bit x; } };\n").has_value());
}

TEST(EsiSema, RejectsReservedFieldName) {
  EXPECT_FALSE(
      Build("layer A; layer B;\ninterface <A, B> { => { u8 len; } };\n").has_value());
}

TEST(EsiSema, RejectsTwoChannelsSameDirection) {
  EXPECT_FALSE(
      Build("layer A; layer B;\ninterface <A, B> { => { bit x; }, => { bit y; } };\n")
          .has_value());
}

TEST(EsiParser, RejectsGarbage) { EXPECT_FALSE(Build("layer ;").has_value()); }

TEST(EsiParser, RejectsHugeArray) {
  EXPECT_FALSE(
      Build("layer A; layer B;\ninterface <A, B> { => { u8 d[9999]; } };\n").has_value());
}

TEST(EsiType, TruncationSemantics) {
  EXPECT_EQ(Type::U8().Truncate(0x1FF), 0xFF);
  EXPECT_EQ(Type::I16().Truncate(0x18000), -32768);
  EXPECT_EQ(Type::Bit().Truncate(7), 1);
  EXPECT_EQ(Type::Bool().Truncate(0), 0);
  EXPECT_EQ(Type::I32().Truncate(-5), -5);
}

TEST(EsiType, BitWidths) {
  EXPECT_EQ(Type::Bit().BitWidth(), 1);
  EXPECT_EQ(Type::U8().BitWidth(), 8);
  EXPECT_EQ(Type::I16().BitWidth(), 16);
  EXPECT_EQ(Type::I32().BitWidth(), 32);
  EXPECT_EQ(Type::Enum("E").BitWidth(), 8);
}

TEST(EsiType, FlatSizeAndToString) {
  Type array = Type::U8().Array(4);
  EXPECT_EQ(array.FlatSize(), 4);
  EXPECT_EQ(array.ToString(), "u8[4]");
  EXPECT_EQ(array.Element().ToString(), "u8");
}

}  // namespace
}  // namespace efeu::esi
