// Unit tests for the IR lowering and the software VM: arithmetic semantics,
// truncation, arrays, control flow, rendezvous communication, end states,
// snapshots, and the cooperative scheduler.

#include <gtest/gtest.h>

#include "src/ir/compile.h"
#include "src/ir/dump.h"
#include "src/ir/segment.h"
#include "src/vm/system.h"

namespace efeu {
namespace {

constexpr const char* kEsi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 a; i32 b; u8 arr[3]; },
  <= { i32 r; u8 echo[3]; }
};
)esi";

std::unique_ptr<ir::Compilation> Compile(const std::string& esm, bool verifier = true) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = verifier;
  auto comp = ir::Compile(kEsi, esm, diag, options);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

// Runs a single self-contained layer to completion and returns its frame
// slot value for variable `name`.
int32_t RunAndInspect(const std::string& body, const std::string& name) {
  auto comp = Compile("void Up() {\n" + body + "\n}");
  if (comp == nullptr) {
    return INT32_MIN;
  }
  const ir::Module* module = comp->FindModule("Up");
  vm::IrExecutor executor(module);
  executor.Run();
  EXPECT_EQ(executor.state(), vm::RunState::kHalted) << executor.error();
  for (const ir::SlotInfo& slot : module->slots) {
    if (slot.name == name) {
      return executor.frame()[slot.offset];
    }
  }
  ADD_FAILURE() << "no slot " << name;
  return INT32_MIN;
}

// ---------------------------------------------------------------------------
// Expression semantics
// ---------------------------------------------------------------------------

TEST(IrVm, Arithmetic) {
  EXPECT_EQ(RunAndInspect("int x; x = 2 + 3 * 4;", "x"), 14);
  EXPECT_EQ(RunAndInspect("int x; x = (2 + 3) * 4;", "x"), 20);
  EXPECT_EQ(RunAndInspect("int x; x = 17 % 5;", "x"), 2);
  EXPECT_EQ(RunAndInspect("int x; x = 17 / 5;", "x"), 3);
  EXPECT_EQ(RunAndInspect("int x; x = -7;", "x"), -7);
}

TEST(IrVm, BitOperations) {
  EXPECT_EQ(RunAndInspect("int x; x = (0xF0 | 0x0F) & 0x3C;", "x"), 0x3C);
  EXPECT_EQ(RunAndInspect("int x; x = 0xFF ^ 0x0F;", "x"), 0xF0);
  EXPECT_EQ(RunAndInspect("int x; x = ~0;", "x"), -1);
  EXPECT_EQ(RunAndInspect("int x; x = 1 << 7;", "x"), 128);
  EXPECT_EQ(RunAndInspect("int x; x = 0x80 >> 4;", "x"), 8);
}

TEST(IrVm, ComparisonsAndLogic) {
  EXPECT_EQ(RunAndInspect("int x; x = 3 < 4;", "x"), 1);
  EXPECT_EQ(RunAndInspect("int x; x = 3 >= 4;", "x"), 0);
  EXPECT_EQ(RunAndInspect("int x; x = (1 == 1) && (2 != 3);", "x"), 1);
  EXPECT_EQ(RunAndInspect("int x; x = 0 || 0;", "x"), 0);
  EXPECT_EQ(RunAndInspect("int x; x = !5;", "x"), 0);
}

TEST(IrVm, ShortCircuitPreventsDivisionByZero) {
  EXPECT_EQ(RunAndInspect("int n; int x; n = 0; x = (n != 0) && (10 / n > 1);", "x"), 0);
  EXPECT_EQ(RunAndInspect("int n; int x; n = 0; x = (n == 0) || (10 / n > 1);", "x"), 1);
}

TEST(IrVm, ByteTruncation) {
  EXPECT_EQ(RunAndInspect("byte x; x = 0x1FF;", "x"), 0xFF);
  EXPECT_EQ(RunAndInspect("byte x; x = 255; x = x + 1;", "x"), 0);
  EXPECT_EQ(RunAndInspect("short x; x = 0x8000;", "x"), -32768);
  EXPECT_EQ(RunAndInspect("bit x; x = 4;", "x"), 1);
}

TEST(IrVm, ZeroInitializedLocals) {
  EXPECT_EQ(RunAndInspect("int x; int y; y = x;", "y"), 0);
}

TEST(IrVm, Arrays) {
  EXPECT_EQ(RunAndInspect(R"(
    byte a[5];
    int i;
    i = 0;
    while (i < 5) {
      a[i] = i * i;
      i = i + 1;
    }
    int x;
    x = a[3] + a[4];
  )",
                          "x"),
            25);
}

TEST(IrVm, WhileAndGoto) {
  EXPECT_EQ(RunAndInspect(R"(
    int x;
    x = 1;
    loop:
    x = x * 2;
    if (x < 100) {
      goto loop;
    }
  )",
                          "x"),
            128);
}

TEST(IrVm, IfElseChain) {
  EXPECT_EQ(RunAndInspect(R"(
    int x; int y;
    x = 2;
    if (x == 1) { y = 10; } else if (x == 2) { y = 20; } else { y = 30; }
  )",
                          "y"),
            20);
}

// ---------------------------------------------------------------------------
// Failure semantics
// ---------------------------------------------------------------------------

TEST(IrVm, DivisionByZeroIsRuntimeError) {
  auto comp = Compile("void Up() { int x; int z; x = 1 / z; }");
  vm::IrExecutor executor(comp->FindModule("Up"));
  executor.Run();
  EXPECT_EQ(executor.state(), vm::RunState::kRuntimeError);
  EXPECT_NE(executor.error().find("division by zero"), std::string::npos);
}

TEST(IrVm, OutOfBoundsIndexIsRuntimeError) {
  auto comp = Compile("void Up() { byte a[3]; int i; i = 5; a[i] = 1; }");
  vm::IrExecutor executor(comp->FindModule("Up"));
  executor.Run();
  EXPECT_EQ(executor.state(), vm::RunState::kRuntimeError);
  EXPECT_NE(executor.error().find("out of bounds"), std::string::npos);
}

TEST(IrVm, FailedAssertReported) {
  auto comp = Compile("void Up() { assert(1 == 2); }");
  vm::IrExecutor executor(comp->FindModule("Up"));
  executor.Run();
  EXPECT_EQ(executor.state(), vm::RunState::kAssertFailed);
}

TEST(IrVm, StepBudgetStopsRunawayLoop) {
  auto comp = Compile("void Up() { int x; loop: x = x + 1; goto loop; }");
  vm::IrExecutor executor(comp->FindModule("Up"));
  executor.Run(1000);
  EXPECT_EQ(executor.state(), vm::RunState::kRunnable);
  EXPECT_GE(executor.steps(), 1000u);
}

// ---------------------------------------------------------------------------
// Communication via vm::System
// ---------------------------------------------------------------------------

constexpr const char* kEchoPair = R"esm(
void Up() {
  DownToUp r;
  byte arr[3];
  arr[0] = 1;
  arr[1] = 2;
  arr[2] = 3;
  r = UpTalkDown(40, 2, arr);
  assert(r.r == 42);
  assert(r.echo[0] == 1);
  assert(r.echo[2] == 3);
}

void Down() {
  UpToDown q;
  byte out[3];
  int i;
  end_init:
  q = DownReadUp();
  i = 0;
  while (i < 3) {
    out[i] = q.arr[i];
    i = i + 1;
  }
  end_reply:
  q = DownTalkUp(q.a + q.b, out);
  goto end_reply;
}
)esm";

TEST(VmSystem, RendezvousTalkReadPair) {
  auto comp = Compile(kEchoPair);
  vm::System system;
  int up = system.AddProcess(comp->FindModule("Up"), "Up");
  int down = system.AddProcess(comp->FindModule("Down"), "Down");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  system.Connect(system.FindPort(up, to_down, true), system.FindPort(down, to_down, false));
  system.Connect(system.FindPort(down, to_up, true), system.FindPort(up, to_up, false));
  vm::SystemState state = system.Run();
  EXPECT_EQ(state, vm::SystemState::kQuiescent) << system.error();
  // Up halted after passing its asserts; Down waits for the next request.
  EXPECT_EQ(system.executor(up).state(), vm::RunState::kHalted);
  EXPECT_EQ(system.executor(down).state(), vm::RunState::kBlockedRecv);
  EXPECT_TRUE(system.executor(down).AtValidEndState());
}

TEST(VmSystem, ExternalPortsExchangeMessages) {
  auto comp = Compile(R"esm(
void Down() {
  UpToDown q;
  byte out[3];
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.a * q.b, out);
  goto end_reply;
}
)esm");
  vm::System system;
  int down = system.AddProcess(comp->FindModule("Down"), "Down");
  const esi::ChannelInfo* to_down = comp->system().FindChannel("Up", "Down");
  const esi::ChannelInfo* to_up = comp->system().FindChannel("Down", "Up");
  vm::PortRef in = system.FindPort(down, to_down, false);
  vm::PortRef out = system.FindPort(down, to_up, true);
  system.Run();
  std::vector<int32_t> request = {6, 7, 0, 0, 0};
  ASSERT_TRUE(system.DeliverMessage(in, request));
  system.Run();
  ASSERT_TRUE(system.WantsToSend(out));
  auto reply = system.TakeMessage(out);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[0], 42);
}

TEST(VmSystem, AssertFailurePropagates) {
  auto comp = Compile("void Up() { assert(false); }");
  vm::System system;
  system.AddProcess(comp->FindModule("Up"), "Up");
  EXPECT_EQ(system.Run(), vm::SystemState::kFailed);
  EXPECT_NE(system.error().find("assertion failed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshots & dumps & segmentation
// ---------------------------------------------------------------------------

TEST(IrVm, SnapshotRestoreRoundTrip) {
  auto comp = Compile(kEchoPair);
  const ir::Module* module = comp->FindModule("Down");
  vm::IrExecutor executor(module);
  executor.Run();
  ASSERT_EQ(executor.state(), vm::RunState::kBlockedRecv);
  std::vector<int32_t> snapshot(executor.SnapshotSize());
  executor.Snapshot(snapshot);

  vm::IrExecutor other(module);
  other.Restore(snapshot);
  EXPECT_EQ(other.state(), vm::RunState::kBlockedRecv);
  EXPECT_EQ(other.blocked_port(), executor.blocked_port());
  std::vector<int32_t> snapshot2(other.SnapshotSize());
  other.Snapshot(snapshot2);
  EXPECT_EQ(snapshot, snapshot2);
}

TEST(IrVm, SnapshotCanonicalizesTemps) {
  auto comp = Compile(kEchoPair);
  const ir::Module* module = comp->FindModule("Up");
  bool has_temp = false;
  for (const ir::SlotInfo& slot : module->slots) {
    if (slot.slot_class == ir::SlotClass::kTemp) {
      has_temp = true;
    }
  }
  EXPECT_TRUE(has_temp);
}

TEST(IrDump, MentionsBlocksAndPorts) {
  auto comp = Compile(kEchoPair);
  std::string dump = ir::DumpModule(*comp->FindModule("Down"));
  EXPECT_NE(dump.find("module Down"), std::string::npos);
  EXPECT_NE(dump.find("port recv UpToDown"), std::string::npos);
  EXPECT_NE(dump.find("port send DownToUp"), std::string::npos);
  EXPECT_NE(dump.find("[end]"), std::string::npos);
}

TEST(IrSegment, BlocksSplitAtBlockingInstructions) {
  auto comp = Compile(kEchoPair);
  const ir::Module* module = comp->FindModule("Down");
  ir::Segmentation segmentation = ir::SegmentModule(*module);
  // There must be more segments than blocks (send/recv split blocks).
  EXPECT_GT(segmentation.segments.size(), module->blocks.size());
  EXPECT_GT(segmentation.StateCount(*module), static_cast<int>(segmentation.segments.size()));
}

TEST(IrModule, EndLabelFlagsPropagate) {
  auto comp = Compile(kEchoPair);
  const ir::Module* module = comp->FindModule("Down");
  bool found_end = false;
  for (const ir::Block& block : module->blocks) {
    if (block.is_end_label) {
      found_end = true;
    }
  }
  EXPECT_TRUE(found_end);
}

}  // namespace
}  // namespace efeu
