// Supervision-ladder tests (the cross-boundary robustness tentpole): the
// health FSM and degradation ladder on a scriptable fake driver, the
// MMIO-boundary fault matrix against the real hybrid driver in polling and
// interrupt-driven modes, the acceptance schedule (dropped interrupt +
// stalled handshake completing the 24AA512 read/write suite via soft reset),
// the byte-identical guarantee with recovery disabled, supervision over the
// bit-bang and Xilinx baselines, and the seed-matrix fault soak (full matrix
// behind EFEU_FAULT_SOAK; a small slice runs in tier-1).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/driver/baselines.h"
#include "src/driver/hybrid.h"
#include "src/driver/resources.h"
#include "src/driver/supervisor.h"
#include "src/i2c/codes.h"
#include "src/monitor/monitor_spec.h"
#include "src/sim/fault_plan.h"
#include "src/sim/fleet.h"

namespace efeu::driver {
namespace {

// ---------------------------------------------------------------------------
// Ladder logic on a scriptable fake driver
// ---------------------------------------------------------------------------

// Duck-typed stand-in exposing the same supervision surface as the real
// drivers, with per-call failure knobs so every ladder transition is
// reachable deterministically.
class FakeDriver {
 public:
  bool Read(int offset, int length, std::vector<uint8_t>* out) {
    ++counters_.attempts;
    if (fail_all_) {
      return false;
    }
    out->clear();
    for (int i = 0; i < length; ++i) {
      out->push_back(memory_[offset + i]);
    }
    return true;
  }

  bool Write(int offset, const std::vector<uint8_t>& data) {
    ++counters_.attempts;
    if (fail_all_) {
      return false;
    }
    if (data.size() > 1) {
      ++page_write_calls_;
      if (fail_page_writes_) {
        return false;
      }
      if (fail_page_until_reset_ && !reset_since_last_page_) {
        return false;
      }
    }
    reset_since_last_page_ = false;
    for (size_t i = 0; i < data.size(); ++i) {
      memory_[offset + static_cast<int>(i)] = data[i];
    }
    return true;
  }

  void SoftReset() {
    ++counters_.soft_resets;
    reset_since_last_page_ = true;
  }

  bool Probe() {
    ++counters_.reprobes;
    return probe_ok_;
  }

  const RecoveryCounters& recovery_counters() const { return counters_; }
  int32_t last_status() const { return i2c::kCeResOk; }
  bool wedged() const { return false; }

  uint8_t MemoryAt(int offset) const {
    auto it = memory_.find(offset);
    return it == memory_.end() ? 0 : it->second;
  }
  uint64_t attempts() const { return counters_.attempts; }
  int page_write_calls() const { return page_write_calls_; }

  // Failure knobs.
  bool fail_all_ = false;
  bool fail_page_writes_ = false;
  // Page writes fail until a SoftReset intervenes (recover-via-ladder).
  bool fail_page_until_reset_ = false;
  bool probe_ok_ = true;

 private:
  RecoveryCounters counters_;
  std::map<int, uint8_t> memory_;
  int page_write_calls_ = 0;
  bool reset_since_last_page_ = false;
};

TEST(SupervisorLadder, HealthyPassThrough) {
  FakeDriver driver;
  Supervisor<FakeDriver> sup(&driver);
  ASSERT_TRUE(sup.Write(0x10, {0x01, 0x02}));
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x10, 2, &data));
  EXPECT_EQ(data, (std::vector<uint8_t>{0x01, 0x02}));
  EXPECT_EQ(sup.health(), HealthState::kHealthy);
  EXPECT_EQ(sup.counters().soft_resets, 0u);
  EXPECT_EQ(sup.counters().degraded_entries, 0u);
}

TEST(SupervisorLadder, PageFailureFallsBackToSingleBytes) {
  // Page writes never work; single-byte writes do. The full ladder fails, so
  // the supervisor enters degraded mode and lands the payload byte by byte.
  FakeDriver driver;
  driver.fail_page_writes_ = true;
  Supervisor<FakeDriver> sup(&driver);
  ASSERT_TRUE(sup.Write(0x20, {0xAA, 0xBB, 0xCC}));
  EXPECT_EQ(driver.MemoryAt(0x20), 0xAA);
  EXPECT_EQ(driver.MemoryAt(0x21), 0xBB);
  EXPECT_EQ(driver.MemoryAt(0x22), 0xCC);
  EXPECT_EQ(sup.health(), HealthState::kDegraded);
  EXPECT_EQ(sup.counters().degraded_entries, 1u);
  EXPECT_GT(sup.counters().soft_resets, 0u);

  // Once degraded, later page writes go straight to single bytes — the
  // failing page path is not retried at all.
  int page_calls = driver.page_write_calls();
  ASSERT_TRUE(sup.Write(0x30, {0x01, 0x02}));
  EXPECT_EQ(driver.page_write_calls(), page_calls);
  EXPECT_EQ(driver.MemoryAt(0x31), 0x02);
  EXPECT_EQ(sup.counters().degraded_entries, 1u);  // entered once, stays
}

TEST(SupervisorLadder, RepeatedLadderRecoveriesDegradeProactively) {
  // Page writes succeed only after a soft reset: each one completes, but
  // through the ladder. After page_fail_threshold such writes the supervisor
  // stops betting on the page path.
  FakeDriver driver;
  driver.fail_page_until_reset_ = true;
  SupervisorOptions options;
  options.page_fail_threshold = 2;
  Supervisor<FakeDriver> sup(&driver, options);
  ASSERT_TRUE(sup.Write(0x40, {0x11, 0x12}));
  EXPECT_EQ(sup.health(), HealthState::kHealthy);  // recovered, not degraded yet
  ASSERT_TRUE(sup.Write(0x42, {0x13, 0x14}));
  EXPECT_EQ(sup.health(), HealthState::kDegraded);
  EXPECT_EQ(sup.counters().degraded_entries, 1u);
  // Single-byte mode sidesteps the flaky page path entirely.
  int page_calls = driver.page_write_calls();
  ASSERT_TRUE(sup.Write(0x44, {0x15, 0x16}));
  EXPECT_EQ(driver.page_write_calls(), page_calls);
}

TEST(SupervisorLadder, DegradedEpisodesCountDistinctly) {
  // degraded_entries counts distinct degradation episodes: re-entering via
  // recovering without an intervening promotion to healthy never
  // double-counts, and only a full clean-streak promotion re-arms the
  // counter for a genuine second episode.
  FakeDriver driver;
  driver.fail_page_writes_ = true;
  SupervisorOptions options;
  options.degraded_recovery_threshold = 3;
  Supervisor<FakeDriver> sup(&driver, options);

  ASSERT_TRUE(sup.Write(0x10, {0x01, 0x02}));
  EXPECT_EQ(sup.health(), HealthState::kDegraded);
  EXPECT_EQ(sup.counters().degraded_entries, 1u);

  // Clean degraded operations build the re-promotion streak; at the
  // threshold the supervisor re-arms page mode to probe whether the fault
  // cleared. The episode counter must not move while degraded.
  ASSERT_TRUE(sup.Write(0x20, {0xA0, 0xA1}));
  ASSERT_TRUE(sup.Write(0x22, {0xA2, 0xA3}));
  EXPECT_EQ(sup.health(), HealthState::kDegraded);
  EXPECT_EQ(sup.counters().degraded_entries, 1u);
  ASSERT_TRUE(sup.Write(0x24, {0xA4, 0xA5}));
  EXPECT_EQ(sup.health(), HealthState::kHealthy);

  // The fault is still present: the next page write falls back again — a
  // second distinct episode.
  ASSERT_TRUE(sup.Write(0x40, {0xB0, 0xB1}));
  EXPECT_EQ(sup.health(), HealthState::kDegraded);
  EXPECT_EQ(sup.counters().degraded_entries, 2u);

  // Staying degraded across further traffic does not re-count.
  ASSERT_TRUE(sup.Write(0x50, {0xC0, 0xC1}));
  EXPECT_EQ(sup.counters().degraded_entries, 2u);
}

TEST(SupervisorLadder, MonitorTripsEscalateThroughLadder) {
  // Runtime-monitor trips are a ladder input: one trip demotes the pair to
  // recovering; trip_reset_threshold trips with no clean operation in
  // between force the soft reset directly.
  FakeDriver driver;
  SupervisorOptions options;
  options.trip_reset_threshold = 3;
  Supervisor<FakeDriver> sup(&driver, options);
  ASSERT_TRUE(sup.Write(0x10, {0x42}));
  EXPECT_EQ(sup.health(), HealthState::kHealthy);

  sup.NoteMonitorTrip();
  EXPECT_EQ(sup.health(), HealthState::kRecovering);
  EXPECT_EQ(sup.monitor_trips(), 1u);
  EXPECT_EQ(sup.counters().soft_resets, 0u);

  // A clean operation clears the escalation and restores healthy.
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x10, 1, &data));
  EXPECT_EQ(sup.health(), HealthState::kHealthy);

  // Three trips back to back: the third one resets the stack.
  sup.NoteMonitorTrip();
  sup.NoteMonitorTrip();
  EXPECT_EQ(sup.counters().soft_resets, 0u);
  sup.NoteMonitorTrip();
  EXPECT_EQ(sup.counters().soft_resets, 1u);
  EXPECT_EQ(sup.monitor_trips(), 4u);
  EXPECT_EQ(sup.health(), HealthState::kRecovering);
}

TEST(SupervisorLadder, FormatRecoveryCountersHandlesLargeCounts) {
  // The old implementation rendered into a fixed 288-byte buffer and
  // silently truncated the tail fields once counters grew past a few
  // digits; every field must survive 3+-digit (and larger) counts.
  RecoveryCounters counters;
  counters.attempts = 123456789012ull;
  counters.retries = 987654321ull;
  counters.nacks = 100;
  counters.failures = 1001;
  counters.timeouts = 2002;
  counters.bus_recoveries = 3003;
  counters.deadline_hits = 4004;
  counters.backoff_ns = 1234567.0;
  counters.soft_resets = 505;
  counters.reprobes = 606;
  counters.degraded_entries = 707;
  std::string s = FormatRecoveryCounters(counters);
  EXPECT_NE(s.find("attempts=123456789012"), std::string::npos) << s;
  EXPECT_NE(s.find("backoff_us=1234.6"), std::string::npos) << s;
  EXPECT_NE(s.find("reprobes=606"), std::string::npos) << s;
  EXPECT_NE(s.find("degraded=707"), std::string::npos) << s;
}

TEST(SupervisorLadder, WedgedIsTerminalAndFailsFast) {
  FakeDriver driver;
  driver.fail_all_ = true;
  SupervisorOptions options;
  options.max_ladder_cycles = 2;
  Supervisor<FakeDriver> sup(&driver, options);
  std::vector<uint8_t> data;
  EXPECT_FALSE(sup.Read(0x00, 1, &data));
  EXPECT_EQ(sup.health(), HealthState::kWedged);
  // Fail-fast: no further attempts reach the dead driver.
  uint64_t attempts = driver.attempts();
  EXPECT_FALSE(sup.Read(0x00, 1, &data));
  EXPECT_FALSE(sup.Write(0x00, {0x01}));
  EXPECT_EQ(driver.attempts(), attempts);
}

TEST(SupervisorLadder, FailedProbeResetsAndRetries) {
  // Ladder cycle 2+ re-probes before trusting the stack; a failed probe must
  // trigger a cleanup reset, not an operation on a stack stranded
  // mid-protocol.
  FakeDriver driver;
  driver.fail_all_ = true;
  driver.probe_ok_ = false;
  SupervisorOptions options;
  options.max_ladder_cycles = 3;
  Supervisor<FakeDriver> sup(&driver, options);
  std::vector<uint8_t> data;
  EXPECT_FALSE(sup.Read(0x00, 1, &data));
  EXPECT_EQ(sup.health(), HealthState::kWedged);
  // Cycles 2 and 3 probe (and fail); each failed probe costs an extra reset:
  // 3 cycle resets + 2 cleanup resets.
  EXPECT_EQ(sup.counters().reprobes, 2u);
  EXPECT_EQ(sup.counters().soft_resets, 5u);
  // The failed probes skipped the operation: only the first-rung try and
  // cycle 1's retry reached the driver.
  EXPECT_EQ(driver.attempts(), 2u);
}

// ---------------------------------------------------------------------------
// MMIO-boundary fault matrix against the real hybrid driver
// ---------------------------------------------------------------------------

HybridConfig SupervisedConfig(bool interrupt_driven) {
  HybridConfig config;
  config.split = SplitPoint::kByte;
  config.interrupt_driven = interrupt_driven;
  config.eeprom.write_cycle_ns = 50000;
  config.recovery.enabled = true;
  // Short hardware-wait deadline so stalled-handshake faults fail in
  // simulated microseconds, not milliseconds.
  config.recovery.wait_timeout_ns = 2e6;
  config.recovery.op_deadline_ns = 1e7;
  return config;
}

// One write+read round trip through the supervisor must survive every single
// boundary fault kind. `expect_injected` distinguishes kinds the mode
// actually consults (polling has no interrupt path, so interrupt-kind
// opportunities never arise there — the run must still complete).
void RunBoundaryFaultCase(sim::FaultKind kind, bool interrupt_driven, bool expect_injected) {
  HybridConfig config = SupervisedConfig(interrupt_driven);
  config.fault_plan = sim::FaultPlan::Scripted({{kind, 0, 1}, {kind, 1, 1}});
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  std::vector<uint8_t> payload = {0x3C, 0x3D};
  std::string context = std::string(sim::FaultKindName(kind)) +
                        (interrupt_driven ? " (interrupt)" : " (polling)");
  ASSERT_TRUE(sup.Write(0x0120, payload))
      << context << ": " << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x0120, 2, &data))
      << context << ": " << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  EXPECT_EQ(data, payload) << context;
  EXPECT_NE(sup.health(), HealthState::kWedged) << context;
  if (expect_injected) {
    EXPECT_GT(driver.fault_plan().faults_injected(), 0u)
        << context << ": scripted boundary fault never fired";
  }
}

TEST(BoundaryFaultMatrix, PollingSurvivesEachKind) {
  RunBoundaryFaultCase(sim::FaultKind::kCorruptedMmioRead, false, true);
  RunBoundaryFaultCase(sim::FaultKind::kStalledUpMessage, false, true);
  RunBoundaryFaultCase(sim::FaultKind::kLostDoorbell, false, true);
  // The interrupt-line kinds have no polling-mode opportunity; the run must
  // be transparently clean.
  RunBoundaryFaultCase(sim::FaultKind::kDroppedInterrupt, false, false);
  RunBoundaryFaultCase(sim::FaultKind::kSpuriousInterrupt, false, false);
}

TEST(BoundaryFaultMatrix, InterruptDrivenSurvivesEachKind) {
  RunBoundaryFaultCase(sim::FaultKind::kDroppedInterrupt, true, true);
  RunBoundaryFaultCase(sim::FaultKind::kSpuriousInterrupt, true, true);
  RunBoundaryFaultCase(sim::FaultKind::kCorruptedMmioRead, true, true);
  RunBoundaryFaultCase(sim::FaultKind::kStalledUpMessage, true, true);
  RunBoundaryFaultCase(sim::FaultKind::kLostDoorbell, true, true);
}

// The boundary faults that kill the hardware wait (stall, lost doorbell,
// dropped IRQ) are unrecoverable by retry/backoff alone — completing the
// operation requires the ladder's soft-reset rung.
TEST(BoundaryFaultMatrix, StalledHandshakeNeedsTheSoftResetRung) {
  HybridConfig config = SupervisedConfig(/*interrupt_driven=*/false);
  config.fault_plan = sim::FaultPlan::Scripted({{sim::FaultKind::kStalledUpMessage, 0, 1}});
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  ASSERT_TRUE(sup.Write(0x0130, {0x44}))
      << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  EXPECT_GT(sup.counters().soft_resets, 0u);
  EXPECT_GT(sup.counters().timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Acceptance: dropped interrupt + stalled handshake, both wait modes
// ---------------------------------------------------------------------------

// The issue's acceptance schedule: a dropped interrupt and a stalled
// ready/valid handshake, striking the 24AA512 read/write suite. The
// supervisor must complete every operation via soft reset without ever
// reaching wedged — in polling AND interrupt-driven modes.
void RunAcceptanceSuite(bool interrupt_driven) {
  HybridConfig config = SupervisedConfig(interrupt_driven);
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kDroppedInterrupt, 0, 1},
      {sim::FaultKind::kStalledUpMessage, 1, 1},
  });
  HybridDriver driver(config);
  Supervisor<HybridDriver> sup(&driver);
  const std::string mode = interrupt_driven ? "interrupt" : "polling";

  const std::vector<std::vector<uint8_t>> payloads = {
      {0x01, 0x02, 0x03, 0x04},  // page write
      {0x55},                    // single byte
      {0xF0, 0x0F},              // page write crossing a fault opportunity
  };
  int offset = 0x0200;
  for (const std::vector<uint8_t>& payload : payloads) {
    ASSERT_TRUE(sup.Write(offset, payload))
        << mode << ": " << driver.fault_plan().Describe()
        << "\nreplay: " << driver.fault_plan().ReplayCommand()
        << "\n" << FormatRecoveryCounters(sup.counters());
    std::vector<uint8_t> data;
    ASSERT_TRUE(sup.Read(offset, static_cast<int>(payload.size()), &data))
        << mode << ": " << driver.fault_plan().Describe()
        << "\nreplay: " << driver.fault_plan().ReplayCommand();
    EXPECT_EQ(data, payload) << mode;
    ASSERT_NE(sup.health(), HealthState::kWedged)
        << mode << ": " << FormatRecoveryCounters(sup.counters());
    offset += static_cast<int>(payload.size());
  }
  // The stalled handshake genuinely fired and was recovered by a soft reset
  // (the dropped interrupt only has an opportunity in interrupt mode).
  EXPECT_GT(driver.fault_plan().faults_injected(), 0u) << mode;
  EXPECT_GT(sup.counters().soft_resets, 0u) << mode;
}

TEST(SupervisionAcceptance, PollingSuiteCompletesViaSoftReset) {
  RunAcceptanceSuite(/*interrupt_driven=*/false);
}

TEST(SupervisionAcceptance, InterruptSuiteCompletesViaSoftReset) {
  RunAcceptanceSuite(/*interrupt_driven=*/true);
}

// ---------------------------------------------------------------------------
// Recovery disabled => byte-identical (interrupt-driven variant)
// ---------------------------------------------------------------------------

// With recovery disabled and no faults scheduled, a driver carrying the whole
// supervision machinery (active-but-empty plan, boundary consult sites) must
// produce the exact same bus samples as a plain one — in interrupt-driven
// mode, which exercises the IRQ-path consult sites the polling twin
// (DriverRecovery.ZeroFaultsIsByteIdentical) never reaches.
TEST(SupervisionRegression, RecoveryDisabledIsByteIdenticalInterruptDriven) {
  HybridConfig plain;
  plain.split = SplitPoint::kByte;
  plain.interrupt_driven = true;
  plain.capture_waveform = true;
  plain.eeprom.write_cycle_ns = 0;
  HybridConfig armed = plain;
  armed.fault_plan = sim::FaultPlan::Scripted({});  // active but empty

  HybridDriver a(plain);
  HybridDriver b(armed);
  std::vector<uint8_t> payload = {0x21, 0x43, 0x65};
  for (HybridDriver* driver : {&a, &b}) {
    ASSERT_TRUE(driver->Write(0x0150, payload));
    std::vector<uint8_t> data;
    ASSERT_TRUE(driver->Read(0x0150, 3, &data));
    EXPECT_EQ(data, payload);
  }
  const auto& sa = a.bus().samples();
  const auto& sb = b.bus().samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].t_ns, sb[i].t_ns) << "sample " << i;
    ASSERT_EQ(sa[i].scl, sb[i].scl) << "sample " << i;
    ASSERT_EQ(sa[i].sda, sb[i].sda) << "sample " << i;
  }
  EXPECT_EQ(b.fault_plan().faults_injected(), 0u);
}

// ---------------------------------------------------------------------------
// Supervision over the baseline drivers
// ---------------------------------------------------------------------------

TEST(SupervisionBaselines, BitBangCompletesUnderWireFaults) {
  TimingModel timing;
  sim::EepromConfig eeprom;
  eeprom.write_cycle_ns = 50000;
  sim::FaultPlan plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kNackOnAddress, 0, 1},
      {sim::FaultKind::kNackOnData, 0, 1},
  });
  RecoveryPolicy recovery;
  recovery.enabled = true;
  BitBangDriver driver(timing, eeprom, /*capture_waveform=*/false, plan, recovery);
  Supervisor<BitBangDriver> sup(&driver);
  std::vector<uint8_t> payload = {0x81, 0x82};
  ASSERT_TRUE(sup.Write(0x70, payload))
      << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x70, 2, &data));
  EXPECT_EQ(data, payload);
  EXPECT_NE(sup.health(), HealthState::kWedged);
}

TEST(SupervisionBaselines, XilinxIpRecoversFromDroppedCompletionInterrupt) {
  TimingModel timing;
  sim::EepromConfig eeprom;
  eeprom.write_cycle_ns = 0;
  sim::FaultPlan plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kDroppedInterrupt, 0, 1},
  });
  XilinxIpDriver driver(timing, eeprom, /*capture_waveform=*/false, plan);
  Supervisor<XilinxIpDriver> sup(&driver);
  std::vector<uint8_t> payload = {0x91};
  ASSERT_TRUE(sup.Write(0x74, payload))
      << driver.fault_plan().Describe()
      << "\nreplay: " << driver.fault_plan().ReplayCommand();
  std::vector<uint8_t> data;
  ASSERT_TRUE(sup.Read(0x74, 1, &data));
  EXPECT_EQ(data, payload);
  EXPECT_GT(driver.fault_plan().faults_injected(), 0u);
  EXPECT_GT(sup.counters().soft_resets, 0u);
  EXPECT_NE(sup.health(), HealthState::kWedged);
}

// ---------------------------------------------------------------------------
// Seed-matrix fault soak
// ---------------------------------------------------------------------------

// One supervised run per (seed, wait mode) under a seeded random schedule of
// wire + boundary faults, all seeds soaking together as one fleet on one
// virtual timeline instead of 2 x num_seeds sequential driver builds. Each
// stack carries the supervised soak config (kByte split, 50 us write cycle,
// monitors on, FaultPlan::Random(seed, 0.01, max 4) with boundary faults);
// failures come back replay-ready from the fleet report.
//
// Data integrity is only asserted for schedules without line-sampling faults
// (ack-glitch, stuck SCL/SDA): those corrupt individual sampled bits on the
// wire, which plain I2C has no checksum to detect — by design the supervisor
// guarantees recovery and data integrity for protocol-level and boundary
// faults, and completion (no wedge, no hang) for everything. The fleet's
// EEPROM stack runner applies the same exemption.
//
// Tier-1 runs a 2-seed slice; the nightly CI job sets EFEU_FAULT_SOAK to run
// the full 64-seed matrix in both wait modes (see .github/workflows/ci.yml).
TEST(FaultSoak, SeedMatrixCompletesSupervised) {
  const bool full = std::getenv("EFEU_FAULT_SOAK") != nullptr;
  const uint64_t num_seeds = full ? 64 : 2;
  sim::Fleet fleet;
  for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
    for (bool interrupt_driven : {false, true}) {
      sim::StackConfig config;
      config.stack_class = sim::StackClass::kEeprom;
      config.seed = seed;
      config.interrupt_driven = interrupt_driven;
      fleet.AddStack(config);
    }
  }
  sim::FleetReport report = fleet.Run();
  std::string all;
  for (const std::string& failure : report.failures) {
    all += failure + "\n---\n";
  }
  EXPECT_TRUE(report.failures.empty()) << all;
  EXPECT_EQ(report.wedged, 0) << report.Format();
  EXPECT_EQ(report.ops_completed,
            num_seeds * 2 * 3 * 2);  // seeds x modes x rounds x (write+read)
}

}  // namespace
}  // namespace efeu::driver
