// Tests for the esmlint static-analysis framework (src/analysis): every rule
// with a triggering and a silent case, suppression pragmas, Werror, golden
// diagnostic text, the shipped specifications linting clean, and the
// analyze-before-check fail-fast path beating the model checker to a seeded
// bug.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analysis.h"
#include "src/check/checker.h"
#include "src/i2c/stack.h"
#include "src/i2c/verify.h"
#include "src/ir/compile.h"
#include "src/spi/verify.h"
#include "src/support/diagnostics.h"

namespace efeu {
namespace {

constexpr char kPairEsi[] = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";

// Generic echo responder used by most Up-side rule tests.
constexpr char kEchoDown[] = R"esm(
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(q.v);
  goto end_reply;
}
)esm";

std::unique_ptr<ir::Compilation> CompilePair(const std::string& esm, std::string* rendered,
                                             bool allow_nondet = false) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = allow_nondet;
  auto comp = ir::Compile(kPairEsi, esm, diag, options);
  if (rendered != nullptr) {
    *rendered = diag.RenderAll();
  }
  return comp;
}

struct LintOutcome {
  analysis::AnalysisResult result;
  std::string rendered;
};

// Compiles Up+Down sources against the shared ESI pair and lints the result.
LintOutcome Lint(const std::string& esm, const analysis::AnalysisOptions& options = {},
                 bool allow_nondet = false) {
  LintOutcome outcome;
  DiagnosticEngine diag;
  ir::CompileOptions copts;
  copts.allow_nondet = allow_nondet;
  auto comp = ir::Compile(kPairEsi, esm, diag, copts);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  if (comp == nullptr) {
    return outcome;
  }
  outcome.result = analysis::AnalyzeCompilation(*comp, diag, options);
  outcome.rendered = diag.RenderAll();
  return outcome;
}

// ---- use-before-init -------------------------------------------------------

TEST(AnalysisUseBeforeInit, ReadBeforeAssignmentIsFlagged) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  int y;
  y = x + 1;
  r = UpTalkDown(y);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_GE(out.result.warnings, 1);
  EXPECT_NE(out.rendered.find("[use-before-init]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("'x'"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("'x' declared here"), std::string::npos) << out.rendered;
}

TEST(AnalysisUseBeforeInit, InitLoopIsRecognized) {
  // The canonical init idiom: the first loop iteration is peeled, so the
  // exit join does not contain the pre-loop uninitialized state.
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int arr[4];
  int i;
  i = 0;
  while (i < 4) {
    arr[i] = 0;
    i = i + 1;
  }
  r = UpTalkDown(arr[0]);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
}

// ---- unreachable-code ------------------------------------------------------

TEST(AnalysisUnreachable, CodeAfterGotoIsFlagged) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  x = 1;
  goto fin;
  skipped:
  x = 2;
  fin:
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_NE(out.rendered.find("[unreachable-code]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("no control path"), std::string::npos) << out.rendered;
}

TEST(AnalysisUnreachable, ConstantConditionBranchIsFlagged) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int c;
  int x;
  c = 0;
  x = 1;
  if (c == 1) {
    x = 2;
  }
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  EXPECT_NE(out.rendered.find("[unreachable-code]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("statically constant"), std::string::npos) << out.rendered;
}

TEST(AnalysisUnreachable, MessageGuardedBranchIsSilent) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  x = 1;
  r = UpTalkDown(x);
  if (r.r == 1) {
    x = 2;
  }
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
}

// ---- truncation-loss -------------------------------------------------------

TEST(AnalysisTruncation, ValueNeverFittingIsFlagged) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b8;
  b8 = 200 + 200;
  r = UpTalkDown(b8);
}
)esm") + kEchoDown);
  EXPECT_NE(out.rendered.find("[truncation-loss]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("never fits"), std::string::npos) << out.rendered;
}

TEST(AnalysisTruncation, InRangeValueIsSilent) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte b8;
  b8 = 100 + 100;
  r = UpTalkDown(b8);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
}

// ---- static-bounds ---------------------------------------------------------

TEST(AnalysisBounds, DefinitelyOutOfBoundsIndexIsError) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int arr[4];
  int i;
  i = 0;
  while (i < 4) {
    arr[i] = i;
    i = i + 1;
  }
  i = 5 + 2;
  r = UpTalkDown(arr[i]);
}
)esm") + kEchoDown);
  EXPECT_GE(out.result.errors, 1);
  EXPECT_FALSE(out.result.ok());
  EXPECT_NE(out.rendered.find("[static-bounds]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("always out of bounds"), std::string::npos) << out.rendered;
}

TEST(AnalysisBounds, InBoundsIndexIsSilent) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int arr[4];
  int i;
  i = 0;
  while (i < 4) {
    arr[i] = i;
    i = i + 1;
  }
  i = 1 + 2;
  r = UpTalkDown(arr[i]);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
}

// ---- channel-conformance ---------------------------------------------------

// Valid ESM cannot express a direction or arity violation (sema rejects it),
// so these cases drive AnalyzeModule with hand-built modules referencing
// channels from a real compilation.
class AnalysisChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string rendered;
    comp_ = CompilePair(std::string(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
)esm") + kEchoDown, &rendered);
    ASSERT_NE(comp_, nullptr) << rendered;
    down_channel_ = comp_->system().FindChannel("Up", "Down");
    ASSERT_NE(down_channel_, nullptr);
  }

  // A one-block module that sends `count` words on its single port.
  ir::Module MakeSender(const std::string& layer, const esi::ChannelInfo* channel, int count) {
    ir::Module m;
    m.layer_name = layer;
    m.frame_size = count > 0 ? count : 1;
    m.ports.push_back(ir::Port{channel, /*is_send=*/true});
    ir::Inst send;
    send.op = ir::Opcode::kSend;
    send.port = 0;
    send.a = 0;
    send.count = count;
    send.loc = SourceLocation{1, 1, 0};
    ir::Inst halt;
    halt.op = ir::Opcode::kHalt;
    ir::Block block;
    block.insts = {send, halt};
    m.blocks.push_back(block);
    return m;
  }

  std::unique_ptr<ir::Compilation> comp_;
  const esi::ChannelInfo* down_channel_ = nullptr;
};

TEST_F(AnalysisChannelTest, WrongDirectionIsError) {
  // 'Down' sending on the Up->Down channel: the ESI declaration says the
  // sender is 'Up'.
  ir::Module m = MakeSender("Down", down_channel_, down_channel_->flat_size);
  std::vector<analysis::Finding> findings = analysis::AnalyzeModule(m, /*verifier_mode=*/false);
  bool found = false;
  for (const analysis::Finding& f : findings) {
    if (f.rule == analysis::kRuleChannelConformance && f.severity == Severity::kError &&
        f.message.find("sends on") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisChannelTest, WrongDirectionAllowedInVerifierMode) {
  // Verifier glue acts as other layers; the direction check must not fire.
  ir::Module m = MakeSender("Down", down_channel_, down_channel_->flat_size);
  std::vector<analysis::Finding> findings = analysis::AnalyzeModule(m, /*verifier_mode=*/true);
  for (const analysis::Finding& f : findings) {
    EXPECT_TRUE(f.message.find("sends on") == std::string::npos) << f.message;
  }
}

TEST_F(AnalysisChannelTest, ArityMismatchIsError) {
  ir::Module m = MakeSender("Up", down_channel_, down_channel_->flat_size + 1);
  std::vector<analysis::Finding> findings = analysis::AnalyzeModule(m, /*verifier_mode=*/true);
  bool found = false;
  for (const analysis::Finding& f : findings) {
    if (f.rule == analysis::kRuleChannelConformance &&
        f.message.find("words on channel") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisChannelTest, MatchingArityIsSilent) {
  ir::Module m = MakeSender("Up", down_channel_, down_channel_->flat_size);
  std::vector<analysis::Finding> findings = analysis::AnalyzeModule(m, /*verifier_mode=*/false);
  for (const analysis::Finding& f : findings) {
    EXPECT_NE(f.rule, analysis::kRuleChannelConformance) << f.message;
  }
}

TEST_F(AnalysisChannelTest, UnusedChannelIsReported) {
  // Both endpoint layers compiled, but neither has a port on either channel.
  ir::Module up;
  up.layer_name = "Up";
  ir::Module down;
  down.layer_name = "Down";
  std::vector<ir::Module> modules;
  modules.push_back(up);
  modules.push_back(down);
  std::vector<analysis::Finding> findings =
      analysis::FindUnusedChannels(comp_->system(), modules);
  ASSERT_EQ(findings.size(), 2u);  // Up->Down and Down->Up both unused.
  EXPECT_NE(findings[0].message.find("no process uses it"), std::string::npos);
  EXPECT_TRUE(findings[0].in_esi);
}

TEST_F(AnalysisChannelTest, UsedChannelsAreSilent) {
  std::vector<analysis::Finding> findings =
      analysis::FindUnusedChannels(comp_->system(), comp_->modules());
  EXPECT_TRUE(findings.empty());
}

// ---- progress-reachability -------------------------------------------------

TEST(AnalysisProgress, BusyLoopIsError) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  x = 0;
  r = UpTalkDown(x);
  spin:
  x = x + 1;
  goto spin;
}
)esm") + kEchoDown);
  EXPECT_GE(out.result.errors, 1);
  EXPECT_NE(out.rendered.find("[progress-reachability]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("busy loop"), std::string::npos) << out.rendered;
}

TEST(AnalysisProgress, CycleNotReachingProgressLabelIsWarning) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  progress_setup:
  r = UpTalkDown(1);
  idle:
  r = UpTalkDown(2);
  goto idle;
}
)esm") + kEchoDown);
  EXPECT_NE(out.rendered.find("[progress-reachability]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("cannot reach any progress label"), std::string::npos)
      << out.rendered;
}

TEST(AnalysisProgress, CycleThroughProgressLabelIsSilent) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  progress_step:
  r = UpTalkDown(1);
  goto progress_step;
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
}

// ---- reset-safety ----------------------------------------------------------

// The canonical trigger: a guard derived from state the zeroed frame
// guarantees is 0 at cold boot. The `if (y == 0)` arm is the only feasible
// path at cold boot, so 'x' is always assigned before use — but after a soft
// reset the array holds stale values, the guard can go either way, and the
// skipping path reaches the read of 'x' with no assignment.
TEST(AnalysisResetSafety, ZeroGuardedAssignmentIsFlagged) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte arr[4];
  byte y;
  int x;
  arr[0] = 0;
  r = UpTalkDown(1);
  y = arr[r.r];
  if (y == 0) {
    x = 1;
  }
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_GE(out.result.warnings, 1);
  EXPECT_NE(out.rendered.find("[reset-safety]"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("'x'"), std::string::npos) << out.rendered;
  EXPECT_NE(out.rendered.find("reset entry path"), std::string::npos) << out.rendered;
}

TEST(AnalysisResetSafety, ExplicitReinitIsSilent) {
  // Same shape, but 'x' is unconditionally assigned before the guard — the
  // reset entry path re-executes that assignment, so the read is safe.
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte arr[4];
  byte y;
  int x;
  arr[0] = 0;
  r = UpTalkDown(1);
  y = arr[r.r];
  x = 0;
  if (y == 0) {
    x = 1;
  }
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
}

TEST(AnalysisResetSafety, ColdBootUninitReadIsNotDoubleReported) {
  // A read that is already use-before-init at cold boot must not also appear
  // as reset-safety: the reset model adds nothing the base rule missed.
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  int y;
  y = x + 1;
  r = UpTalkDown(y);
}
)esm") + kEchoDown);
  EXPECT_NE(out.rendered.find("[use-before-init]"), std::string::npos) << out.rendered;
  EXPECT_EQ(out.rendered.find("[reset-safety]"), std::string::npos) << out.rendered;
}

TEST(AnalysisResetSafety, SuppressionPragmaApplies) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  byte arr[4];
  byte y;
  int x;
  arr[0] = 0;
  r = UpTalkDown(1);
  y = arr[r.r];
  if (y == 0) {
    x = 1;
  }
#pragma esmlint suppress reset-safety
  r = UpTalkDown(x);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
  EXPECT_EQ(out.result.suppressed, 1);
}

// ---- suppressions, options -------------------------------------------------

TEST(AnalysisSuppression, PragmaSuppressesNextLine) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  int y;
#pragma esmlint suppress use-before-init
  y = x + 1;
  r = UpTalkDown(y);
}
)esm") + kEchoDown);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
  EXPECT_EQ(out.result.suppressed, 1);
}

TEST(AnalysisSuppression, DisableEnableRegion) {
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  int y;
  int z;
#pragma esmlint disable use-before-init
  y = x + 1;
#pragma esmlint enable use-before-init
  r = UpTalkDown(y + z);
}
)esm") + kEchoDown);
  // 'x' is read inside the disabled region; 'z' after re-enabling.
  EXPECT_EQ(out.result.suppressed, 1) << out.rendered;
  EXPECT_EQ(out.result.warnings, 1) << out.rendered;
  EXPECT_NE(out.rendered.find("'z'"), std::string::npos) << out.rendered;
}

TEST(AnalysisSuppression, UnknownPragmaTokenWarns) {
  LintOutcome out = Lint(std::string(R"esm(
#pragma esmlint frobnicate
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
)esm") + kEchoDown);
  EXPECT_NE(out.rendered.find("unknown esmlint pragma token 'frobnicate'"), std::string::npos)
      << out.rendered;
}

TEST(AnalysisOptionsTest, DisabledRuleIsCountedSuppressed) {
  analysis::AnalysisOptions options;
  options.disabled.insert(analysis::kRuleUseBeforeInit);
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  int y;
  y = x + 1;
  r = UpTalkDown(y);
}
)esm") + kEchoDown,
                         options);
  EXPECT_EQ(out.result.warnings, 0) << out.rendered;
  EXPECT_EQ(out.result.suppressed, 1);
}

TEST(AnalysisOptionsTest, WerrorEscalatesWarnings) {
  analysis::AnalysisOptions options;
  options.werror = true;
  LintOutcome out = Lint(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  int y;
  y = x + 1;
  r = UpTalkDown(y);
}
)esm") + kEchoDown,
                         options);
  EXPECT_GE(out.result.errors, 1);
  EXPECT_FALSE(out.result.ok());
  EXPECT_NE(out.rendered.find("error:"), std::string::npos) << out.rendered;
}

// ---- golden diagnostic text ------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(EFEU_GOLDEN_DIR) + "/" + name;
}

void CompareOrUpdate(const std::string& name, const std::string& generated) {
  const std::string path = GoldenPath(name);
  if (std::getenv("EFEU_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << generated;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run `efeu_tests --update-goldens` to create it";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(generated, golden.str())
      << "lint diagnostics for " << name << " changed; if intended, refresh with "
      << "`efeu_tests --update-goldens` and commit the diff";
}

TEST(AnalysisGolden, DiagnosticRenderingMatchesGolden) {
  // One spec hitting several rules: pins the full rendering — severities,
  // carets, underlines, "declared here" notes and [rule] suffixes.
  DiagnosticEngine diag;
  auto comp = ir::Compile(kPairEsi, std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  byte b8;
  int arr[4];
  int i;
  i = 0;
  while (i < 4) {
    arr[i] = 0;
    i = i + 1;
  }
  b8 = 300 + 100;
  i = 4 + 3;
  r = UpTalkDown(arr[i] + x);
  goto fin;
  skipped:
  x = 2;
  fin:
  r = UpTalkDown(x);
}
)esm") + kEchoDown,
                          diag, {});
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  DiagnosticEngine lint_diag;
  analysis::AnalyzeCompilation(*comp, lint_diag, {});
  CompareOrUpdate("analysis_diagnostics.txt", lint_diag.RenderAll());
}

// ---- shipped specifications lint clean -------------------------------------

void ExpectLintClean(const ir::Compilation& comp, const std::string& what) {
  DiagnosticEngine diag;
  analysis::AnalysisOptions options;
  options.werror = true;
  analysis::AnalysisResult result = analysis::AnalyzeCompilation(comp, diag, options);
  EXPECT_EQ(result.errors, 0) << what << ":\n" << diag.RenderAll();
  EXPECT_EQ(result.warnings, 0) << what << ":\n" << diag.RenderAll();
  EXPECT_EQ(result.suppressed, 0) << what << ": shipped specs must not need suppressions";
}

TEST(ShippedSpecsLint, DriverStacksAreClean) {
  {
    DiagnosticEngine diag;
    auto comp = i2c::CompileControllerStack(diag);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectLintClean(*comp, "controller stack");
  }
  {
    DiagnosticEngine diag;
    i2c::ControllerStackOptions options;
    options.no_clock_stretching = true;
    options.ks0127_compat = true;
    auto comp = i2c::CompileControllerStack(diag, options);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectLintClean(*comp, "controller stack (quirks)");
  }
  {
    DiagnosticEngine diag;
    auto comp = i2c::CompileResponderStack(diag);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectLintClean(*comp, "responder stack");
  }
  {
    DiagnosticEngine diag;
    i2c::ResponderStackOptions options;
    options.ks0127 = true;
    auto comp = i2c::CompileResponderStack(diag, options);
    ASSERT_NE(comp, nullptr) << diag.RenderAll();
    ExpectLintClean(*comp, "responder stack (ks0127)");
  }
}

TEST(ShippedSpecsLint, I2cVerifierMixesAreClean) {
  using i2c::VerifyAbstraction;
  using i2c::VerifyLevel;
  struct Combo {
    VerifyLevel level;
    VerifyAbstraction abstraction;
  };
  const Combo combos[] = {
      {VerifyLevel::kSymbol, VerifyAbstraction::kNone},
      {VerifyLevel::kByte, VerifyAbstraction::kNone},
      {VerifyLevel::kByte, VerifyAbstraction::kSymbol},
      {VerifyLevel::kTransaction, VerifyAbstraction::kNone},
      {VerifyLevel::kTransaction, VerifyAbstraction::kSymbol},
      {VerifyLevel::kTransaction, VerifyAbstraction::kByte},
      {VerifyLevel::kEepDriver, VerifyAbstraction::kNone},
      {VerifyLevel::kEepDriver, VerifyAbstraction::kSymbol},
      {VerifyLevel::kEepDriver, VerifyAbstraction::kByte},
      {VerifyLevel::kEepDriver, VerifyAbstraction::kTransaction},
  };
  for (const Combo& combo : combos) {
    i2c::VerifyConfig config;
    config.level = combo.level;
    config.abstraction = combo.abstraction;
    DiagnosticEngine diag;
    auto vs = i2c::BuildVerifier(config, diag);
    ASSERT_NE(vs, nullptr) << diag.RenderAll();
    std::string what = "i2c verifier level=" + std::to_string(static_cast<int>(combo.level)) +
                       " abstraction=" + std::to_string(static_cast<int>(combo.abstraction));
    for (const auto& comp : vs->compilations()) {
      ExpectLintClean(*comp, what);
    }
  }
}

TEST(ShippedSpecsLint, SpiVerifiersAreClean) {
  for (spi::SpiVerifyLevel level : {spi::SpiVerifyLevel::kByte, spi::SpiVerifyLevel::kDriver}) {
    spi::SpiVerifyConfig config;
    config.level = level;
    DiagnosticEngine diag;
    auto vs = spi::BuildSpiVerifier(config, diag);
    ASSERT_NE(vs, nullptr) << diag.RenderAll();
    ExpectLintClean(*vs->compilation_,
                    level == spi::SpiVerifyLevel::kByte ? "spi byte verifier"
                                                        : "spi driver verifier");
  }
}

// ---- analyze-before-check --------------------------------------------------

// A spec whose only bug is an out-of-bounds load after hundreds of
// rendezvous: the checker has to walk the whole prefix to hit the runtime
// error, the lint proves it from the interval domain without executing.
const char* kSeededBugEsm = R"esm(
void Up() {
  DownToUp r;
  int arr[4];
  int i;
  int n;
  i = 0;
  while (i < 4) {
    arr[i] = 0;
    i = i + 1;
  }
  n = 0;
  step:
  r = UpTalkDown(n);
  n = n + 1;
  if (n < 400) {
    goto step;
  }
  i = 4 + 2;
  r = UpTalkDown(arr[i]);
}
)esm";

TEST(AnalyzeBeforeCheck, LintRejectsSeededBugFasterThanChecker) {
  std::string rendered;
  auto comp = CompilePair(std::string(kSeededBugEsm) + kEchoDown, &rendered);
  ASSERT_NE(comp, nullptr) << rendered;

  using Clock = std::chrono::steady_clock;
  Clock::time_point t0 = Clock::now();
  DiagnosticEngine lint_diag;
  analysis::AnalysisResult lint = analysis::AnalyzeCompilation(*comp, lint_diag, {});
  double lint_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_FALSE(lint.ok()) << "lint missed the seeded out-of-bounds access";
  EXPECT_NE(lint_diag.RenderAll().find("[static-bounds]"), std::string::npos);

  check::CheckedSystem sys;
  int up = sys.AddModule(comp->FindModule("Up"), "Up");
  int down = sys.AddModule(comp->FindModule("Down"), "Down");
  sys.ConnectByChannel(up, down, comp->system().FindChannel("Up", "Down"));
  sys.ConnectByChannel(down, up, comp->system().FindChannel("Down", "Up"));
  t0 = Clock::now();
  check::CheckResult check = sys.Check({});
  double check_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  ASSERT_FALSE(check.ok) << "checker missed the seeded runtime error";

  EXPECT_LT(lint_seconds, check_seconds)
      << "lint took " << lint_seconds << "s, checker took " << check_seconds << "s";
}

TEST(AnalyzeBeforeCheck, VerifierFailsFastOnLintError) {
  // The same seeded bug compiled as a nondet-enabled (verifier-mode)
  // compilation still carries the static-bounds error.
  std::string rendered;
  auto comp = CompilePair(std::string(kSeededBugEsm) + kEchoDown, &rendered,
                          /*allow_nondet=*/true);
  ASSERT_NE(comp, nullptr) << rendered;
  DiagnosticEngine diag;
  analysis::AnalysisResult lint = analysis::AnalyzeCompilation(*comp, diag, {});
  EXPECT_FALSE(lint.ok());
}

TEST(AnalyzeBeforeCheck, DoesNotPerturbStateCounts) {
  // The analysis never mutates the compiled modules, so enabling it must not
  // change what the checker explores.
  i2c::VerifyConfig config;
  config.level = i2c::VerifyLevel::kSymbol;
  config.num_ops = 1;
  check::CheckResult baseline_safety;
  check::CheckResult analyzed_safety;
  {
    DiagnosticEngine diag;
    config.analyze_before_check = false;
    i2c::VerifyRunResult run = i2c::RunVerification(config, diag);
    ASSERT_TRUE(run.ok) << diag.RenderAll();
    baseline_safety = run.safety;
  }
  {
    DiagnosticEngine diag;
    config.analyze_before_check = true;
    i2c::VerifyRunResult run = i2c::RunVerification(config, diag);
    ASSERT_TRUE(run.ok) << diag.RenderAll();
    analyzed_safety = run.safety;
  }
  EXPECT_EQ(baseline_safety.states_stored, analyzed_safety.states_stored);
  EXPECT_EQ(baseline_safety.transitions, analyzed_safety.transitions);
}

TEST(AnalyzeBeforeCheck, SpiVerifierHonorsFlag) {
  spi::SpiVerifyConfig config;
  config.level = spi::SpiVerifyLevel::kByte;
  config.analyze_before_check = true;
  DiagnosticEngine diag;
  auto vs = spi::BuildSpiVerifier(config, diag);
  EXPECT_NE(vs, nullptr) << diag.RenderAll();  // shipped SPI specs are clean
}

// ---- dump ------------------------------------------------------------------

TEST(AnalysisDump, ContainsBlocksAndIntervals) {
  std::string rendered;
  auto comp = CompilePair(std::string(R"esm(
void Up() {
  DownToUp r;
  int x;
  x = 3;
  after_assign:
  r = UpTalkDown(x);
}
)esm") + kEchoDown, &rendered);
  ASSERT_NE(comp, nullptr) << rendered;
  std::string dump = analysis::DumpAnalysis(*comp);
  EXPECT_NE(dump.find("== module Up =="), std::string::npos) << dump;
  EXPECT_NE(dump.find("x: [3, 3]"), std::string::npos) << dump;
}

}  // namespace
}  // namespace efeu
