// End-to-end verification tests: every stack level at every abstraction
// passes; the quirk configurations fail exactly the way the paper describes
// (section 4.5).

#include <gtest/gtest.h>

#include "src/i2c/verify.h"

namespace efeu::i2c {
namespace {

std::string Describe(const VerifyRunResult& result) {
  std::string out;
  if (result.safety.violation.has_value()) {
    out += "safety: " + result.safety.violation->message + "\n";
    for (const std::string& step : result.safety.violation->trace) {
      out += "  " + step + "\n";
    }
  }
  if (result.liveness.violation.has_value()) {
    out += "liveness: " + result.liveness.violation->message;
  }
  return out;
}

VerifyRunResult RunConfig(const VerifyConfig& config) {
  DiagnosticEngine diag;
  VerifyRunResult result = RunVerification(config, diag);
  EXPECT_FALSE(diag.HasErrors()) << diag.RenderAll();
  return result;
}

TEST(SymbolVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
  EXPECT_GT(result.safety.states_stored, 0u);
}

TEST(SymbolVerifier, FullStackWithStretchingPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  config.stretch_input = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(SymbolVerifier, RaspberryPiControllerFailsWithStretching) {
  // The Raspberry Pi hardware controller does not handle clock stretching;
  // the standard Symbol verifier detects problems in the modified stack.
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  config.stretch_input = true;
  config.no_clock_stretching = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_FALSE(result.ok);
}

TEST(SymbolVerifier, RaspberryPiControllerPassesWithoutStretching) {
  // Removing clock stretching from the input space models a responder that
  // never stretches; then the verifier passes (paper section 4.5).
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  config.stretch_input = false;
  config.no_clock_stretching = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(ByteVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(ByteVerifier, SymbolAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.abstraction = VerifyAbstraction::kSymbol;
  config.num_ops = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(ByteVerifier, AbstractionShrinksStateSpace) {
  VerifyConfig full;
  full.level = VerifyLevel::kByte;
  full.num_ops = 2;
  VerifyConfig abstracted = full;
  abstracted.abstraction = VerifyAbstraction::kSymbol;
  VerifyRunResult full_result = RunConfig(full);
  VerifyRunResult abs_result = RunConfig(abstracted);
  ASSERT_TRUE(full_result.ok) << Describe(full_result);
  ASSERT_TRUE(abs_result.ok) << Describe(abs_result);
  EXPECT_LT(abs_result.safety.states_stored, full_result.safety.states_stored);
}

TEST(ByteVerifier, Ks0127WithStandardControllerDeadlocks) {
  // Standard controller + KS0127 responder: the system can enter an invalid
  // end state (paper section 4.5).
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 1;
  config.ks0127_responder = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_FALSE(result.safety.ok);
  ASSERT_TRUE(result.safety.violation.has_value());
  EXPECT_EQ(result.safety.violation->kind, check::ViolationKind::kInvalidEndState);
}

TEST(ByteVerifier, Ks0127WithCompatControllerPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 1;
  config.ks0127_responder = true;
  config.ks0127_compat_controller = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, ByteAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.abstraction = VerifyAbstraction::kByte;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, SymbolAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.abstraction = VerifyAbstraction::kSymbol;
  config.num_ops = 1;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.num_ops = 1;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, Ks0127StackFullyVerifies) {
  // Above the modified Byte layers the Transaction layer is used unmodified
  // and the stack fully verifies (paper section 4.5).
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.num_ops = 1;
  config.max_len = 1;
  config.ks0127_responder = true;
  config.ks0127_compat_controller = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, TransactionAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, ByteAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kByte;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, SymbolAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kSymbol;
  config.num_ops = 1;
  config.max_len = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.num_ops = 1;
  config.max_len = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, TwoEepromsTransactionAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_eeproms = 2;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, VariablePayloadPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  config.variable_payload = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

// The acceptance configuration of the fault-injection work: the quickstart
// verification (EepDriver level, Transaction abstraction, 2 ops, up to 4
// bytes) stays deadlock- and livelock-free when the checker additionally
// explores every single-fault schedule (any one acknowledged bus event may
// NACK). The relaxed CWorld oracle still requires every operation to
// terminate with OK or NACK.
TEST(EepVerifier, QuiescesUnderSingleFaultSchedules) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 4;
  config.fault_events = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);

  // The fault branches genuinely enlarge the explored space.
  VerifyConfig no_faults = config;
  no_faults.fault_events = 0;
  VerifyRunResult baseline = RunConfig(no_faults);
  ASSERT_TRUE(baseline.ok) << Describe(baseline);
  EXPECT_GT(result.safety.states_stored, baseline.safety.states_stored);
}

TEST(EepVerifier, QuiescesUnderDoubleFaultSchedules) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  config.fault_events = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

// Reset convergence (the supervision tentpole's proof obligation): with the
// soft-reset event enabled as a nondeterministic choice at every scheduling
// point, the driver must still complete every operation — a reset fired at
// any instant returns the whole stack to a state from which the pending
// operation reruns and terminates with a correct EEPROM image.
TEST(EepVerifier, ConvergesUnderSingleResetSchedules) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 4;
  config.reset_events = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);

  // The reset branches genuinely enlarge the explored space.
  VerifyConfig no_resets = config;
  no_resets.reset_events = 0;
  VerifyRunResult baseline = RunConfig(no_resets);
  ASSERT_TRUE(baseline.ok) << Describe(baseline);
  EXPECT_GT(result.safety.states_stored, baseline.safety.states_stored);
}

TEST(EepVerifier, ConvergesUnderDoubleResetSchedules) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  config.reset_events = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

// Faults and resets compose: a NACK fault may force the recovery path and a
// reset may strike while that recovery is in flight.
TEST(EepVerifier, ConvergesUnderMixedFaultAndResetSchedules) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  config.fault_events = 1;
  config.reset_events = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

// The parallel safety engine must agree with the sequential one on the full
// Byte-layer stack: same verdict, same stored-state and transition counts
// (claim-before-expand makes them exactly equal, not just close).
TEST(ParallelVerify, ByteFullStackMatchesSequential) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 2;
  // POR off: the two engines use different cycle provisos, so only the
  // unreduced searches store identical state sets (verdict equivalence with
  // POR on is covered by the por/collapse equivalence suite).
  check::CheckerOptions unreduced;
  unreduced.por = false;
  DiagnosticEngine diag_seq;
  VerifyRunResult sequential = RunVerification(config, diag_seq, unreduced);
  ASSERT_TRUE(sequential.ok) << Describe(sequential);

  check::CheckerOptions base;
  base.num_threads = 4;
  base.por = false;
  DiagnosticEngine diag;
  VerifyRunResult parallel = RunVerification(config, diag, base);
  ASSERT_TRUE(parallel.ok) << Describe(parallel);
  EXPECT_EQ(parallel.safety.states_stored, sequential.safety.states_stored);
  EXPECT_EQ(parallel.safety.transitions, sequential.safety.transitions);
  // The liveness pass runs sequentially regardless of num_threads.
  EXPECT_EQ(parallel.liveness.states_stored, sequential.liveness.states_stored);
}

// The KS0127 quirk deadlock must be found with the parallel engine too, with
// the same violation kind as the sequential run.
TEST(ParallelVerify, Ks0127DeadlockFoundInParallel) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 1;
  config.ks0127_responder = true;
  check::CheckerOptions base;
  base.num_threads = 4;
  DiagnosticEngine diag;
  VerifyRunResult result = RunVerification(config, diag, base);
  EXPECT_FALSE(result.safety.ok);
  ASSERT_TRUE(result.safety.violation.has_value());
  EXPECT_EQ(result.safety.violation->kind, check::ViolationKind::kInvalidEndState);
  EXPECT_FALSE(result.safety.violation->trace.empty());
}

TEST(ParallelVerify, FingerprintOnlyShrinksBytesPerState) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 2;
  // COLLAPSE off on both sides: this test compares hash compaction against
  // full snapshot vectors (compressed-tuple storage has its own tests).
  check::CheckerOptions uncompressed;
  uncompressed.collapse = false;
  DiagnosticEngine diag_full;
  VerifyRunResult full = RunVerification(config, diag_full, uncompressed);
  ASSERT_TRUE(full.ok) << Describe(full);

  check::CheckerOptions base;
  base.fingerprint_only = true;
  base.collapse = false;
  DiagnosticEngine diag;
  VerifyRunResult compact = RunVerification(config, diag, base);
  ASSERT_TRUE(compact.ok) << Describe(compact);
  EXPECT_EQ(compact.safety.states_stored, full.safety.states_stored);
  EXPECT_EQ(compact.safety.state_bytes, 8 * compact.safety.states_stored);
  // The acceptance bar: at least 4x less memory per stored state.
  EXPECT_GE(full.safety.state_bytes, 4 * compact.safety.state_bytes);
}

// Determinism across worker counts on the EepDriver/Transaction verifier
// (with fault branches, so native nondet is in the mix): 1 and 4 threads in
// full-state mode must store the same states, take the same transitions and
// reach the same verdict; fingerprint-only must agree on the verdict.
TEST(ParallelVerify, EepTransactionDeterministicAcrossThreadCounts) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 4;
  config.fault_events = 1;

  // POR off throughout: stored-state equality across thread counts is only
  // guaranteed for the unreduced search (the engines' cycle provisos differ).
  check::CheckerOptions one;
  one.num_threads = 1;
  one.por = false;
  DiagnosticEngine diag1;
  VerifyRunResult sequential = RunVerification(config, diag1, one);
  ASSERT_FALSE(diag1.HasErrors()) << diag1.RenderAll();
  ASSERT_TRUE(sequential.ok) << Describe(sequential);

  check::CheckerOptions four;
  four.num_threads = 4;
  four.por = false;
  DiagnosticEngine diag4;
  VerifyRunResult parallel = RunVerification(config, diag4, four);
  ASSERT_FALSE(diag4.HasErrors()) << diag4.RenderAll();
  ASSERT_TRUE(parallel.ok) << Describe(parallel);
  EXPECT_EQ(parallel.safety.states_stored, sequential.safety.states_stored);
  EXPECT_EQ(parallel.safety.transitions, sequential.safety.transitions);
  EXPECT_EQ(parallel.liveness.states_stored, sequential.liveness.states_stored);

  check::CheckerOptions compact = four;
  compact.fingerprint_only = true;
  DiagnosticEngine diagc;
  VerifyRunResult fingerprint = RunVerification(config, diagc, compact);
  ASSERT_FALSE(diagc.HasErrors()) << diagc.RenderAll();
  EXPECT_TRUE(fingerprint.ok) << Describe(fingerprint);
  EXPECT_EQ(fingerprint.safety.states_stored, sequential.safety.states_stored);
}

TEST(VerifySuite, PoolRunsCombosIndependently) {
  std::vector<VerifyConfig> configs;
  VerifyConfig symbol;
  symbol.level = VerifyLevel::kSymbol;
  symbol.num_ops = 2;
  configs.push_back(symbol);
  VerifyConfig byte_abs;
  byte_abs.level = VerifyLevel::kByte;
  byte_abs.abstraction = VerifyAbstraction::kSymbol;
  byte_abs.num_ops = 2;
  configs.push_back(byte_abs);
  VerifyConfig quirk;
  quirk.level = VerifyLevel::kByte;
  quirk.num_ops = 1;
  quirk.ks0127_responder = true;
  configs.push_back(quirk);

  std::vector<VerifySuiteItem> items = RunVerificationSuite(configs, {}, /*pool_threads=*/3);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(items[0].error.empty()) << items[0].error;
  EXPECT_TRUE(items[0].result.ok);
  EXPECT_TRUE(items[1].result.ok);
  // The quirk combo must still fail with the deadlock, in input order.
  EXPECT_FALSE(items[2].result.safety.ok);
  ASSERT_TRUE(items[2].result.safety.violation.has_value());
  EXPECT_EQ(items[2].result.safety.violation->kind, check::ViolationKind::kInvalidEndState);
}

}  // namespace
}  // namespace efeu::i2c
