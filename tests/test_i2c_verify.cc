// End-to-end verification tests: every stack level at every abstraction
// passes; the quirk configurations fail exactly the way the paper describes
// (section 4.5).

#include <gtest/gtest.h>

#include "src/i2c/verify.h"

namespace efeu::i2c {
namespace {

std::string Describe(const VerifyRunResult& result) {
  std::string out;
  if (result.safety.violation.has_value()) {
    out += "safety: " + result.safety.violation->message + "\n";
    for (const std::string& step : result.safety.violation->trace) {
      out += "  " + step + "\n";
    }
  }
  if (result.liveness.violation.has_value()) {
    out += "liveness: " + result.liveness.violation->message;
  }
  return out;
}

VerifyRunResult RunConfig(const VerifyConfig& config) {
  DiagnosticEngine diag;
  VerifyRunResult result = RunVerification(config, diag);
  EXPECT_FALSE(diag.HasErrors()) << diag.RenderAll();
  return result;
}

TEST(SymbolVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
  EXPECT_GT(result.safety.states_stored, 0u);
}

TEST(SymbolVerifier, FullStackWithStretchingPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  config.stretch_input = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(SymbolVerifier, RaspberryPiControllerFailsWithStretching) {
  // The Raspberry Pi hardware controller does not handle clock stretching;
  // the standard Symbol verifier detects problems in the modified stack.
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  config.stretch_input = true;
  config.no_clock_stretching = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_FALSE(result.ok);
}

TEST(SymbolVerifier, RaspberryPiControllerPassesWithoutStretching) {
  // Removing clock stretching from the input space models a responder that
  // never stretches; then the verifier passes (paper section 4.5).
  VerifyConfig config;
  config.level = VerifyLevel::kSymbol;
  config.num_ops = 2;
  config.stretch_input = false;
  config.no_clock_stretching = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(ByteVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(ByteVerifier, SymbolAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.abstraction = VerifyAbstraction::kSymbol;
  config.num_ops = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(ByteVerifier, AbstractionShrinksStateSpace) {
  VerifyConfig full;
  full.level = VerifyLevel::kByte;
  full.num_ops = 2;
  VerifyConfig abstracted = full;
  abstracted.abstraction = VerifyAbstraction::kSymbol;
  VerifyRunResult full_result = RunConfig(full);
  VerifyRunResult abs_result = RunConfig(abstracted);
  ASSERT_TRUE(full_result.ok) << Describe(full_result);
  ASSERT_TRUE(abs_result.ok) << Describe(abs_result);
  EXPECT_LT(abs_result.safety.states_stored, full_result.safety.states_stored);
}

TEST(ByteVerifier, Ks0127WithStandardControllerDeadlocks) {
  // Standard controller + KS0127 responder: the system can enter an invalid
  // end state (paper section 4.5).
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 1;
  config.ks0127_responder = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_FALSE(result.safety.ok);
  ASSERT_TRUE(result.safety.violation.has_value());
  EXPECT_EQ(result.safety.violation->kind, check::ViolationKind::kInvalidEndState);
}

TEST(ByteVerifier, Ks0127WithCompatControllerPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kByte;
  config.num_ops = 1;
  config.ks0127_responder = true;
  config.ks0127_compat_controller = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, ByteAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.abstraction = VerifyAbstraction::kByte;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, SymbolAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.abstraction = VerifyAbstraction::kSymbol;
  config.num_ops = 1;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.num_ops = 1;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(TransactionVerifier, Ks0127StackFullyVerifies) {
  // Above the modified Byte layers the Transaction layer is used unmodified
  // and the stack fully verifies (paper section 4.5).
  VerifyConfig config;
  config.level = VerifyLevel::kTransaction;
  config.num_ops = 1;
  config.max_len = 1;
  config.ks0127_responder = true;
  config.ks0127_compat_controller = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, TransactionAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, ByteAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kByte;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, SymbolAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kSymbol;
  config.num_ops = 1;
  config.max_len = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, FullStackPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.num_ops = 1;
  config.max_len = 1;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, TwoEepromsTransactionAbstractionPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_eeproms = 2;
  config.num_ops = 2;
  config.max_len = 2;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

TEST(EepVerifier, VariablePayloadPasses) {
  VerifyConfig config;
  config.level = VerifyLevel::kEepDriver;
  config.abstraction = VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 2;
  config.variable_payload = true;
  VerifyRunResult result = RunConfig(config);
  EXPECT_TRUE(result.ok) << Describe(result);
}

}  // namespace
}  // namespace efeu::i2c
