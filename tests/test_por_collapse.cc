// Equivalence and regression tests for the state-space reductions: ample-set
// partial-order reduction (CheckerOptions::por) and COLLAPSE-style compressed
// state storage (CheckerOptions::collapse).
//
// The equivalence suite runs every shipped i2c and spi verifier configuration
// (passing, quirk-violating, and fault-injection) under all four
// {por, collapse} x {on, off} combinations, sequentially and with
// num_threads > 1, and requires identical verdicts. COLLAPSE additionally
// must not change state or transition counts at all — it is pure storage.
//
// The targeted regressions pin the soundness obligations of the reduction on
// synthetic systems: the cycle proviso (a naive ample set would orbit a
// reduced rendezvous cycle forever and hide a third process's violation),
// deadlock detection through reduced states, and non-progress cycles whose
// every edge is a reduced transfer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/checker.h"
#include "src/i2c/verify.h"
#include "src/ir/compile.h"
#include "src/spi/verify.h"

namespace efeu {
namespace {

check::CheckerOptions Combo(bool por, bool collapse) {
  check::CheckerOptions options;
  options.por = por;
  options.collapse = collapse;
  return options;
}

void ExpectValidTrace(const check::CheckResult& result, const std::string& context) {
  if (result.ok || !result.violation.has_value()) {
    return;
  }
  for (const std::string& step : result.violation->trace) {
    EXPECT_FALSE(step.empty()) << context << ": empty trace line";
  }
  if (result.violation->kind == check::ViolationKind::kAssertionFailed ||
      result.violation->kind == check::ViolationKind::kNonProgressCycle) {
    EXPECT_FALSE(result.violation->trace.empty())
        << context << ": counterexample trace missing";
  }
}

// -- Equivalence suite over the shipped verifiers ----------------------------

struct I2cCase {
  const char* name;
  i2c::VerifyConfig config;
};

std::vector<I2cCase> I2cCases() {
  std::vector<I2cCase> cases;
  {
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kSymbol;
    c.num_ops = 2;
    cases.push_back({"symbol/full", c});
  }
  {
    // Raspberry Pi quirk: the no-clock-stretching controller against a
    // stretching input space — a violating configuration.
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kSymbol;
    c.num_ops = 2;
    c.stretch_input = true;
    c.no_clock_stretching = true;
    cases.push_back({"symbol/no-stretch-quirk", c});
  }
  {
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kByte;
    c.num_ops = 2;
    cases.push_back({"byte/full", c});
  }
  {
    // KS0127 responder with the standard controller: deadlocks (invalid end
    // state, paper section 4.5).
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kByte;
    c.num_ops = 1;
    c.ks0127_responder = true;
    cases.push_back({"byte/ks0127-deadlock", c});
  }
  {
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kTransaction;
    c.abstraction = i2c::VerifyAbstraction::kByte;
    c.num_ops = 2;
    c.max_len = 3;
    cases.push_back({"transaction/byte-abs", c});
  }
  {
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kEepDriver;
    c.abstraction = i2c::VerifyAbstraction::kTransaction;
    c.num_ops = 2;
    c.max_len = 3;
    cases.push_back({"eep/txn", c});
  }
  {
    // Fault injection: every schedule of up to 2 NACKed bus events.
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kEepDriver;
    c.abstraction = i2c::VerifyAbstraction::kTransaction;
    c.num_ops = 2;
    c.max_len = 4;
    c.fault_events = 2;
    cases.push_back({"eep/txn/faults2", c});
  }
  {
    // Soft reset as a nondeterministic event: reset convergence must survive
    // both reductions.
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kEepDriver;
    c.abstraction = i2c::VerifyAbstraction::kTransaction;
    c.num_ops = 2;
    c.max_len = 3;
    c.reset_events = 1;
    cases.push_back({"eep/txn/resets1", c});
  }
  {
    // A fault and a reset composed in one schedule.
    i2c::VerifyConfig c;
    c.level = i2c::VerifyLevel::kEepDriver;
    c.abstraction = i2c::VerifyAbstraction::kTransaction;
    c.num_ops = 2;
    c.max_len = 2;
    c.fault_events = 1;
    c.reset_events = 1;
    cases.push_back({"eep/txn/faults1-resets1", c});
  }
  return cases;
}

TEST(PorCollapseEquivalence, I2cVerifiersAgreeAcrossAllCombos) {
  for (const I2cCase& entry : I2cCases()) {
    DiagnosticEngine diag;
    i2c::VerifyRunResult baseline =
        i2c::RunVerification(entry.config, diag, Combo(false, false));
    ASSERT_FALSE(diag.HasErrors()) << entry.name << "\n" << diag.RenderAll();
    ExpectValidTrace(baseline.safety, std::string(entry.name) + " baseline");

    for (bool por : {false, true}) {
      for (bool collapse : {false, true}) {
        if (!por && !collapse) {
          continue;
        }
        DiagnosticEngine d;
        i2c::VerifyRunResult r =
            i2c::RunVerification(entry.config, d, Combo(por, collapse));
        std::string context = std::string(entry.name) + " por=" +
                              (por ? "1" : "0") + " collapse=" + (collapse ? "1" : "0");
        EXPECT_EQ(r.ok, baseline.ok) << context;
        EXPECT_EQ(r.safety.ok, baseline.safety.ok) << context;
        if (!baseline.safety.ok && !r.safety.ok) {
          ASSERT_TRUE(r.safety.violation.has_value()) << context;
          EXPECT_EQ(r.safety.violation->kind, baseline.safety.violation->kind)
              << context;
        }
        ExpectValidTrace(r.safety, context);
        // COLLAPSE is pure storage: with the same por setting, counts match
        // the uncompressed search exactly, and reduced searches never store
        // more states than the baseline.
        EXPECT_LE(r.safety.states_stored, baseline.safety.states_stored) << context;
      }
    }

    // collapse on/off with matching por: identical exploration.
    for (bool por : {false, true}) {
      DiagnosticEngine d1;
      i2c::VerifyRunResult plain =
          i2c::RunVerification(entry.config, d1, Combo(por, false));
      DiagnosticEngine d2;
      i2c::VerifyRunResult compressed =
          i2c::RunVerification(entry.config, d2, Combo(por, true));
      EXPECT_EQ(plain.safety.states_stored, compressed.safety.states_stored)
          << entry.name << " por=" << por;
      EXPECT_EQ(plain.safety.transitions, compressed.safety.transitions)
          << entry.name << " por=" << por;
      EXPECT_EQ(plain.ok, compressed.ok) << entry.name << " por=" << por;
    }
  }
}

TEST(PorCollapseEquivalence, I2cParallelVerdictsMatchSequential) {
  for (const I2cCase& entry : I2cCases()) {
    DiagnosticEngine diag;
    i2c::VerifyRunResult sequential =
        i2c::RunVerification(entry.config, diag, Combo(true, true));
    check::CheckerOptions parallel_options = Combo(true, true);
    parallel_options.num_threads = 4;
    DiagnosticEngine diag2;
    i2c::VerifyRunResult parallel =
        i2c::RunVerification(entry.config, diag2, parallel_options);
    EXPECT_EQ(sequential.ok, parallel.ok) << entry.name;
    EXPECT_EQ(sequential.safety.ok, parallel.safety.ok) << entry.name;
    ExpectValidTrace(parallel.safety, std::string(entry.name) + " parallel");
  }
}

struct SpiCase {
  const char* name;
  spi::SpiVerifyConfig config;
};

std::vector<SpiCase> SpiCases() {
  std::vector<SpiCase> cases;
  {
    spi::SpiVerifyConfig c;
    c.level = spi::SpiVerifyLevel::kByte;
    c.num_ops = 2;
    cases.push_back({"spi-byte", c});
  }
  {
    spi::SpiVerifyConfig c;
    c.level = spi::SpiVerifyLevel::kDriver;
    c.num_ops = 2;
    cases.push_back({"spi-driver", c});
  }
  {
    // Clock-phase mismatch: mode-1 controller against the mode-0 device.
    spi::SpiVerifyConfig c;
    c.level = spi::SpiVerifyLevel::kByte;
    c.num_ops = 1;
    c.mode1_controller = true;
    cases.push_back({"spi-byte/mode1", c});
  }
  {
    spi::SpiVerifyConfig c;
    c.level = spi::SpiVerifyLevel::kDriver;
    c.num_ops = 2;
    c.mode1_controller = true;
    cases.push_back({"spi-driver/mode1", c});
  }
  return cases;
}

TEST(PorCollapseEquivalence, SpiVerifiersAgreeAcrossAllCombos) {
  for (const SpiCase& entry : SpiCases()) {
    DiagnosticEngine diag;
    spi::SpiVerifyResult baseline =
        spi::RunSpiVerification(entry.config, diag, Combo(false, false));
    ASSERT_FALSE(diag.HasErrors()) << entry.name << "\n" << diag.RenderAll();

    for (bool por : {false, true}) {
      for (bool collapse : {false, true}) {
        if (!por && !collapse) {
          continue;
        }
        DiagnosticEngine d;
        spi::SpiVerifyResult r =
            spi::RunSpiVerification(entry.config, d, Combo(por, collapse));
        std::string context = std::string(entry.name) + " por=" +
                              (por ? "1" : "0") + " collapse=" + (collapse ? "1" : "0");
        EXPECT_EQ(r.ok, baseline.ok) << context;
        EXPECT_EQ(r.safety.ok, baseline.safety.ok) << context;
        if (!baseline.safety.ok && !r.safety.ok) {
          ASSERT_TRUE(r.safety.violation.has_value()) << context;
          EXPECT_EQ(r.safety.violation->kind, baseline.safety.violation->kind)
              << context;
        }
        ExpectValidTrace(r.safety, context);
        EXPECT_LE(r.safety.states_stored, baseline.safety.states_stored) << context;
      }
    }

    // Parallel engine, reductions on: same verdict as the sequential search.
    check::CheckerOptions parallel_options = Combo(true, true);
    parallel_options.num_threads = 4;
    DiagnosticEngine diag2;
    spi::SpiVerifyResult parallel =
        spi::RunSpiVerification(entry.config, diag2, parallel_options);
    EXPECT_EQ(parallel.ok, baseline.ok) << entry.name << " parallel";
    EXPECT_EQ(parallel.safety.ok, baseline.safety.ok) << entry.name << " parallel";
  }
}

// COLLAPSE memory claim on the fault-injection configuration the benches
// record: component-id tuples plus the component pool must come in at least
// 3x below the uncompressed state vectors.
TEST(PorCollapseEquivalence, CollapseCutsBytesPerStateAtLeast3x) {
  i2c::VerifyConfig config;
  config.level = i2c::VerifyLevel::kEepDriver;
  config.abstraction = i2c::VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 4;
  config.fault_events = 2;
  DiagnosticEngine diag;
  i2c::VerifyRunResult plain = i2c::RunVerification(config, diag, Combo(false, false));
  DiagnosticEngine diag2;
  i2c::VerifyRunResult compressed =
      i2c::RunVerification(config, diag2, Combo(false, true));
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(compressed.ok);
  ASSERT_EQ(plain.safety.states_stored, compressed.safety.states_stored);
  uint64_t compressed_total =
      compressed.safety.state_bytes + compressed.safety.component_bytes;
  EXPECT_GE(plain.safety.state_bytes, 3 * compressed_total)
      << "plain=" << plain.safety.state_bytes << " compressed=" << compressed_total;
}

// -- Targeted regressions on synthetic systems -------------------------------

constexpr const char* kEsi = R"esi(
layer Up;
layer Down;
interface <Up, Down> {
  => { i32 v; },
  <= { i32 r; }
};
)esi";

std::unique_ptr<ir::Compilation> Compile(const std::string& esm) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = true;
  auto comp = ir::Compile(kEsi, esm, diag, options);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

void Wire(check::CheckedSystem& system, const ir::Compilation& comp, int up, int down) {
  system.ConnectByChannel(up, down, comp.system().FindChannel("Up", "Down"));
  system.ConnectByChannel(down, up, comp.system().FindChannel("Down", "Up"));
}

// A rendezvous pair that exchanges forever on its exclusive channel. Every
// state on that orbit has the transfer as an ample candidate, so a naive
// reduction would explore only the A<->B cycle — closing it against the
// visited set — and never expand the third process, hiding its assertion
// failure. The cycle proviso (ample edge hits the DFS stack -> full
// expansion) must recover it.
TEST(PorRegression, CycleProvisoRecoversHiddenViolation) {
  auto pair = Compile(R"esm(
void Up() {
  DownToUp r;
  spin:
  r = UpTalkDown(1);
  goto spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  auto bystander = Compile(R"esm(
void Up() {
  int x;
  x = nondet(2);
  assert(x != 1);
}
)esm");
  for (bool por : {true, false}) {
    check::CheckedSystem system;
    int up = system.AddModule(pair->FindModule("Up"), "Up");
    int down = system.AddModule(pair->FindModule("Down"), "Down");
    system.AddModule(bystander->FindModule("Up"), "Bystander");
    Wire(system, *pair, up, down);
    check::CheckerOptions options = Combo(por, true);
    check::CheckResult result = system.Check(options);
    ASSERT_FALSE(result.ok) << "por=" << por;
    EXPECT_EQ(result.violation->kind, check::ViolationKind::kAssertionFailed)
        << "por=" << por;
    EXPECT_FALSE(result.violation->trace.empty()) << "por=" << por;
  }
}

// Deadlock behind reduced states: the pair exchanges once over the exclusive
// channel, then the receiver parks at a non-end label, while a bystander's
// choices keep the early states multi-transition (so the reduction actually
// engages). The invalid end state must be reported either way.
TEST(PorRegression, DeadlockDetectedThroughReducedStates) {
  auto pair = Compile(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(1);
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  stuck:
  q = DownReadUp();
}
)esm");
  auto bystander = Compile(R"esm(
void Up() {
  int x;
  x = nondet(3);
}
)esm");
  for (bool por : {true, false}) {
    check::CheckedSystem system;
    int up = system.AddModule(pair->FindModule("Up"), "Up");
    int down = system.AddModule(pair->FindModule("Down"), "Down");
    system.AddModule(bystander->FindModule("Up"), "Bystander");
    system.ConnectByChannel(up, down, pair->system().FindChannel("Up", "Down"));
    check::CheckerOptions options = Combo(por, true);
    check::CheckResult result = system.Check(options);
    ASSERT_FALSE(result.ok) << "por=" << por;
    EXPECT_EQ(result.violation->kind, check::ViolationKind::kInvalidEndState)
        << "por=" << por;
  }
}

// A non-progress cycle whose every edge is a reducible exclusive-channel
// transfer, with a bystander keeping the states multi-transition. The
// livelock-sensitive ample check plus the stack proviso must still surface
// the cycle.
TEST(PorRegression, LivelockAcrossReducedEdgesDetected) {
  auto pair = Compile(R"esm(
void Up() {
  DownToUp r;
  spin:
  r = UpTalkDown(1);
  goto spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  auto bystander = Compile(R"esm(
void Up() {
  int x;
  x = nondet(3);
}
)esm");
  for (bool por : {true, false}) {
    check::CheckedSystem system;
    int up = system.AddModule(pair->FindModule("Up"), "Up");
    int down = system.AddModule(pair->FindModule("Down"), "Down");
    system.AddModule(bystander->FindModule("Up"), "Bystander");
    Wire(system, *pair, up, down);
    check::CheckerOptions options = Combo(por, true);
    options.check_deadlock = false;
    options.check_livelock = true;
    check::CheckResult result = system.Check(options);
    ASSERT_FALSE(result.ok) << "por=" << por;
    EXPECT_EQ(result.violation->kind, check::ViolationKind::kNonProgressCycle)
        << "por=" << por;
  }
}

// Counterpart: the same orbit with a progress label is NOT a livelock, and
// progress visibility (transfers whose participants may pass a progress
// label are never reduced in the livelock-sensitive search) must keep the
// verdict clean rather than hiding the label behind a reduced edge.
TEST(PorRegression, ProgressLabelSurvivesReduction) {
  auto pair = Compile(R"esm(
void Up() {
  DownToUp r;
  progress_spin:
  r = UpTalkDown(1);
  goto progress_spin;
}
void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  end_reply:
  q = DownTalkUp(2);
  goto end_reply;
}
)esm");
  auto bystander = Compile(R"esm(
void Up() {
  int x;
  x = nondet(3);
}
)esm");
  for (bool por : {true, false}) {
    check::CheckedSystem system;
    int up = system.AddModule(pair->FindModule("Up"), "Up");
    int down = system.AddModule(pair->FindModule("Down"), "Down");
    system.AddModule(bystander->FindModule("Up"), "Bystander");
    Wire(system, *pair, up, down);
    check::CheckerOptions options = Combo(por, true);
    options.check_deadlock = false;
    options.check_livelock = true;
    EXPECT_TRUE(system.Check(options).ok) << "por=" << por;
  }
}

// Forced-run chain compression must actually bite on the serialized
// fault-injection pipeline (the configs BENCH_check.json records): those
// state spaces are dominated by singleton-transition states that classic
// ample sets never touch (PickAmple refuses to reduce a singleton set).
// Tripwire for the regression where por_reduced_states was 0 on every
// EEPROM fault config and por=on stored exactly as many states as por=off.
TEST(PorCollapseEquivalence, FaultConfigsReportPorReduction) {
  i2c::VerifyConfig config;
  config.level = i2c::VerifyLevel::kEepDriver;
  config.abstraction = i2c::VerifyAbstraction::kTransaction;
  config.num_ops = 2;
  config.max_len = 4;
  config.fault_events = 2;

  DiagnosticEngine diag;
  i2c::VerifyRunResult reduced = i2c::RunVerification(config, diag, Combo(true, true));
  ASSERT_FALSE(diag.HasErrors()) << diag.RenderAll();
  ASSERT_TRUE(reduced.ok);
  EXPECT_GT(reduced.safety.por_reduced_states, 0u)
      << "POR elided nothing on a fault config (ample starvation regression)";

  DiagnosticEngine diag2;
  i2c::VerifyRunResult baseline = i2c::RunVerification(config, diag2, Combo(false, true));
  ASSERT_FALSE(diag2.HasErrors()) << diag2.RenderAll();
  ASSERT_TRUE(baseline.ok);
  EXPECT_LT(reduced.safety.states_stored, baseline.safety.states_stored)
      << "por=on should store strictly fewer states than por=off here";

  // The parallel engine applies the same sampling rule and must agree on the
  // stored set exactly.
  check::CheckerOptions parallel_options = Combo(true, true);
  parallel_options.num_threads = 4;
  DiagnosticEngine diag3;
  i2c::VerifyRunResult parallel =
      i2c::RunVerification(config, diag3, parallel_options);
  ASSERT_TRUE(parallel.ok);
  EXPECT_EQ(parallel.safety.states_stored, reduced.safety.states_stored);
}

}  // namespace
}  // namespace efeu
