// Tier-1 slice of the fuzz subsystem: generator determinism and acceptance,
// bounded five-way differential smoke runs (fixed seeds, seconds not hours),
// minimizer behaviour, corpus replay, the esmc exit-code contract, and named
// regression tests for the C-backend bugs the fuzzer found. The open-ended
// nightly campaign lives in CI (`esmfuzz --iterations 500 ...`), not here.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/fuzz/differential.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/minimize.h"
#include "src/fuzz/mutator.h"
#include "src/fuzz/rng.h"

namespace efeu::fuzz {
namespace {

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(FuzzGenerator, SameSeedIsByteIdentical) {
  for (uint64_t seed : {1u, 7u, 42u, 20260808u, 999999u}) {
    SpecModel a = GenerateSpec(seed);
    SpecModel b = GenerateSpec(seed);
    EXPECT_EQ(a.RenderEsi(), b.RenderEsi()) << "seed " << seed;
    EXPECT_EQ(a.RenderEsm(), b.RenderEsm()) << "seed " << seed;
    EXPECT_EQ(a.stimuli, b.stimuli) << "seed " << seed;
  }
}

TEST(FuzzGenerator, DifferentSeedsDiffer) {
  // Not a hard guarantee for any single pair, but over five seeds at least
  // one body must differ or the generator is ignoring its seed.
  std::vector<std::string> bodies;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    bodies.push_back(GenerateSpec(seed).RenderEsm());
  }
  bool any_differ = false;
  for (size_t i = 1; i < bodies.size(); ++i) {
    any_differ = any_differ || bodies[i] != bodies[0];
  }
  EXPECT_TRUE(any_differ);
}

TEST(FuzzGenerator, GeneratedSpecsAreAlwaysAccepted) {
  // Well-typed by construction: the frontend must accept every generated
  // spec. Runs without the C target or the VM tiers to stay fast.
  DifferentialOptions options;
  options.run_c = false;
  options.run_vm_tiers = false;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    SpecModel model = GenerateSpec(seed);
    DifferentialResult result = RunDifferential(model, options);
    EXPECT_TRUE(result.accepted) << "seed " << seed << ": " << result.reject_reason;
  }
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

TEST(FuzzDifferential, CheckerVmRtlAgreeOnFixedSeeds) {
  DifferentialOptions options;
  options.run_c = false;
  options.run_vm_tiers = false;  // Tier coverage: ExecutionTiersAgreeOnFixedSeeds.
  for (uint64_t seed = 100; seed < 140; ++seed) {
    DifferentialResult result = RunDifferential(GenerateSpec(seed), options);
    ASSERT_TRUE(result.accepted) << "seed " << seed << ": " << result.reject_reason;
    EXPECT_TRUE(result.agree) << "seed " << seed << ": " << result.divergence;
  }
}

// The VM execution tiers ride every differential run (run_vm_tiers defaults
// on); this pins a dedicated fixed-seed slice where the traces must agree on
// verdict, error text, replies, channels, and final variables — including
// seeds whose runs fail, where the tiers must fail identically.
TEST(FuzzDifferential, ExecutionTiersAgreeOnFixedSeeds) {
  DifferentialOptions options;
  options.run_c = false;
  for (uint64_t seed = 300; seed < 330; ++seed) {
    DifferentialResult result = RunDifferential(GenerateSpec(seed), options);
    ASSERT_TRUE(result.accepted) << "seed " << seed << ": " << result.reject_reason;
    EXPECT_TRUE(result.agree) << "seed " << seed << ": " << result.divergence;
    EXPECT_EQ(result.vm_threaded.verdict, result.vm.verdict) << "seed " << seed;
    EXPECT_EQ(result.vm_compiled.verdict, result.vm.verdict) << "seed " << seed;
    EXPECT_EQ(result.vm_threaded.error, result.vm.error) << "seed " << seed;
    EXPECT_EQ(result.vm_compiled.error, result.vm.error) << "seed " << seed;
  }
}

// The symbolic executor rides every differential run too (run_sym defaults
// on, with unconstrained external words): when it proves EVERY obligation of
// a spec, no schedule may fail, so a failing execution target would be an
// executor soundness bug. This pins a fixed-seed slice where the cross-check
// must hold and must actually engage (obligations counted, some fully
// proved) — a slice where sym never ran would make the guarantee vacuous.
TEST(FuzzDifferential, SymVerdictsAgreeWithExecutionOnFixedSeeds) {
  DifferentialOptions options;
  options.run_c = false;
  options.run_vm_tiers = false;
  int total_obligations = 0;
  int fully_proved_specs = 0;
  for (uint64_t seed = 400; seed < 440; ++seed) {
    DifferentialResult result = RunDifferential(GenerateSpec(seed), options);
    ASSERT_TRUE(result.accepted) << "seed " << seed << ": " << result.reject_reason;
    EXPECT_TRUE(result.sym_ran) << "seed " << seed;
    EXPECT_TRUE(result.sym_consistent) << "seed " << seed << ": " << result.sym_error;
    total_obligations += result.sym_obligations;
    fully_proved_specs += result.sym_all_proved ? 1 : 0;
  }
  EXPECT_GT(total_obligations, 0);
  EXPECT_GT(fully_proved_specs, 0);
}

TEST(FuzzDifferential, GeneratedCAgreesOnFixedSeeds) {
  if (!HaveCCompiler()) {
    GTEST_SKIP() << "no C compiler on PATH";
  }
  for (uint64_t seed = 200; seed < 210; ++seed) {
    DifferentialResult result = RunDifferential(GenerateSpec(seed));
    ASSERT_TRUE(result.accepted) << "seed " << seed << ": " << result.reject_reason;
    EXPECT_TRUE(result.agree) << "seed " << seed << ": " << result.divergence;
    if (result.vm.verdict == Verdict::kOk) {
      EXPECT_TRUE(result.c_ran) << "seed " << seed;
    }
  }
}

TEST(FuzzDifferential, VerdictIsDeterministicAcrossRunsAndCheckerThreads) {
  DifferentialOptions options;
  options.run_c = false;
  options.run_vm_tiers = false;
  for (uint64_t seed : {11u, 23u, 307u, 5001u}) {
    SpecModel model = GenerateSpec(seed);
    DifferentialResult first = RunDifferential(model, options);
    DifferentialResult second = RunDifferential(model, options);
    ASSERT_TRUE(first.accepted) << "seed " << seed;
    EXPECT_EQ(first.vm.verdict, second.vm.verdict) << "seed " << seed;
    EXPECT_EQ(first.vm.replies, second.vm.replies) << "seed " << seed;
    EXPECT_EQ(first.agree, second.agree) << "seed " << seed;
    EXPECT_EQ(first.divergence, second.divergence) << "seed " << seed;

    // The parallel model-check engine must reach the same verdict with one
    // and two worker threads.
    DifferentialOptions with_threads = options;
    with_threads.compare_checker_threads = true;
    DifferentialResult threaded = RunDifferential(model, with_threads);
    EXPECT_TRUE(threaded.checker_parallel_consistent)
        << "seed " << seed << ": " << threaded.checker_parallel_error;
  }
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(FuzzMinimize, ShrinksWhilePreservingTheOracle) {
  DifferentialOptions options;
  options.run_c = false;
  // Oracle: the spec still runs and all no-C targets still agree — a stand-in
  // for "still reproduces the divergence" that lets the test exercise every
  // reduction pass without needing a live compiler bug.
  MinimizeOracle oracle = [&](const SpecModel& candidate) {
    DifferentialResult r = RunDifferential(candidate, options);
    return r.accepted && r.agree;
  };
  SpecModel base = GenerateSpec(31337);
  ASSERT_TRUE(oracle(base));
  MinimizeStats stats;
  SpecModel reduced = Minimize(base, oracle, MinimizeOptions{}, &stats);
  EXPECT_GT(stats.attempts, 0);
  EXPECT_TRUE(oracle(reduced));
  EXPECT_LE(reduced.stimuli.size(), base.stimuli.size());
  // The schedule-shrinking pass alone guarantees a single-step schedule here.
  EXPECT_EQ(reduced.stimuli.size(), 1u);
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

TEST(FuzzCorpus, SerializeRoundTrips) {
  SpecModel model = GenerateSpec(77);
  CorpusEntry entry = EntryFromModel(model, "round trip\nsecond line");
  std::string text = SerializeEntry(entry);
  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(ParseEntry(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, entry.seed);
  EXPECT_EQ(parsed.note, entry.note);
  EXPECT_EQ(parsed.esi, entry.esi);
  EXPECT_EQ(parsed.esm, entry.esm);
  EXPECT_EQ(parsed.stimuli, entry.stimuli);
}

// Replays every committed corpus entry (seed specs and minimized repros of
// fixed bugs) through the full differential harness.
TEST(FuzzCorpus, FuzzCorpusReplay) {
  std::vector<CorpusEntry> entries;
  std::string error;
  ASSERT_TRUE(LoadCorpusDir(EFEU_FUZZ_CORPUS_DIR, &entries, &error)) << error;
  ASSERT_GE(entries.size(), 8u);
  DifferentialOptions options;
  options.run_c = HaveCCompiler();
  for (const CorpusEntry& entry : entries) {
    DifferentialResult result =
        RunDifferential(entry.esi, entry.esm, entry.stimuli, options);
    ASSERT_TRUE(result.accepted) << entry.name << ": " << result.reject_reason;
    EXPECT_TRUE(result.agree) << entry.name << ": " << result.divergence;
    // Every committed repro also replays through the symbolic soundness
    // cross-check: a corpus entry that once exposed an executor bug must
    // keep exposing it.
    EXPECT_TRUE(result.sym_ran) << entry.name;
    EXPECT_TRUE(result.sym_consistent) << entry.name << ": " << result.sym_error;
  }
}

// ---------------------------------------------------------------------------
// Named regressions for fuzzer-found C-backend bugs. Each replays the
// minimized repro the campaign dumped when it first caught the bug.
// ---------------------------------------------------------------------------

DifferentialResult ReplayCorpusEntry(const std::string& name) {
  CorpusEntry entry;
  std::string error;
  std::string path = std::string(EFEU_FUZZ_CORPUS_DIR) + "/" + name;
  EXPECT_TRUE(LoadEntryFile(path, &entry, &error)) << path << ": " << error;
  return RunDifferential(entry.esi, entry.esm, entry.stimuli);
}

// The C arg staging used to emit `dest.f = (bit)(expr)` for bit fields: an
// unsigned char cast, so 138 stayed 138 where every interpreter stores 1.
TEST(FuzzRegression, CBackendBitArgStagingTruncates) {
  if (!HaveCCompiler()) {
    GTEST_SKIP() << "no C compiler on PATH";
  }
  DifferentialResult result = ReplayCorpusEntry("cbackend_bit_arg_staging.efz");
  ASSERT_TRUE(result.accepted) << result.reject_reason;
  EXPECT_TRUE(result.c_ran);
  EXPECT_TRUE(result.agree) << result.divergence;
}

// Assignments into bit-typed locals used to store the raw value, so the
// generated range assert `v >= 0 && v <= 1` fired in C only.
TEST(FuzzRegression, CBackendBitLocalAssignmentTruncates) {
  if (!HaveCCompiler()) {
    GTEST_SKIP() << "no C compiler on PATH";
  }
  DifferentialResult result = ReplayCorpusEntry("cbackend_bit_local_assignment.efz");
  ASSERT_TRUE(result.accepted) << result.reject_reason;
  EXPECT_TRUE(result.agree) << result.divergence;
}

// C gives an all-non-negative enum an unsigned underlying type, so
// `cmd.c0 - r.r0` went unsigned and flipped a >= comparison; enum reads now
// print through an (int) cast.
TEST(FuzzRegression, CBackendEnumArithmeticIsSigned) {
  if (!HaveCCompiler()) {
    GTEST_SKIP() << "no C compiler on PATH";
  }
  DifferentialResult result = ReplayCorpusEntry("cbackend_enum_signedness.efz");
  ASSERT_TRUE(result.accepted) << result.reject_reason;
  EXPECT_TRUE(result.c_ran);
  EXPECT_TRUE(result.agree) << result.divergence;
}

// The Verilog backend emitted a handshake segment's plain instructions above
// the valid/ready if-else, so they re-ran on every wait cycle: `v0 = 14 + v0`
// before a talk incremented once per cycle the peer held ready low. The RTL
// simulator mirrored the bug. Body now runs once, on the first-entry cycle.
// These run without the C target: the divergence is RTL vs VM/checker.
TEST(FuzzRegression, RtlHandshakeBodyRunsOncePerSend) {
  DifferentialResult result = ReplayCorpusEntry("verilog_send_wait_reexec.efz");
  ASSERT_TRUE(result.accepted) << result.reject_reason;
  EXPECT_TRUE(result.agree) << result.divergence;
}

// Same re-execution bug observed through final variables instead of channel
// traffic, with back-to-back talks to two peer layers.
TEST(FuzzRegression, RtlHandshakeBodyRunsOnceAcrossBackToBackTalks) {
  DifferentialResult result = ReplayCorpusEntry("verilog_handshake_body_once.efz");
  ASSERT_TRUE(result.accepted) << result.reject_reason;
  EXPECT_TRUE(result.agree) << result.divergence;
}

// ---------------------------------------------------------------------------
// Campaign smoke + determinism
// ---------------------------------------------------------------------------

TEST(FuzzCampaign, FixedSeedSmokeIsCleanAndDeterministic) {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 30;
  options.differential.run_c = false;  // keep the tier-1 slice in seconds
  std::ostringstream log_a;
  FuzzStats a = RunFuzzCampaign(options, &log_a);
  EXPECT_EQ(a.generated, 30);
  EXPECT_EQ(a.accepted, 30);
  EXPECT_EQ(a.divergences, 0) << log_a.str();

  std::ostringstream log_b;
  FuzzStats b = RunFuzzCampaign(options, &log_b);
  EXPECT_EQ(a.vm_ok, b.vm_ok);
  EXPECT_EQ(a.vm_assert, b.vm_assert);
  EXPECT_EQ(a.vm_error, b.vm_error);
  EXPECT_EQ(a.vm_stuck, b.vm_stuck);
  EXPECT_EQ(a.divergence_signatures, b.divergence_signatures);
}

TEST(FuzzCampaign, FrontendSurvivesCorruptedText) {
  // Corrupted renderings must produce diagnostics or compile — never crash.
  RunFrontendRobustness(/*seed=*/99, /*iterations=*/60, nullptr);
}

TEST(FuzzMutator, MutatedModelsStillRenderAndRun) {
  DifferentialOptions options;
  options.run_c = false;
  Rng rng(4242);
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    SpecModel base = GenerateSpec(500 + i);
    SpecModel mutant = MutateModel(base, rng);
    DifferentialResult result = RunDifferential(mutant, options);
    if (result.accepted) {
      ++accepted;
      EXPECT_TRUE(result.agree) << "mutant of seed " << (500 + i) << ": "
                                << result.divergence;
    }
  }
  // Mutations may step outside the language, but most must survive.
  EXPECT_GE(accepted, 10);
}

// ---------------------------------------------------------------------------
// esmc exit-code contract: 0 success, 1 file read error, 2 usage or
// parse/sema error, 3 lint findings at error severity — across emit modes.
// ---------------------------------------------------------------------------

class EsmcExitCodes : public ::testing::Test {
 protected:
  static void WriteText(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
  }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/esmc_exit_codes";
    std::system(("mkdir -p " + dir_).c_str());
    WriteText(dir_ + "/ok.esi",
              "layer Env;\n"
              "layer L1;\n"
              "interface <Env, L1> {\n"
              "  => { u8 c0; },\n"
              "  <= { u8 r0; }\n"
              "};\n");
    WriteText(dir_ + "/ok.esm",
              "void L1() {\n"
              "  EnvToL1 cmd;\n"
              "  byte v0;\n"
              "  v0 = 0;\n"
              "  end_init:\n"
              "  cmd = L1ReadEnv();\n"
              "  process:\n"
              "  v0 = cmd.c0;\n"
              "  end_reply:\n"
              "  cmd = L1TalkEnv(v0);\n"
              "  goto process;\n"
              "}\n");
    // Parses but lints: `cmd.c0 + 300` always truncates into a byte.
    WriteText(dir_ + "/lintwarn.esm",
              "void L1() {\n"
              "  EnvToL1 cmd;\n"
              "  byte v0;\n"
              "  v0 = 0;\n"
              "  end_init:\n"
              "  cmd = L1ReadEnv();\n"
              "  process:\n"
              "  v0 = cmd.c0 + 300;\n"
              "  end_reply:\n"
              "  cmd = L1TalkEnv(v0);\n"
              "  goto process;\n"
              "}\n");
    WriteText(dir_ + "/bad.esm", "void L1() { this is not esm at all }\n");
  }

  int RunEsmc(const std::string& args) {
    std::string command = std::string(EFEU_ESMC_PATH) + " " + args +
                          " -o " + dir_ + "/out >/dev/null 2>&1";
    int status = std::system(command.c_str());
    return WEXITSTATUS(status);
  }

  std::string dir_;
};

TEST_F(EsmcExitCodes, SuccessIsZeroAcrossEmitModes) {
  std::string spec = "--esi " + dir_ + "/ok.esi --esm " + dir_ + "/ok.esm ";
  EXPECT_EQ(RunEsmc(spec + "--emit ir"), 0);
  EXPECT_EQ(RunEsmc(spec + "--emit promela"), 0);
  EXPECT_EQ(RunEsmc(spec + "--emit c --entry L1"), 0);
  EXPECT_EQ(RunEsmc(spec + "--emit verilog"), 0);
  EXPECT_EQ(RunEsmc(spec + "--emit mmio --iface Env:L1"), 0);
  EXPECT_EQ(RunEsmc(spec + "--emit monitor --iface Env:L1"), 0);
  EXPECT_EQ(RunEsmc(spec + "--lint"), 0);
}

TEST_F(EsmcExitCodes, ParseSemaErrorIsTwoAcrossEmitModes) {
  std::string spec = "--esi " + dir_ + "/ok.esi --esm " + dir_ + "/bad.esm ";
  EXPECT_EQ(RunEsmc(spec + "--emit ir"), 2);
  EXPECT_EQ(RunEsmc(spec + "--emit promela"), 2);
  EXPECT_EQ(RunEsmc(spec + "--emit c --entry L1"), 2);
  EXPECT_EQ(RunEsmc(spec + "--emit verilog"), 2);
  EXPECT_EQ(RunEsmc(spec + "--emit mmio --iface Env:L1"), 2);
  EXPECT_EQ(RunEsmc(spec + "--emit monitor --iface Env:L1"), 2);
  EXPECT_EQ(RunEsmc(spec + "--lint=Werror"), 2);
}

TEST_F(EsmcExitCodes, FileReadErrorIsOne) {
  EXPECT_EQ(RunEsmc("--esi " + dir_ + "/missing.esi --esm " + dir_ +
                    "/ok.esm --emit ir"),
            1);
  EXPECT_EQ(RunEsmc("--esi " + dir_ + "/ok.esi --esm " + dir_ +
                    "/missing.esm --emit ir"),
            1);
}

TEST_F(EsmcExitCodes, UsageErrorIsTwo) {
  EXPECT_EQ(RunEsmc("--bogus-flag"), 2);
  // An action flag (--emit / --lint / --dump-analysis) is required.
  EXPECT_EQ(RunEsmc("--esi " + dir_ + "/ok.esi --esm " + dir_ + "/ok.esm"), 2);
}

TEST_F(EsmcExitCodes, LintWerrorIsThree) {
  std::string spec = "--esi " + dir_ + "/ok.esi --esm " + dir_ + "/lintwarn.esm ";
  EXPECT_EQ(RunEsmc(spec + "--lint=Werror"), 3);
  // Without escalation the same finding is a warning: success.
  EXPECT_EQ(RunEsmc(spec + "--lint"), 0);
}

}  // namespace
}  // namespace efeu::fuzz
