// Fleet-engine tests: the shared event queue (ordering, tie-breaks, the far
// list, a reference-model stress across cascade boundaries and the
// wrapped-cursor-slot regression), the fleet determinism invariants (the
// aggregate signature is byte-identical across thread counts, and a
// single-stack fleet run matches the same stack run standalone without the
// engine), and the tier-1 fleet soak slice (the >=1024-stack nightly soak
// runs behind EFEU_FLEET_SOAK; EFEU_FLEET_SEED reseeds it).

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/driver/resources.h"
#include "src/sim/event_queue.h"
#include "src/sim/fleet.h"

namespace efeu::sim {
namespace {

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

TEST(EventQueue, PopsInDueOrderWithSeqTieBreak) {
  EventQueue queue;
  queue.Schedule(500.0, 1);
  queue.Schedule(100.0, 2);
  queue.Schedule(100.0, 3);  // same due time: scheduled later, pops later
  queue.Schedule(3e8, 4);    // 300 ms: beyond the wheel block, parks far
  queue.Schedule(0.0, 5);
  EXPECT_EQ(queue.size(), 5u);

  std::vector<uint32_t> order;
  EventQueue::Event event;
  double last = -1;
  while (queue.Pop(&event)) {
    order.push_back(event.source);
    EXPECT_GE(event.due_ns, last);
    last = event.due_ns;
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{5, 2, 3, 1, 4}));
  EXPECT_TRUE(queue.empty());
  EXPECT_GT(queue.stats().far_parked, 0u);
  EXPECT_EQ(queue.stats().max_size, 5u);
}

TEST(EventQueue, PastDueClampsToNow) {
  EventQueue queue;
  queue.Schedule(1000.0, 1);
  EventQueue::Event event;
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_DOUBLE_EQ(queue.now_ns(), 1000.0);
  // A source asking for the past fires at now, not before it.
  queue.Schedule(10.0, 2);
  queue.Schedule(1500.0, 3);
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.source, 2u);
  EXPECT_DOUBLE_EQ(queue.now_ns(), 1000.0);
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.source, 3u);
}

// Regression for the wrapped-cursor-slot livelock: with delta-based level
// selection an entry ~2^16 ticks ahead aliases into its level's cursor slot
// (e.g. now=0x180 ticks, entry at 0x10100 -> level 1, slot 1 = cursor slot)
// and every cascade re-inserts it into the same slot. Block-aligned level
// selection sends it a level up instead; this pins the fix.
TEST(EventQueue, FarAheadEntryAliasingCursorSlotStillPops) {
  constexpr double kNsPerTick = 1.0 / 16.0;
  EventQueue queue;
  queue.Schedule(0x180 * kNsPerTick, 1);
  EventQueue::Event event;
  ASSERT_TRUE(queue.Pop(&event));  // now = 0x180 ticks
  queue.Schedule(0x10100 * kNsPerTick, 2);
  queue.Schedule(0x3F0 * kNsPerTick, 3);
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.source, 3u);
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.source, 2u);
  EXPECT_FALSE(queue.Pop(&event));
}

// Reference-model stress: random schedule/pop interleavings, with due times
// spread to exercise every level, cross-level cascades, ties and the far
// list. The reference is an ordered set over (tick, seq) with the same
// clamp-to-now rule.
TEST(EventQueueStress, MatchesReferenceModel) {
  constexpr double kNsPerTick = 1.0 / 16.0;
  EventQueue queue;
  std::set<std::pair<uint64_t, uint64_t>> reference;  // (tick, seq)
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next_random = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t now_tick = 0;
  uint64_t seq = 0;
  // Offsets chosen to land in every wheel level plus the far list.
  const uint64_t spans[] = {1, 200, 5000, 70000, 1 << 22, 1ull << 30, 5ull << 32};
  for (int i = 0; i < 20000; ++i) {
    bool do_schedule = reference.empty() || next_random() % 3 != 0;
    if (do_schedule) {
      uint64_t span = spans[next_random() % (sizeof(spans) / sizeof(spans[0]))];
      uint64_t tick = now_tick + next_random() % span;
      queue.Schedule(static_cast<double>(tick) * kNsPerTick,
                     static_cast<uint32_t>(i));
      reference.emplace(tick < now_tick ? now_tick : tick, seq++);
    } else {
      EventQueue::Event event;
      ASSERT_TRUE(queue.Pop(&event)) << "iteration " << i;
      auto expect = *reference.begin();
      reference.erase(reference.begin());
      EXPECT_EQ(event.seq, expect.second) << "iteration " << i;
      now_tick = expect.first;
      EXPECT_DOUBLE_EQ(queue.now_ns(),
                       static_cast<double>(now_tick) * kNsPerTick)
          << "iteration " << i;
    }
  }
  // Drain what is left; order must still match.
  EventQueue::Event event;
  while (queue.Pop(&event)) {
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(event.seq, reference.begin()->second);
    reference.erase(reference.begin());
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_GT(queue.stats().cascaded, 0u);
  EXPECT_GT(queue.stats().far_parked, 0u);
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

TEST(FleetReportUnits, HistogramBuckets) {
  EXPECT_EQ(HistogramBucket(0), 0);
  EXPECT_EQ(HistogramBucket(1), 1);
  EXPECT_EQ(HistogramBucket(2), 2);
  EXPECT_EQ(HistogramBucket(3), 3);
  EXPECT_EQ(HistogramBucket(4), 3);
  EXPECT_EQ(HistogramBucket(5), 4);
  EXPECT_EQ(HistogramBucket(8), 4);
  EXPECT_EQ(HistogramBucket(9), 5);
  EXPECT_EQ(HistogramBucket(1000), 5);
  EXPECT_STREQ(HistogramBucketLabel(3), "3-4");
}

TEST(FleetReportUnits, SoakMixCoversClassesAndModes) {
  int class_seen[kNumStackClasses] = {};
  bool irq_seen = false;
  bool polling_seen = false;
  for (int i = 0; i < 8; ++i) {
    StackConfig config = MakeSoakStack(i, 100);
    ++class_seen[static_cast<int>(config.stack_class)];
    (config.interrupt_driven ? irq_seen : polling_seen) = true;
    EXPECT_EQ(config.seed, 100u + static_cast<uint64_t>(i));
  }
  for (int c = 0; c < kNumStackClasses; ++c) {
    EXPECT_EQ(class_seen[c], 2) << StackClassName(static_cast<StackClass>(c));
  }
  EXPECT_TRUE(irq_seen);
  EXPECT_TRUE(polling_seen);
}

TEST(FleetReportUnits, EmptyFleetRunsToAnEmptyReport) {
  Fleet fleet;
  FleetReport report = fleet.Run();
  EXPECT_EQ(report.num_stacks, 0);
  EXPECT_EQ(report.events_processed, 0u);
  EXPECT_TRUE(report.failures.empty());
}

// ---------------------------------------------------------------------------
// Determinism invariants
// ---------------------------------------------------------------------------

// The tentpole regression: one fixed stack list, three thread counts, one
// byte-identical aggregate signature. Stacks are isolated and the merge runs
// in stack-id order, so sharding must be invisible in every counter.
TEST(FleetDeterminism, SignatureInvariantAcrossThreadCounts) {
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    FleetOptions options;
    options.num_threads = threads;
    Fleet fleet(options);
    for (int i = 0; i < 8; ++i) {
      fleet.AddStack(MakeSoakStack(i, /*base_seed=*/42));
    }
    FleetReport report = fleet.Run();
    EXPECT_TRUE(report.failures.empty()) << report.Format();
    if (baseline.empty()) {
      baseline = report.CounterSignature();
    } else {
      EXPECT_EQ(report.CounterSignature(), baseline)
          << "thread count " << threads << " changed the aggregate\n"
          << report.Format();
    }
  }
  EXPECT_NE(baseline.find("stacks=8"), std::string::npos) << baseline;
}

// Engine-vs-legacy: the event-driven engine stepping a single stack must
// reproduce exactly what the same stack does run directly to completion.
TEST(FleetDeterminism, SingleStackMatchesStandaloneRun) {
  StackConfig config;
  config.stack_class = StackClass::kEeprom;
  config.seed = 7;
  StackReport standalone = RunStackStandalone(0, config);

  Fleet fleet;
  fleet.AddStack(config);
  FleetReport report = fleet.Run();
  ASSERT_EQ(report.num_stacks, 1);
  EXPECT_EQ(report.ops_completed, standalone.ops_completed);
  EXPECT_EQ(report.faults_injected, standalone.faults_injected);
  EXPECT_EQ(report.makespan_ns, standalone.finished_at_ns);
  EXPECT_EQ(driver::FormatRecoveryCounters(report.recovery),
            driver::FormatRecoveryCounters(standalone.recovery));
  EXPECT_EQ(report.worst.health, standalone.health);
}

// ---------------------------------------------------------------------------
// Fleet soak
// ---------------------------------------------------------------------------

// Tier-1 runs a 16-stack slice of the fleet soak; the nightly CI job sets
// EFEU_FLEET_SOAK for >=1024 stacks under a fresh daily base seed
// (EFEU_FLEET_SEED). Every failure block embeds the per-stack replay command.
TEST(FleetSoak, MixedFleetSoaksToQuiescence) {
  const bool full = std::getenv("EFEU_FLEET_SOAK") != nullptr;
  const int num_stacks = full ? 1024 : 16;
  uint64_t base_seed = 1;
  if (const char* env_seed = std::getenv("EFEU_FLEET_SEED")) {
    base_seed = std::strtoull(env_seed, nullptr, 10);
    if (base_seed == 0) {
      base_seed = 1;
    }
  }
  Fleet fleet;
  uint64_t expected_ops = 0;
  for (int i = 0; i < num_stacks; ++i) {
    StackConfig config = MakeSoakStack(i, base_seed);
    expected_ops += static_cast<uint64_t>(config.rounds) * 2 +
                    (config.stack_class == StackClass::kMfd ? 5 : 0);
    fleet.AddStack(config);
  }
  FleetReport report = fleet.Run();

  std::string all;
  for (const std::string& failure : report.failures) {
    all += failure + "\n---\n";
  }
  EXPECT_TRUE(report.failures.empty()) << all;
  EXPECT_EQ(report.wedged, 0) << report.Format();
  EXPECT_EQ(report.healthy + report.degraded, num_stacks);
  // One event per supervised operation, scheduled on one virtual timeline.
  EXPECT_EQ(report.ops_completed, expected_ops);
  EXPECT_EQ(report.events_processed, expected_ops);
  EXPECT_GT(report.makespan_ns, 0.0);
  EXPECT_NE(report.Format().find("fleet: "), std::string::npos);
}

}  // namespace
}  // namespace efeu::sim
