// Unit tests for the RTL substrate and the platform simulation: handshake
// wires between clocked FSMs, the MMIO register file's auto-reset semantics,
// the deadline-paced bus adapter, the open-drain bus, the 24AA512 model, the
// waveform analysis, and the Xilinx IP engine.

#include <gtest/gtest.h>

#include "src/ir/compile.h"
#include "src/rtl/regfile.h"
#include "src/rtl/rtl_module.h"
#include "src/rtl/system.h"
#include "src/sim/bus_adapter.h"
#include "src/sim/eeprom.h"
#include "src/sim/i2c_bus.h"
#include "src/sim/waveform.h"
#include "src/sim/xilinx_ip.h"

namespace efeu {
namespace {

// ---------------------------------------------------------------------------
// I2C bus
// ---------------------------------------------------------------------------

TEST(I2cBus, WiredAndSemantics) {
  sim::I2cBus bus;
  int a = bus.AddDriver();
  int b = bus.AddDriver();
  EXPECT_TRUE(bus.scl());
  EXPECT_TRUE(bus.sda());
  bus.SetDriver(a, true, false);
  EXPECT_TRUE(bus.scl());
  EXPECT_FALSE(bus.sda());
  bus.SetDriver(b, false, true);
  EXPECT_FALSE(bus.scl());
  EXPECT_FALSE(bus.sda());
  bus.SetDriver(a, true, true);
  EXPECT_FALSE(bus.scl());
  EXPECT_TRUE(bus.sda());
}

TEST(I2cBus, CaptureRecordsOnlyChanges) {
  sim::I2cBus bus;
  int d = bus.AddDriver();
  bus.EnableCapture(true);
  bus.Capture(0);
  bus.Capture(10);  // no change: not recorded
  bus.SetDriver(d, false, true);
  bus.Capture(20);
  ASSERT_EQ(bus.samples().size(), 2u);
  EXPECT_EQ(bus.samples()[1].t_ns, 20);
  EXPECT_FALSE(bus.samples()[1].scl);
}

// ---------------------------------------------------------------------------
// Waveform analysis
// ---------------------------------------------------------------------------

TEST(Waveform, EdgeDetectionAndFrequency) {
  std::vector<sim::I2cBus::Sample> samples;
  // A clean 400 kHz clock: edges every 1250 ns.
  bool level = true;
  double t = 0;
  samples.push_back({0, true, true});
  for (int i = 0; i < 20; ++i) {
    t += 1250;
    level = !level;
    samples.push_back({t, level, true});
  }
  auto rising = sim::SclRisingEdges(samples);
  EXPECT_EQ(rising.size(), 10u);
  sim::FrequencyStats stats = sim::AnalyzeSclFrequency(samples);
  EXPECT_NEAR(stats.mean_khz, 400.0, 0.5);
  EXPECT_NEAR(stats.stddev_khz, 0.0, 0.01);
}

TEST(Waveform, AsciiRendering) {
  std::vector<sim::I2cBus::Sample> samples = {{0, true, true}, {500, false, true}};
  std::string art = sim::RenderAsciiWaveform(samples, 1000, 10);
  EXPECT_NE(art.find("SCL #####_____"), std::string::npos);
  EXPECT_NE(art.find("SDA ##########"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RtlModule handshake between two generated FSMs
// ---------------------------------------------------------------------------

TEST(RtlModule, TwoModulesHandshakeOverWires) {
  DiagnosticEngine diag;
  auto comp = ir::Compile(
      "layer A; layer B; interface <A, B> { => { i32 v; }, <= { i32 r; } };",
      R"esm(
void A() {
  BToA r;
  r = ATalkB(21);
  r = ATalkB(r.r);
}
void B() {
  AToB q;
  end_init:
  q = BReadA();
  end_reply:
  q = BTalkA(q.v * 2);
  goto end_reply;
}
)esm",
      diag);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();

  rtl::RtlSystem system;
  rtl::RtlModule a(comp->FindModule("A"), "A");
  rtl::RtlModule b(comp->FindModule("B"), "B");
  const esi::ChannelInfo* to_b = comp->system().FindChannel("A", "B");
  const esi::ChannelInfo* to_a = comp->system().FindChannel("B", "A");
  rtl::HsWire* down = system.CreateWire(to_b->flat_size);
  rtl::HsWire* up = system.CreateWire(to_a->flat_size);
  a.BindPort(a.module().FindPort(to_b, true), down);
  a.BindPort(a.module().FindPort(to_a, false), up);
  b.BindPort(b.module().FindPort(to_b, false), down);
  b.BindPort(b.module().FindPort(to_a, true), up);
  system.AddComponent(&a);
  system.AddComponent(&b);

  for (int i = 0; i < 200 && !a.halted(); ++i) {
    system.Tick();
  }
  EXPECT_TRUE(a.halted());
  // The second talk sent 42 down; B is parked waiting for the next request.
  EXPECT_FALSE(b.halted());
}

// ---------------------------------------------------------------------------
// MMIO register file semantics
// ---------------------------------------------------------------------------

TEST(Regfile, AutoResetDeliversExactlyOnce) {
  rtl::RtlSystem system;
  rtl::MmioRegfile regfile(1, 1);
  rtl::HsWire* down = system.CreateWire(1);
  rtl::HsWire* up = system.CreateWire(1);
  regfile.BindDown(down);
  regfile.BindUp(up);
  system.AddComponent(&regfile);

  regfile.WriteDownWord(0, 77);
  regfile.SetDownValid();
  // Nobody ready yet: valid stays pending.
  system.Tick();
  system.Tick();
  EXPECT_TRUE(regfile.DownPending());
  EXPECT_TRUE(down->valid);
  // Peer asserts ready: one transfer, then the flag auto-resets.
  down->ready = true;
  system.Tick();
  system.Tick();
  down->ready = false;
  system.Tick();
  EXPECT_FALSE(regfile.DownPending());
  EXPECT_FALSE(down->valid);
  EXPECT_EQ(down->data[0], 77);
}

TEST(Regfile, UpLatchRaisesIrqOnceArmed) {
  rtl::RtlSystem system;
  rtl::MmioRegfile regfile(1, 1);
  rtl::HsWire* down = system.CreateWire(1);
  rtl::HsWire* up = system.CreateWire(1);
  regfile.BindDown(down);
  regfile.BindUp(up);
  system.AddComponent(&regfile);

  // Hardware offers a message; not armed yet: nothing happens.
  up->valid = true;
  up->data[0] = 9;
  system.Tick();
  system.Tick();
  EXPECT_FALSE(regfile.UpFull());
  // Arm, then the packet lands, ready auto-resets, irq raises.
  regfile.ArmUp();
  for (int i = 0; i < 4; ++i) {
    system.Tick();
  }
  EXPECT_TRUE(regfile.UpFull());
  EXPECT_TRUE(regfile.irq());
  EXPECT_FALSE(up->ready);  // auto-reset: no second packet can land
  EXPECT_EQ(regfile.ReadUpWord(0), 9);
  regfile.ConsumeUp();
  EXPECT_FALSE(regfile.irq());
}

TEST(Regfile, AblatedAutoResetRedelivers) {
  rtl::RtlSystem system;
  rtl::MmioRegfile regfile(1, 1);
  rtl::HsWire* down = system.CreateWire(1);
  rtl::HsWire* up = system.CreateWire(1);
  regfile.BindDown(down);
  regfile.BindUp(up);
  regfile.set_disable_auto_reset(true);
  system.AddComponent(&regfile);

  regfile.WriteDownWord(0, 5);
  regfile.SetDownValid();
  down->ready = true;
  for (int i = 0; i < 4; ++i) {
    system.Tick();
  }
  // Without the auto-reset the message stays published: double delivery.
  EXPECT_TRUE(down->valid);
  EXPECT_TRUE(regfile.DownPending());
}

// ---------------------------------------------------------------------------
// Bus adapter pacing
// ---------------------------------------------------------------------------

TEST(BusAdapter, HoldsLevelsForHalfCycle) {
  sim::I2cBus bus;
  rtl::RtlSystem system;
  sim::BusAdapter adapter(&bus, /*half_cycle_ticks=*/50);
  rtl::HsWire* down = system.CreateWire(2);
  rtl::HsWire* up = system.CreateWire(2);
  adapter.BindDown(down);
  adapter.BindUp(up);
  system.AddComponent(&adapter);

  // Offer (scl=0, sda=1).
  down->data = {0, 1};
  down->valid = true;
  up->ready = true;
  uint64_t start = system.cycles();
  // Run until the adapter answers with the sample.
  int guard = 0;
  while (!up->valid && guard++ < 500) {
    system.Tick();
  }
  ASSERT_TRUE(up->valid);
  // The sample reflects the driven levels.
  EXPECT_EQ(up->data[0], 0);
  EXPECT_EQ(up->data[1], 1);
  EXPECT_FALSE(bus.scl());
  // A full (late-requester) half cycle elapsed.
  EXPECT_GE(system.cycles() - start, 50u);
}

// ---------------------------------------------------------------------------
// EEPROM model driven by the Xilinx IP engine (bit-level cross-check)
// ---------------------------------------------------------------------------

TEST(Eeprom, XilinxEngineReadsAndWrites) {
  sim::I2cBus bus;
  rtl::RtlSystem system;
  sim::XilinxIpEngine engine(&bus, 25, 0);
  sim::EepromConfig config;
  config.write_cycle_ns = 1000;
  sim::Eeprom24aa512 eeprom(&bus, config);
  system.AddComponent(&engine);
  system.AddComponent(&eeprom);

  engine.StartWrite(0x50, 0x0123, {0xAA, 0xBB, 0xCC});
  while (!engine.done()) {
    system.Tick();
  }
  ASSERT_FALSE(engine.ack_failure());
  EXPECT_EQ(eeprom.MemoryAt(0x0123), 0xAA);
  EXPECT_EQ(eeprom.MemoryAt(0x0125), 0xCC);
  EXPECT_TRUE(eeprom.busy());
  while (eeprom.busy()) {
    system.Tick();
  }

  engine.StartRead(0x50, 0x0123, 3);
  while (!engine.done()) {
    system.Tick();
  }
  ASSERT_FALSE(engine.ack_failure());
  ASSERT_EQ(engine.read_data().size(), 3u);
  EXPECT_EQ(engine.read_data()[0], 0xAA);
  EXPECT_EQ(engine.read_data()[2], 0xCC);
}

TEST(Eeprom, NacksWrongAddress) {
  sim::I2cBus bus;
  rtl::RtlSystem system;
  sim::XilinxIpEngine engine(&bus, 25, 0);
  sim::EepromConfig config;
  sim::Eeprom24aa512 eeprom(&bus, config);
  system.AddComponent(&engine);
  system.AddComponent(&eeprom);

  engine.StartRead(0x31, 0, 1);  // nobody home at 0x31
  while (!engine.done()) {
    system.Tick();
  }
  EXPECT_TRUE(engine.ack_failure());
}

TEST(Eeprom, NacksWhileBusy) {
  sim::I2cBus bus;
  rtl::RtlSystem system;
  sim::XilinxIpEngine engine(&bus, 25, 0);
  sim::EepromConfig config;
  config.write_cycle_ns = 1e6;  // long write cycle
  sim::Eeprom24aa512 eeprom(&bus, config);
  system.AddComponent(&engine);
  system.AddComponent(&eeprom);

  engine.StartWrite(0x50, 0, {1});
  while (!engine.done()) {
    system.Tick();
  }
  ASSERT_TRUE(eeprom.busy());
  engine.StartRead(0x50, 0, 1);
  while (!engine.done()) {
    system.Tick();
  }
  EXPECT_TRUE(engine.ack_failure());  // device stops responding while busy
}

TEST(Eeprom, SequentialReadWrapsPointer) {
  sim::I2cBus bus;
  rtl::RtlSystem system;
  sim::XilinxIpEngine engine(&bus, 25, 0);
  sim::EepromConfig config;
  config.memory_bytes = 256;  // wrap quickly
  sim::Eeprom24aa512 eeprom(&bus, config);
  system.AddComponent(&engine);
  system.AddComponent(&eeprom);
  eeprom.Preload(254, 0x11);
  eeprom.Preload(255, 0x22);
  eeprom.Preload(0, 0x33);

  engine.StartRead(0x50, 254, 3);
  while (!engine.done()) {
    system.Tick();
  }
  ASSERT_EQ(engine.read_data().size(), 3u);
  EXPECT_EQ(engine.read_data()[0], 0x11);
  EXPECT_EQ(engine.read_data()[1], 0x22);
  EXPECT_EQ(engine.read_data()[2], 0x33);
}

TEST(Eeprom, PageWriteWrapsWithinPage) {
  sim::I2cBus bus;
  rtl::RtlSystem system;
  sim::XilinxIpEngine engine(&bus, 25, 0);
  sim::EepromConfig config;
  config.page_bytes = 4;
  config.write_cycle_ns = 100;
  sim::Eeprom24aa512 eeprom(&bus, config);
  system.AddComponent(&engine);
  system.AddComponent(&eeprom);

  // Write 6 bytes starting at offset 2 of a 4-byte page: wraps to offset 0.
  engine.StartWrite(0x50, 2, {1, 2, 3, 4, 5, 6});
  while (!engine.done()) {
    system.Tick();
  }
  // Pointer sequence: 2,3,0,1,2,3 — the later bytes overwrite the earlier
  // ones after wrapping within the page, as on the real device.
  EXPECT_EQ(eeprom.MemoryAt(0), 3);
  EXPECT_EQ(eeprom.MemoryAt(1), 4);
  EXPECT_EQ(eeprom.MemoryAt(2), 5);
  EXPECT_EQ(eeprom.MemoryAt(3), 6);
}

}  // namespace
}  // namespace efeu
