// Runtime assertion monitors (monitor synthesis): spec derivation from the
// ESI types, the ShadowChecker FSM against an independent oracle AND against
// the generated standalone C checker (compiled with the system compiler and
// loaded with dlopen), the BusWatcher RTL component, the zero-trip and
// byte-identical guarantees on clean runs, the bounded-detection acceptance
// sweep over every observable-corruption fault kind, the supervisor
// escalation path, and the emitted Verilog/MMIO monitor artifacts.

#include <dlfcn.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/codegen/c/shadow_checker_c.h"
#include "src/codegen/mmio/mmio_backend.h"
#include "src/codegen/verilog/verilog_backend.h"
#include "src/driver/baselines.h"
#include "src/driver/hybrid.h"
#include "src/driver/supervisor.h"
#include "src/i2c/stack.h"
#include "src/monitor/bus_watcher.h"
#include "src/monitor/monitor_spec.h"
#include "src/monitor/shadow_checker.h"
#include "src/rtl/system.h"
#include "src/sim/fault_plan.h"
#include "src/sim/i2c_bus.h"

namespace efeu {
namespace {

using driver::HybridConfig;
using driver::HybridDriver;
using driver::SplitPoint;
using monitor::MonitorSpec;
using monitor::ShadowChecker;
using monitor::TripKind;

std::unique_ptr<ir::Compilation> Controller() {
  DiagnosticEngine diag;
  auto comp = i2c::CompileControllerStack(diag);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

MonitorSpec WorldBoundarySpec(const ir::Compilation& comp) {
  const esi::ChannelInfo* down = comp.system().FindChannel("CWorld", "CEepDriver");
  const esi::ChannelInfo* up = comp.system().FindChannel("CEepDriver", "CWorld");
  EXPECT_NE(down, nullptr);
  EXPECT_NE(up, nullptr);
  return MonitorSpec::FromSystem(comp.system(), down, up);
}

// ---------------------------------------------------------------------------
// MonitorSpec derivation
// ---------------------------------------------------------------------------

TEST(MonitorSpec, DerivesBoundsFromEsiTypes) {
  auto comp = Controller();
  MonitorSpec spec = WorldBoundarySpec(*comp);
  // {CEAction action; u8 dev; i16 offset; u8 length; u8 data[16]} = 20 words.
  ASSERT_EQ(spec.down.flat_size, 20);
  ASSERT_EQ(spec.down.bounds.size(), 20u);
  // Enum range from the member count, not a hand-written table.
  EXPECT_EQ(spec.down.bounds[0].field, "action");
  EXPECT_EQ(spec.down.bounds[0].min, 0);
  EXPECT_EQ(spec.down.bounds[0].max, 2);  // CE_ACT_{READ,WRITE,PROBE}
  EXPECT_EQ(spec.down.bounds[1].field, "dev");
  EXPECT_EQ(spec.down.bounds[1].max, 255);
  EXPECT_EQ(spec.down.bounds[2].field, "offset");
  EXPECT_EQ(spec.down.bounds[2].min, -32768);
  EXPECT_EQ(spec.down.bounds[2].max, 32767);
  // The length field is clamped to the capacity of its payload array.
  EXPECT_EQ(spec.down.bounds[3].field, "length");
  EXPECT_EQ(spec.down.bounds[3].max, 16);
  EXPECT_EQ(spec.down.bounds[4].field, "data[0]");
  EXPECT_EQ(spec.down.bounds[19].field, "data[15]");
  // {CEResult res; u8 length; u8 data[16]} = 18 words.
  ASSERT_EQ(spec.up.flat_size, 18);
  EXPECT_EQ(spec.up.bounds[0].max, 2);  // CE_RES_{OK,NACK,FAIL}
  EXPECT_EQ(spec.up.bounds[1].max, 16);
}

TEST(MonitorSpec, CheckMessageReportsFirstViolatedWord) {
  auto comp = Controller();
  MonitorSpec spec = WorldBoundarySpec(*comp);
  std::vector<int32_t> msg(20, 0);
  int failed = -1;
  EXPECT_TRUE(spec.down.CheckMessage(msg, &failed));
  msg[3] = 17;  // length beyond the 16-byte payload
  msg[7] = 999;  // also out of range, but later
  EXPECT_FALSE(spec.down.CheckMessage(msg, &failed));
  EXPECT_EQ(failed, 3);
  EXPECT_EQ(spec.down.bounds[failed].field, "length");
}

TEST(MonitorSpec, NullChannelsYieldEmptySpec) {
  auto comp = Controller();
  MonitorSpec spec = MonitorSpec::FromSystem(comp->system(), nullptr, nullptr);
  EXPECT_EQ(spec.down.flat_size, 0);
  EXPECT_TRUE(spec.down.bounds.empty());
  EXPECT_TRUE(spec.down.CheckMessage(std::vector<int32_t>{}));
}

// ---------------------------------------------------------------------------
// ShadowChecker FSM
// ---------------------------------------------------------------------------

TEST(ShadowChecker, SequenceDeadlineAndSpuriousWithNullSpec) {
  ShadowChecker checker(nullptr);
  std::vector<int32_t> words = {1, 2, 3};
  // A reply with no outstanding request is a protocol violation.
  checker.OnUpMessage(words);
  EXPECT_TRUE(checker.tripped());
  EXPECT_EQ(checker.counters().by_kind[static_cast<int>(TripKind::kSequence)], 1u);
  // A proper request/reply pair trips nothing further.
  checker.OnDownMessage(words);
  checker.OnUpMessage(words);
  EXPECT_EQ(checker.counters().total, 1u);
  checker.OnWaitTimeout();
  checker.OnSpuriousWakeup();
  EXPECT_EQ(checker.counters().by_kind[static_cast<int>(TripKind::kDeadline)], 1u);
  EXPECT_EQ(checker.counters().by_kind[static_cast<int>(TripKind::kSpuriousIrq)], 1u);
  EXPECT_EQ(checker.counters().total, 3u);
}

TEST(ShadowChecker, ResetClearsSequenceStateButNotCounters) {
  ShadowChecker checker(nullptr);
  checker.OnDownMessage(std::vector<int32_t>{0});
  checker.OnWaitTimeout();
  ASSERT_EQ(checker.counters().total, 1u);
  checker.Reset();
  // Counters survive the reset (detection evidence must not be erased by the
  // recovery the detection itself triggered)...
  EXPECT_EQ(checker.counters().total, 1u);
  // ...but the outstanding request is forgotten: the next reply has no
  // request behind it and trips the sequence rule.
  checker.OnUpMessage(std::vector<int32_t>{0});
  EXPECT_EQ(checker.counters().by_kind[static_cast<int>(TripKind::kSequence)], 1u);
}

TEST(ShadowChecker, FieldRangeTripAgainstDerivedSpec) {
  auto comp = Controller();
  MonitorSpec spec = WorldBoundarySpec(*comp);
  ShadowChecker checker(&spec);
  std::vector<int32_t> request(20, 0);
  request[0] = 7;  // no such CEAction ordinal
  checker.OnDownMessage(request);
  EXPECT_EQ(checker.counters().by_kind[static_cast<int>(TripKind::kFieldRange)], 1u);
  // The trip message names the offending field.
  EXPECT_NE(checker.counters().last_trip.find("action"), std::string::npos)
      << checker.counters().last_trip;
}

// ---------------------------------------------------------------------------
// ShadowChecker vs an independent oracle on randomized event sequences
// ---------------------------------------------------------------------------

// A deliberately naive re-implementation of the monitor contract, written
// directly from the spec document rather than from shadow_checker.cc.
struct OracleState {
  int outstanding = 0;
  uint64_t by_kind[monitor::kNumTripKinds] = {};

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t count : by_kind) {
      sum += count;
    }
    return sum;
  }

  void Down(const MonitorSpec& spec, const std::vector<int32_t>& words) {
    if (!spec.down.bounds.empty() && !spec.down.CheckMessage(words)) {
      ++by_kind[static_cast<int>(TripKind::kFieldRange)];
    }
    ++outstanding;
  }
  void Up(const MonitorSpec& spec, const std::vector<int32_t>& words) {
    if (outstanding == 0) {
      ++by_kind[static_cast<int>(TripKind::kSequence)];
    } else {
      --outstanding;
    }
    if (!spec.up.bounds.empty() && !spec.up.CheckMessage(words)) {
      ++by_kind[static_cast<int>(TripKind::kFieldRange)];
    }
  }
};

// xorshift so the sequence is deterministic across platforms.
uint32_t NextRand(uint32_t* state) {
  uint32_t x = *state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return *state = x;
}

TEST(ShadowChecker, MatchesOracleOnRandomEventSequences) {
  auto comp = Controller();
  MonitorSpec spec = WorldBoundarySpec(*comp);
  for (uint32_t seed : {1u, 77u, 2026u}) {
    uint32_t rng = seed;
    ShadowChecker checker(&spec);
    OracleState oracle;
    for (int event = 0; event < 2000; ++event) {
      const uint32_t pick = NextRand(&rng) % 16;
      if (pick < 7) {  // down message, occasionally corrupt
        std::vector<int32_t> words(spec.down.flat_size, 0);
        if (NextRand(&rng) % 4 == 0) {
          words[NextRand(&rng) % words.size()] =
              static_cast<int32_t>(NextRand(&rng));  // arbitrary garbage
        }
        checker.OnDownMessage(words);
        oracle.Down(spec, words);
      } else if (pick < 14) {  // up message (sometimes with no request)
        std::vector<int32_t> words(spec.up.flat_size, 0);
        if (NextRand(&rng) % 4 == 0) {
          words[NextRand(&rng) % words.size()] = static_cast<int32_t>(NextRand(&rng));
        }
        checker.OnUpMessage(words);
        oracle.Up(spec, words);
      } else if (pick == 14) {
        checker.OnWaitTimeout();
        ++oracle.by_kind[static_cast<int>(TripKind::kDeadline)];
      } else {
        checker.OnSpuriousWakeup();
        ++oracle.by_kind[static_cast<int>(TripKind::kSpuriousIrq)];
      }
    }
    EXPECT_EQ(checker.counters().total, oracle.total()) << "seed " << seed;
    for (int kind = 0; kind < monitor::kNumTripKinds; ++kind) {
      EXPECT_EQ(checker.counters().by_kind[kind], oracle.by_kind[kind])
          << "seed " << seed << " kind " << kind;
    }
    EXPECT_GT(checker.counters().total, 0u) << "seed " << seed;  // non-vacuous
  }
}

// ---------------------------------------------------------------------------
// Generated C shadow checker == in-process ShadowChecker (compile + dlopen)
// ---------------------------------------------------------------------------

// Mirror of the generated `<prefix>_shadow_t` struct (same field order and
// C ABI on this platform).
struct CShadowState {
  int32_t outstanding;
  uint64_t events;
  uint64_t trips_total;
  uint64_t trips_by_kind[6];
  uint64_t first_trip_at;
  int32_t last_failed_word;
};

TEST(GeneratedShadowChecker, MatchesInProcessCheckerEventForEvent) {
  auto comp = Controller();
  MonitorSpec spec = WorldBoundarySpec(*comp);
  std::string code = codegen::GenerateShadowCheckerC(spec, "CWorld_CEepDriver");

  char tmpl[] = "/tmp/efeu_shadow_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  {
    std::ofstream out(dir + "/shadow.c");
    out << code;
  }
  std::string command = "cc -std=c99 -Wall -Werror -O1 -shared -fPIC -o " + dir +
                        "/libshadow.so " + dir + "/shadow.c 2>" + dir + "/cc.log";
  int rc = std::system(command.c_str());
  if (rc != 0) {
    std::ifstream log(dir + "/cc.log");
    std::string line;
    std::string all;
    while (std::getline(log, line)) {
      all += line + "\n";
    }
    std::string cleanup = "rm -rf " + dir;
    (void)std::system(cleanup.c_str());
    FAIL() << "generated shadow checker failed to compile:\n" << all;
  }

  void* handle = dlopen((dir + "/libshadow.so").c_str(), RTLD_NOW);
  ASSERT_NE(handle, nullptr) << dlerror();
  using InitFn = void (*)(CShadowState*);
  using MsgFn = uint64_t (*)(CShadowState*, const int32_t*);
  using EventFn = uint64_t (*)(CShadowState*);
  auto* init = reinterpret_cast<InitFn>(dlsym(handle, "cworld_ceepdriver_shadow_init"));
  auto* on_down = reinterpret_cast<MsgFn>(dlsym(handle, "cworld_ceepdriver_shadow_on_down"));
  auto* on_up = reinterpret_cast<MsgFn>(dlsym(handle, "cworld_ceepdriver_shadow_on_up"));
  auto* on_spurious =
      reinterpret_cast<EventFn>(dlsym(handle, "cworld_ceepdriver_shadow_on_spurious_wakeup"));
  auto* on_timeout =
      reinterpret_cast<EventFn>(dlsym(handle, "cworld_ceepdriver_shadow_on_wait_timeout"));
  ASSERT_NE(init, nullptr);
  ASSERT_NE(on_down, nullptr);
  ASSERT_NE(on_up, nullptr);
  ASSERT_NE(on_spurious, nullptr);
  ASSERT_NE(on_timeout, nullptr);

  CShadowState c_state;
  init(&c_state);
  ShadowChecker checker(&spec);
  uint32_t rng = 0xEFE0u;
  for (int event = 0; event < 1500; ++event) {
    const uint32_t pick = NextRand(&rng) % 16;
    if (pick < 7) {
      std::vector<int32_t> words(spec.down.flat_size, 0);
      if (NextRand(&rng) % 4 == 0) {
        words[NextRand(&rng) % words.size()] = static_cast<int32_t>(NextRand(&rng));
      }
      checker.OnDownMessage(words);
      on_down(&c_state, words.data());
    } else if (pick < 14) {
      std::vector<int32_t> words(spec.up.flat_size, 0);
      if (NextRand(&rng) % 4 == 0) {
        words[NextRand(&rng) % words.size()] = static_cast<int32_t>(NextRand(&rng));
      }
      checker.OnUpMessage(words);
      on_up(&c_state, words.data());
    } else if (pick == 14) {
      checker.OnWaitTimeout();
      on_timeout(&c_state);
    } else {
      checker.OnSpuriousWakeup();
      on_spurious(&c_state);
    }
  }
  EXPECT_EQ(c_state.trips_total, checker.counters().total);
  EXPECT_EQ(c_state.events, checker.events());
  EXPECT_EQ(c_state.first_trip_at, checker.counters().first_trip_at);
  for (int kind = 0; kind < monitor::kNumTripKinds; ++kind) {
    EXPECT_EQ(c_state.trips_by_kind[kind], checker.counters().by_kind[kind]) << kind;
  }
  EXPECT_GT(c_state.trips_total, 0u);  // non-vacuous

  dlclose(handle);
  std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
}

// ---------------------------------------------------------------------------
// BusWatcher RTL component
// ---------------------------------------------------------------------------

TEST(BusWatcher, StuckLineTripsOncePerEpisodeWithinBound) {
  sim::I2cBus bus;
  int driver = bus.AddDriver();
  monitor::BusWatcherOptions options;
  options.stuck_low_limit = 100;
  options.handshake_limit = 0;  // not under test here
  monitor::BusWatcher watcher(&bus, nullptr, options);
  rtl::RtlSystem rtl;
  rtl.AddComponent(&watcher);

  bus.SetDriver(driver, /*scl=*/true, /*sda=*/false);  // SDA held low
  for (int i = 0; i < 100; ++i) {
    rtl.Tick();
  }
  EXPECT_FALSE(watcher.tripped());  // within the legal window
  for (int i = 0; i < 50; ++i) {
    rtl.Tick();
  }
  EXPECT_TRUE(watcher.tripped());
  EXPECT_EQ(watcher.counters().by_kind[static_cast<int>(TripKind::kStuckBus)], 1u);
  // Bounded detection: the trip latched right after the limit crossed.
  EXPECT_LE(watcher.counters().first_trip_at, 102u + options.stuck_low_limit);
  // A continuous violation is one episode, not one trip per tick.
  for (int i = 0; i < 500; ++i) {
    rtl.Tick();
  }
  EXPECT_EQ(watcher.counters().total, 1u);
  // Releasing and re-sticking the line opens a new episode.
  bus.SetDriver(driver, true, true);
  rtl.Tick();
  bus.SetDriver(driver, true, false);
  for (int i = 0; i < 200; ++i) {
    rtl.Tick();
  }
  EXPECT_EQ(watcher.counters().total, 2u);
  // Reset clears the sticky flag but keeps the cumulative counters.
  watcher.Reset();
  EXPECT_FALSE(watcher.tripped());
  EXPECT_EQ(watcher.counters().total, 2u);
}

// ---------------------------------------------------------------------------
// Clean traces: zero trips and byte-identical behaviour
// ---------------------------------------------------------------------------

HybridConfig MonitoredConfig(SplitPoint split, bool interrupt_driven) {
  HybridConfig config;
  config.split = split;
  config.interrupt_driven = interrupt_driven;
  config.eeprom.write_cycle_ns = 0;  // keep clean runs clean and fast
  config.enable_monitors = true;
  config.recovery.enabled = true;
  return config;
}

TEST(MonitorEquivalence, CleanHybridTracesTripNothingAcrossSplitsAndModes) {
  for (SplitPoint split : {SplitPoint::kElectrical, SplitPoint::kByte, SplitPoint::kEepDriver}) {
    for (bool interrupt_driven : {false, true}) {
      HybridDriver driver(MonitoredConfig(split, interrupt_driven));
      ASSERT_TRUE(driver.monitors_enabled());
      std::vector<uint8_t> payload = {0xA1, 0xB2, 0xC3};
      ASSERT_TRUE(driver.Write(0x40, payload));
      std::vector<uint8_t> data;
      ASSERT_TRUE(driver.Read(0x40, 3, &data));
      EXPECT_EQ(data, payload);
      const monitor::TripCounters counters = driver.MonitorCounters();
      EXPECT_EQ(counters.total, 0u)
          << driver::SplitPointName(split) << (interrupt_driven ? "/irq" : "/poll") << ": "
          << counters.last_trip;
      // The shadow checker really did see the boundary traffic.
      EXPECT_GT(driver.shadow_checker()->events(), 0u);
      EXPECT_GT(driver.bus_watcher()->ticks(), 0u);
    }
  }
}

TEST(MonitorEquivalence, CleanBaselineTracesTripNothing) {
  driver::TimingModel timing;
  sim::EepromConfig eeprom;
  eeprom.write_cycle_ns = 0;
  driver::BitBangDriver bitbang(timing, eeprom);
  bitbang.EnableMonitors();
  ASSERT_TRUE(bitbang.monitors_enabled());
  std::vector<uint8_t> payload = {0x11, 0x22};
  ASSERT_TRUE(bitbang.Write(0x10, payload));
  std::vector<uint8_t> data;
  ASSERT_TRUE(bitbang.Read(0x10, 2, &data));
  EXPECT_EQ(data, payload);
  EXPECT_EQ(bitbang.MonitorCounters().total, 0u) << bitbang.MonitorCounters().last_trip;

  driver::XilinxIpDriver xilinx(timing, eeprom);
  xilinx.EnableMonitors();
  ASSERT_TRUE(xilinx.monitors_enabled());
  ASSERT_TRUE(xilinx.Write(0x10, payload));
  ASSERT_TRUE(xilinx.Read(0x10, 2, &data));
  EXPECT_EQ(data, payload);
  EXPECT_EQ(xilinx.MonitorCounters().total, 0u) << xilinx.MonitorCounters().last_trip;
}

// Monitors must be purely observational: with monitors on, every bus sample
// of a clean run is identical to the unmonitored driver's.
// Monitors bill a small modeled-CPU cost per boundary event, so sample
// timestamps may shift, but the bus protocol — the sequence of line
// transitions — must be identical to the unmonitored run, with zero trips.
TEST(MonitorEquivalence, MonitoredCleanRunPreservesBusProtocol) {
  HybridConfig plain;
  plain.split = SplitPoint::kByte;
  plain.capture_waveform = true;
  plain.eeprom.write_cycle_ns = 0;
  HybridConfig monitored = plain;
  monitored.enable_monitors = true;

  HybridDriver a(plain);
  HybridDriver b(monitored);
  std::vector<uint8_t> payload = {0x0F, 0x1E, 0x2D, 0x3C};
  for (HybridDriver* driver : {&a, &b}) {
    ASSERT_TRUE(driver->Write(0x0200, payload));
    std::vector<uint8_t> data;
    ASSERT_TRUE(driver->Read(0x0200, 4, &data));
    EXPECT_EQ(data, payload);
  }
  const auto& sa = a.bus().samples();
  const auto& sb = b.bus().samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].scl, sb[i].scl) << "sample " << i;
    ASSERT_EQ(sa[i].sda, sb[i].sda) << "sample " << i;
  }
  EXPECT_EQ(b.MonitorCounters().total, 0u);
}

// ---------------------------------------------------------------------------
// Bounded detection: every fault kind that corrupts externally observable
// state is caught by a monitor within its bounded window
// ---------------------------------------------------------------------------

struct DetectionCase {
  sim::FaultKind fault;
  bool interrupt_driven;
  TripKind expect;
};

TEST(MonitorDetection, EveryObservableFaultKindIsCaughtWithinItsWindow) {
  const DetectionCase cases[] = {
      {sim::FaultKind::kSdaStuckLow, false, TripKind::kStuckBus},
      {sim::FaultKind::kSclStuckLow, false, TripKind::kStuckBus},
      {sim::FaultKind::kLostDoorbell, false, TripKind::kDeadline},
      {sim::FaultKind::kStalledUpMessage, false, TripKind::kDeadline},
      {sim::FaultKind::kCorruptedMmioRead, false, TripKind::kDeadline},
      {sim::FaultKind::kDroppedInterrupt, true, TripKind::kDeadline},
      {sim::FaultKind::kSpuriousInterrupt, true, TripKind::kSpuriousIrq},
  };
  for (const DetectionCase& test_case : cases) {
    HybridConfig config = MonitoredConfig(SplitPoint::kByte, test_case.interrupt_driven);
    config.recovery.wait_timeout_ns = 2e6;
    config.recovery.op_deadline_ns = 1e7;
    // Persistent fault so even the retry ladder cannot out-wait it; the
    // operation must FAIL (or succeed after recovery) in bounded time and
    // the monitors must have flagged the corruption.
    config.fault_plan =
        sim::FaultPlan::Scripted({{test_case.fault, 0, 1 << 24}});
    HybridDriver driver(config);
    (void)driver.Write(0x30, {0x42});  // outcome depends on the kind; must return
    const monitor::TripCounters counters = driver.MonitorCounters();
    EXPECT_GT(counters.total, 0u) << sim::FaultKindName(test_case.fault);
    EXPECT_GT(counters.by_kind[static_cast<int>(test_case.expect)], 0u)
        << sim::FaultKindName(test_case.fault) << " expected "
        << monitor::TripKindName(test_case.expect) << ", got: " << counters.last_trip;
    // Bounded window: detection happened within the operation's deadline
    // budget (wire trips are in RTL ticks, boundary trips in events — both
    // bounded by the op returning at all, asserted by reaching this line).
    if (test_case.expect == TripKind::kStuckBus) {
      const uint64_t deadline_ticks = static_cast<uint64_t>(
          config.recovery.op_deadline_ns / config.timing.clock_ns) * 4;
      EXPECT_LE(counters.first_trip_at, deadline_ticks)
          << sim::FaultKindName(test_case.fault);
    }
  }
}

// The protocol-legal outcomes (NACK, busy, ACK glitch) are handled by the
// retry policy and must NOT trip the spec monitors.
TEST(MonitorDetection, LegalProtocolFaultsDoNotTrip) {
  HybridConfig config = MonitoredConfig(SplitPoint::kByte, /*interrupt_driven=*/false);
  config.eeprom.write_cycle_ns = 50000;
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kNackOnAddress, 0, 1},
      {sim::FaultKind::kAckGlitch, 0, 1},
      {sim::FaultKind::kNackOnData, 0, 1},
  });
  HybridDriver driver(config);
  ASSERT_TRUE(driver.Write(0x50, {0x01, 0x02}));
  std::vector<uint8_t> data;
  ASSERT_TRUE(driver.Read(0x50, 2, &data));
  EXPECT_GE(driver.fault_plan().faults_injected(), 3u);
  EXPECT_EQ(driver.MonitorCounters().total, 0u) << driver.MonitorCounters().last_trip;
}

TEST(MonitorDetection, ConsumeMonitorTripsReturnsDeltas) {
  // At the kEepDriver split one operation is exactly one boundary
  // request/reply, so the scripted interrupt faults land one per operation.
  HybridConfig config = MonitoredConfig(SplitPoint::kEepDriver, /*interrupt_driven=*/true);
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kSpuriousInterrupt, 0, 1},
      {sim::FaultKind::kSpuriousInterrupt, 1, 1},
  });
  HybridDriver driver(config);
  ASSERT_TRUE(driver.Write(0x60, {0x01}));
  const uint64_t first = driver.ConsumeMonitorTrips();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(driver.ConsumeMonitorTrips(), 0u);  // nothing new since
  std::vector<uint8_t> data;
  ASSERT_TRUE(driver.Read(0x60, 1, &data));
  EXPECT_GT(driver.ConsumeMonitorTrips(), 0u);  // the second scripted trip
  // The cumulative view is unaffected by consumption.
  EXPECT_GE(driver.MonitorCounters().total, first + 1);
}

// ---------------------------------------------------------------------------
// Supervisor integration: trips feed the degradation ladder
// ---------------------------------------------------------------------------

TEST(MonitorSupervision, TripsFlowIntoSupervisorLadder) {
  HybridConfig config = MonitoredConfig(SplitPoint::kByte, /*interrupt_driven=*/true);
  config.fault_plan = sim::FaultPlan::Scripted({
      {sim::FaultKind::kSpuriousInterrupt, 0, 1},
  });
  HybridDriver driver(config);
  driver::Supervisor<HybridDriver> supervisor(&driver);
  std::vector<uint8_t> data;
  ASSERT_TRUE(supervisor.Read(0x00, 2, &data));
  // The spurious-IRQ trip reached the supervisor through PollMonitors and
  // demoted the pair to recovering: the operation's data came back fine, but
  // a monitor flagged the coupling, so the pair is not trusted yet.
  EXPECT_GT(supervisor.monitor_trips(), 0u);
  EXPECT_EQ(supervisor.health(), driver::HealthState::kRecovering);
  // The next operation completes without any trip and restores full health.
  ASSERT_TRUE(supervisor.Read(0x00, 2, &data));
  EXPECT_EQ(supervisor.health(), driver::HealthState::kHealthy);
}

// ---------------------------------------------------------------------------
// Emitted artifacts: Verilog bus watcher, MMIO monitor register, C checker
// ---------------------------------------------------------------------------

TEST(MonitorCodegen, BusWatcherModuleShipsWithGeneratedRtl) {
  auto comp = Controller();
  codegen::VerilogOutput out = codegen::GenerateVerilog(*comp);
  ASSERT_TRUE(out.modules.count("efeu_bus_watcher"));
  const std::string& text = out.modules.at("efeu_bus_watcher");
  EXPECT_NE(text.find("module efeu_bus_watcher"), std::string::npos);
  EXPECT_NE(text.find("output reg assert_trip"), std::string::npos);
  EXPECT_NE(text.find("output reg [2:0] trip_kind"), std::string::npos);
  // The frozen ordinals of monitor::TripKind.
  EXPECT_NE(text.find("trip_kind = 3"), std::string::npos);  // stuck bus
  EXPECT_NE(text.find("trip_kind = 5"), std::string::npos);  // handshake stall
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(MonitorCodegen, MmioExposesMonitorRegisterStatusBitAndIrqCause) {
  auto comp = Controller();
  const esi::ChannelInfo* down = comp->system().FindChannel("CTransaction", "CByte");
  const esi::ChannelInfo* up = comp->system().FindChannel("CByte", "CTransaction");
  ASSERT_NE(down, nullptr);
  ASSERT_NE(up, nullptr);
  codegen::MmioOutput out = codegen::GenerateMmio("ByteBoundary", down, up);
  // The monitor register rides after the supervision block; nothing moved.
  EXPECT_EQ(out.map.monitor_offset, out.map.wdog_offset + 4);
  EXPECT_EQ(out.map.total_bytes, out.map.monitor_offset + 4);
  // C stubs: STATUS bit 3 poll + write-to-clear.
  EXPECT_NE(out.c_driver.find("ByteBoundary_MONITOR"), std::string::npos);
  EXPECT_NE(out.c_driver.find("ByteBoundary_monitor_tripped"), std::string::npos);
  EXPECT_NE(out.c_driver.find(">> 3) & 1"), std::string::npos);
  EXPECT_NE(out.c_driver.find("ByteBoundary_monitor_clear"), std::string::npos);
  // VHDL: the mon_trip input, the sticky latch, STATUS bit 3, the IRQ cause.
  EXPECT_NE(out.vhdl.find("mon_trip      : in  std_logic;"), std::string::npos);
  EXPECT_NE(out.vhdl.find("signal r_mon_trip   : std_logic;"), std::string::npos);
  EXPECT_NE(out.vhdl.find("3 => r_mon_trip"), std::string::npos);
  EXPECT_NE(out.vhdl.find("irq <= r_up_full or r_mon_trip;"), std::string::npos);
}

TEST(MonitorCodegen, ShadowCheckerCEmissionIsStructurallyComplete) {
  auto comp = Controller();
  MonitorSpec spec = WorldBoundarySpec(*comp);
  std::string code = codegen::GenerateShadowCheckerC(spec, "CWorld_CEepDriver");
  EXPECT_NE(code.find("#define CWORLD_CEEPDRIVER_DOWN_WORDS 20"), std::string::npos);
  EXPECT_NE(code.find("#define CWORLD_CEEPDRIVER_UP_WORDS 18"), std::string::npos);
  EXPECT_NE(code.find("cworld_ceepdriver_shadow_on_down"), std::string::npos);
  EXPECT_NE(code.find("cworld_ceepdriver_shadow_on_up"), std::string::npos);
  EXPECT_NE(code.find("CWORLD_CEEPDRIVER_TRIP_SEQUENCE = 1"), std::string::npos);
  // Derived bounds appear verbatim in the tables.
  EXPECT_NE(code.find("/* action */"), std::string::npos);
  EXPECT_NE(code.find("16,  /* length */"), std::string::npos);
  // Null-spec emission still compiles to the sequence-only checker.
  MonitorSpec empty;
  std::string bare = codegen::GenerateShadowCheckerC(empty, "Bare");
  EXPECT_NE(bare.find("bare_shadow_on_up"), std::string::npos);
  EXPECT_EQ(bare.find("bare_check_words"), std::string::npos);
}

}  // namespace
}  // namespace efeu
