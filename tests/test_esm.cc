// Unit tests for the ESM frontend: the preprocessor, parser restrictions
// (the paper's C-subset rules), and semantic analysis including talk/read
// resolution.

#include <gtest/gtest.h>

#include "src/esm/preprocessor.h"
#include "src/ir/compile.h"

namespace efeu {
namespace {

constexpr const char* kEsi = R"esi(
layer Up;
layer Down;
enum Cmd { CMD_GO, CMD_HALT, };
interface <Up, Down> {
  => { Cmd cmd; u8 value; u8 data[4]; },
  <= { u8 result; }
};
)esi";

std::unique_ptr<ir::Compilation> CompileEsm(const std::string& esm, std::string* errors,
                                            bool verifier = false) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = verifier;
  auto comp = ir::Compile(kEsi, esm, diag, options);
  if (comp == nullptr && errors != nullptr) {
    *errors = diag.RenderAll();
  }
  return comp;
}

// ---------------------------------------------------------------------------
// Preprocessor
// ---------------------------------------------------------------------------

TEST(Preprocessor, ObjectMacroSubstitution) {
  esm::Preprocessor pp;
  pp.Define("N", "42");
  std::string error;
  auto out = pp.Process("int x; x = N; NN = N;", &error);
  ASSERT_TRUE(out.has_value()) << error;
  EXPECT_NE(out->find("x = 42;"), std::string::npos);
  // Whole-word matching only.
  EXPECT_NE(out->find("NN = 42;"), std::string::npos);
}

TEST(Preprocessor, IfdefElseEndif) {
  esm::Preprocessor pp;
  pp.Define("FLAG");
  std::string error;
  auto out = pp.Process("#ifdef FLAG\nyes\n#else\nno\n#endif\n", &error);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->find("yes"), std::string::npos);
  EXPECT_EQ(out->find("no"), std::string::npos);
}

TEST(Preprocessor, IfndefAndNestedConditionals) {
  esm::Preprocessor pp;
  std::string error;
  auto out = pp.Process(
      "#ifndef A\nouter\n#ifdef B\ninner\n#endif\n#endif\n", &error);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->find("outer"), std::string::npos);
  EXPECT_EQ(out->find("inner"), std::string::npos);
}

TEST(Preprocessor, DefineInsideDeadBranchIgnored) {
  esm::Preprocessor pp;
  std::string error;
  auto out = pp.Process("#ifdef NOPE\n#define X 1\n#endif\nX\n", &error);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->find("X"), std::string::npos);  // not substituted
}

TEST(Preprocessor, IncludeRegistry) {
  esm::Preprocessor pp;
  pp.AddInclude("snippet", "included_text\n");
  std::string error;
  auto out = pp.Process("#include \"snippet\"\n", &error);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->find("included_text"), std::string::npos);
}

TEST(Preprocessor, UnknownIncludeFails) {
  esm::Preprocessor pp;
  std::string error;
  EXPECT_FALSE(pp.Process("#include \"nope\"\n", &error).has_value());
  EXPECT_NE(error.find("nope"), std::string::npos);
}

TEST(Preprocessor, UnterminatedIfdefFails) {
  esm::Preprocessor pp;
  std::string error;
  EXPECT_FALSE(pp.Process("#ifdef X\n", &error).has_value());
}

TEST(Preprocessor, UndefStopsSubstitution) {
  esm::Preprocessor pp;
  std::string error;
  auto out = pp.Process("#define A 1\n#undef A\nA\n", &error);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->find("A"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser & sema: accepted programs
// ---------------------------------------------------------------------------

TEST(EsmSema, MinimalLayerPairCompiles) {
  std::string errors;
  auto comp = CompileEsm(R"esm(
void Up() {
  DownToUp r;
  byte buf[4];
  byte i;
  i = 0;
  while (i < 4) {
    buf[i] = i + 0x10;
    i = i + 1;
  }
  r = UpTalkDown(CMD_GO, 7, buf);
  assert(r.result == 7);
}

void Down() {
  UpToDown q;
  end_init:
  q = DownReadUp();
  loop:
  DownPostUp(q.value);
  end_next:
  q = DownReadUp();
  goto loop;
}
)esm",
                          &errors, /*verifier=*/true);
  ASSERT_NE(comp, nullptr) << errors;
  EXPECT_EQ(comp->modules().size(), 2u);
  const ir::Module* up = comp->FindModule("Up");
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->ports.size(), 2u);
}

TEST(EsmSema, LocalEnumsGetOrdinals) {
  std::string errors;
  auto comp = CompileEsm(R"esm(
enum Local { L_A, L_B, L_C };
void Up() {
  int x;
  x = L_C;
  assert(x == 2);
}
)esm",
                          &errors);
  ASSERT_NE(comp, nullptr) << errors;
}

TEST(EsmSema, GotoAndLabels) {
  std::string errors;
  auto comp = CompileEsm(R"esm(
void Up() {
  int x;
  x = 0;
  again:
  x = x + 1;
  if (x < 3) {
    goto again;
  }
}
)esm",
                          &errors);
  ASSERT_NE(comp, nullptr) << errors;
}

// ---------------------------------------------------------------------------
// Parser & sema: the paper's restrictions are enforced
// ---------------------------------------------------------------------------

TEST(EsmSema, RejectsInitializationAtDeclaration) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { int x = 3; }", &errors), nullptr);
  EXPECT_NE(errors.find("initialization"), std::string::npos);
}

TEST(EsmSema, RejectsEnumValueSpecification) {
  std::string errors;
  EXPECT_EQ(CompileEsm("enum E { A = 1 };\nvoid Up() { ; }", &errors), nullptr);
}

TEST(EsmSema, RejectsForLoops) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { for (;;) { } }", &errors), nullptr);
}

TEST(EsmSema, RejectsUnknownLayerDefinition) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Nobody() { ; }", &errors), nullptr);
  EXPECT_NE(errors.find("not declared"), std::string::npos);
}

TEST(EsmSema, RejectsReservedVariableNames) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { byte timeout; }", &errors), nullptr);
  EXPECT_NE(errors.find("reserved"), std::string::npos);
}

TEST(EsmSema, RejectsUndeclaredIdentifier) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { int x; x = y; }", &errors), nullptr);
  EXPECT_NE(errors.find("undeclared"), std::string::npos);
}

TEST(EsmSema, RejectsGotoUndefinedLabel) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { goto nowhere; }", &errors), nullptr);
}

TEST(EsmSema, RejectsDuplicateLabel) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { l: ; l: ; }", &errors), nullptr);
}

TEST(EsmSema, RejectsNondetInDriverMode) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { int x; x = nondet(2); }", &errors, /*verifier=*/false),
            nullptr);
  EXPECT_NE(errors.find("verifier"), std::string::npos);
}

TEST(EsmSema, AcceptsNondetInVerifierMode) {
  std::string errors;
  EXPECT_NE(CompileEsm("void Up() { int x; x = nondet(2); }", &errors, /*verifier=*/true),
            nullptr)
      << errors;
}

TEST(EsmSema, RejectsTalkWithWrongArity) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  DownToUp r;
  r = UpTalkDown(CMD_GO);
}
)esm",
                        &errors),
            nullptr);
}

TEST(EsmSema, RejectsTalkWithWrongArraySize) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  DownToUp r;
  byte small[2];
  r = UpTalkDown(CMD_GO, 1, small);
}
)esm",
                        &errors),
            nullptr);
}

TEST(EsmSema, RejectsNestedTalk) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  byte buf[4];
  int x;
  x = 1 + UpTalkDown(CMD_GO, 1, buf);
}
)esm",
                        &errors),
            nullptr);
}

TEST(EsmSema, RejectsActAsInDriverMode) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  UpToDown q;
  q = DownReadUp();
}
)esm",
                        &errors, /*verifier=*/false),
            nullptr);
}

TEST(EsmSema, RejectsStructScalarMixups) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  DownToUp r;
  int x;
  x = r;
}
)esm",
                        &errors),
            nullptr);
}

TEST(EsmSema, RejectsUnknownStructField) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  DownToUp r;
  int x;
  x = r.nothing;
}
)esm",
                        &errors),
            nullptr);
}

TEST(EsmSema, RejectsAssignToEnumConstant) {
  std::string errors;
  EXPECT_EQ(CompileEsm("void Up() { CMD_GO = 1; }", &errors), nullptr);
}

TEST(EsmSema, RejectsPostWithResult) {
  std::string errors;
  EXPECT_EQ(CompileEsm(R"esm(
void Up() {
  int x;
  x = UpPostDown(CMD_GO, 1, x);
}
)esm",
                        &errors, /*verifier=*/true),
            nullptr);
}

}  // namespace
}  // namespace efeu
