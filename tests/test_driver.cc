// End-to-end hybrid driver tests: every software/hardware split must move
// real bytes over the simulated bus to the behavioural EEPROM and back, in
// both polling and interrupt-driven modes; baselines must function too.

#include <gtest/gtest.h>

#include "src/driver/baselines.h"
#include "src/driver/hybrid.h"

namespace efeu::driver {
namespace {

HybridConfig MakeConfig(SplitPoint split, bool interrupt_driven) {
  HybridConfig config;
  config.split = split;
  config.interrupt_driven = interrupt_driven;
  config.capture_waveform = true;
  // Keep the model's write cycle short so write tests stay fast.
  config.eeprom.write_cycle_ns = 50000;
  return config;
}

class HybridSplitTest : public ::testing::TestWithParam<std::tuple<SplitPoint, bool>> {};

TEST_P(HybridSplitTest, WriteThenReadBack) {
  auto [split, interrupt_driven] = GetParam();
  HybridDriver driver(MakeConfig(split, interrupt_driven));
  std::vector<uint8_t> payload = {0x42, 0x43, 0x44, 0x45};
  ASSERT_TRUE(driver.Write(0x0123, payload));
  // The device enters its internal write cycle after the STOP; wait it out
  // by reading from a different page first (NACK-while-busy is retried by
  // polling the device through fresh operations).
  std::vector<uint8_t> data;
  // Spin until the device answers again.
  int attempts = 0;
  while (!driver.Read(0x0123, 4, &data) && attempts < 100) {
    ++attempts;
  }
  ASSERT_LT(attempts, 100);
  EXPECT_EQ(data, payload);
  // Memory content matches on the device side too.
  for (size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(driver.eeprom().MemoryAt(0x0123 + static_cast<int>(i)), payload[i]);
  }
}

TEST_P(HybridSplitTest, SequentialReadOfPreloadedData) {
  auto [split, interrupt_driven] = GetParam();
  HybridDriver driver(MakeConfig(split, interrupt_driven));
  for (int i = 0; i < 14; ++i) {
    driver.eeprom().Preload(0x0200 + i, static_cast<uint8_t>(0xA0 + i));
  }
  std::vector<uint8_t> data;
  ASSERT_TRUE(driver.Read(0x0200, 14, &data));
  ASSERT_EQ(data.size(), 14u);
  for (int i = 0; i < 14; ++i) {
    EXPECT_EQ(data[i], 0xA0 + i) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSplits, HybridSplitTest,
    ::testing::Combine(::testing::Values(SplitPoint::kElectrical, SplitPoint::kSymbol,
                                         SplitPoint::kByte, SplitPoint::kTransaction,
                                         SplitPoint::kEepDriver),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<std::tuple<SplitPoint, bool>>& param_info) {
      return std::string(SplitPointName(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) ? "_irq" : "_poll");
    });

TEST(BitBangBaseline, WriteThenReadBack) {
  TimingModel timing;
  sim::EepromConfig eeprom;
  eeprom.write_cycle_ns = 50000;
  BitBangDriver driver(timing, eeprom, /*capture_waveform=*/true);
  std::vector<uint8_t> payload = {0x11, 0x22, 0x33};
  ASSERT_TRUE(driver.Write(0x40, payload));
  std::vector<uint8_t> data;
  int attempts = 0;
  while (!driver.Read(0x40, 3, &data) && attempts < 100) {
    ++attempts;
  }
  ASSERT_LT(attempts, 100);
  EXPECT_EQ(data, payload);
}

TEST(XilinxIpBaseline, ReadsPreloadedData) {
  TimingModel timing;
  sim::EepromConfig eeprom;
  XilinxIpDriver driver(timing, eeprom, /*capture_waveform=*/true);
  for (int i = 0; i < 14; ++i) {
    driver.eeprom().Preload(i, static_cast<uint8_t>(0x30 + i));
  }
  std::vector<uint8_t> data;
  ASSERT_TRUE(driver.Read(0, 14, &data));
  ASSERT_EQ(data.size(), 14u);
  for (int i = 0; i < 14; ++i) {
    EXPECT_EQ(data[i], 0x30 + i);
  }
}

}  // namespace
}  // namespace efeu::driver
