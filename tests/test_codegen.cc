// Unit tests for the four backends: Promela, C (call graph/continuations),
// Verilog (FSM/handshake structure), and the MMIO-AXI Lite interface
// generator. These are structural checks over the generated text.

#include <gtest/gtest.h>

#include "src/codegen/c/c_backend.h"
#include "src/codegen/mmio/mmio_backend.h"
#include "src/codegen/promela/promela_backend.h"
#include "src/codegen/verilog/verilog_backend.h"
#include "src/i2c/stack.h"
#include "src/ir/compile.h"

namespace efeu {
namespace {

std::unique_ptr<ir::Compilation> Controller() {
  DiagnosticEngine diag;
  auto comp = i2c::CompileControllerStack(diag);
  EXPECT_NE(comp, nullptr) << diag.RenderAll();
  return comp;
}

// ---------------------------------------------------------------------------
// Promela backend
// ---------------------------------------------------------------------------

TEST(PromelaBackend, DeclaresMtypeAndChannels) {
  auto comp = Controller();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  EXPECT_NE(out.shared.find("mtype = {"), std::string::npos);
  EXPECT_NE(out.shared.find("CS_ACT_START"), std::string::npos);
  // Rendezvous channels of message typedefs.
  EXPECT_NE(out.shared.find("chan ch_CByte_CSymbol = [0] of { CByteToCSymbol };"),
            std::string::npos);
  EXPECT_NE(out.shared.find("typedef CByteToCSymbol {"), std::string::npos);
}

TEST(PromelaBackend, LayersBecomeParameterizedProctypes) {
  auto comp = Controller();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  ASSERT_TRUE(out.layers.count("CSymbol"));
  const std::string& text = out.layers.at("CSymbol");
  EXPECT_NE(text.find("proctype CSymbol(chan "), std::string::npos);
  // talk = send + receive on the rendezvous channels.
  EXPECT_NE(text.find("ch_CSymbol_Electrical ! "), std::string::npos);
  EXPECT_NE(text.find("ch_Electrical_CSymbol ? "), std::string::npos);
}

TEST(PromelaBackend, IfGetsElseSkip) {
  // A condition without else must get ': else -> skip' so the Promela if
  // cannot block where ESM would fall through (paper section 3.6).
  auto comp = Controller();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  const std::string& text = out.layers.at("CTransaction");
  EXPECT_NE(text.find(":: else -> skip"), std::string::npos);
}

TEST(PromelaBackend, WhileBecomesDoOd) {
  auto comp = Controller();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  const std::string& text = out.layers.at("CByte");
  EXPECT_NE(text.find("do"), std::string::npos);
  EXPECT_NE(text.find(":: else -> break"), std::string::npos);
  EXPECT_NE(text.find("od;"), std::string::npos);
}

TEST(PromelaBackend, InitRunsEveryLayer) {
  auto comp = Controller();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  for (const char* layer : {"CSymbol", "CByte", "CTransaction", "CEepDriver"}) {
    EXPECT_NE(out.init.find(std::string("run ") + layer + "("), std::string::npos) << layer;
  }
}

TEST(PromelaBackend, NondetBecomesChoiceIf) {
  DiagnosticEngine diag;
  ir::CompileOptions options;
  options.allow_nondet = true;
  auto comp = ir::Compile(
      "layer A; layer B; interface <A, B> { => { i32 v; }, <= { i32 r; } };",
      "void A() { int x; x = nondet(3); BToA r; r = ATalkB(x); }", diag, options);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  codegen::PromelaOutput out = codegen::GeneratePromela(*comp);
  const std::string& text = out.layers.at("A");
  EXPECT_NE(text.find(":: x = 0"), std::string::npos);
  EXPECT_NE(text.find(":: x = 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// C backend
// ---------------------------------------------------------------------------

TEST(CBackend, TopDownLibraryStructure) {
  auto comp = Controller();
  codegen::COutput out = codegen::GenerateC(*comp, "CEepDriver");
  // Entry function for the library (top-down driver library of Figure 5).
  EXPECT_NE(out.layers.at("CEepDriver").find("void CEepDriver_invoke(struct "),
            std::string::npos);
  // Forward edges become direct function calls into the child layer.
  EXPECT_NE(out.layers.at("CEepDriver").find("CTransaction_step("), std::string::npos);
  EXPECT_NE(out.layers.at("CTransaction").find("CByte_step("), std::string::npos);
  // Reverse edges become continuations (Figure 6).
  const std::string& byte_c = out.layers.at("CByte");
  EXPECT_NE(byte_c.find("_continuation_pos = "), std::string::npos);
  EXPECT_NE(byte_c.find("return;"), std::string::npos);
  EXPECT_NE(byte_c.find("_continuation_1:"), std::string::npos);
  EXPECT_NE(byte_c.find("switch (_continuation_pos)"), std::string::npos);
}

TEST(CBackend, BottomUpServerStructure) {
  // Entering at the bottom yields the event-loop style: CSymbol is invoked
  // with electrical levels and calls upward into CByte.
  auto comp = Controller();
  codegen::COutput out = codegen::GenerateC(*comp, "CSymbol");
  EXPECT_NE(out.layers.at("CSymbol").find("void CSymbol_invoke(struct ElectricalToCSymbol"),
            std::string::npos);
  EXPECT_NE(out.layers.at("CSymbol").find("CByte_step("), std::string::npos);
  // Now CByte's talks to CSymbol (its caller) are continuations instead.
  EXPECT_NE(out.layers.at("CByte").find("_continuation_pos"), std::string::npos);
}

TEST(CBackend, HeaderHasEnumsStructsPrototypes) {
  auto comp = Controller();
  codegen::COutput out = codegen::GenerateC(*comp, "CEepDriver");
  EXPECT_NE(out.header.find("enum CTAction {"), std::string::npos);
  EXPECT_NE(out.header.find("struct CWorldToCEepDriver {"), std::string::npos);
  EXPECT_NE(out.header.find("byte data[16];"), std::string::npos);
  EXPECT_NE(out.header.find("void CEepDriver_invoke(struct "), std::string::npos);
}

TEST(CBackend, LocalsAreStaticFsmState) {
  auto comp = Controller();
  codegen::COutput out = codegen::GenerateC(*comp, "CEepDriver");
  EXPECT_NE(out.layers.at("CTransaction").find("static byte rdata[16];"), std::string::npos);
  EXPECT_NE(out.layers.at("CTransaction").find("static int _continuation_pos;"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Verilog backend
// ---------------------------------------------------------------------------

TEST(VerilogBackend, ModulePerLayerWithHandshakePorts) {
  auto comp = Controller();
  codegen::VerilogOutput out = codegen::GenerateVerilog(*comp);
  const std::string& text = out.modules.at("CSymbol");
  EXPECT_NE(text.find("module CSymbol ("), std::string::npos);
  EXPECT_NE(text.find("input wire clk"), std::string::npos);
  EXPECT_NE(text.find("_valid,"), std::string::npos);
  EXPECT_NE(text.find("_ready"), std::string::npos);
  EXPECT_NE(text.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(text.find("case (state)"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogBackend, HandshakeCompletesOnRegisteredFlags) {
  auto comp = Controller();
  codegen::VerilogOutput out = codegen::GenerateVerilog(*comp);
  const std::string& text = out.modules.at("CSymbol");
  // Send completes only when both the registered valid and the sampled ready
  // are high at the same edge (no lost-transfer race).
  EXPECT_NE(text.find("_valid && "), std::string::npos);
  EXPECT_NE(text.find("_ready && "), std::string::npos);
}

TEST(VerilogBackend, RegistersCarryDeclaredWidths) {
  auto comp = Controller();
  codegen::VerilogOutput out = codegen::GenerateVerilog(*comp);
  const std::string& text = out.modules.at("CTransaction");
  EXPECT_NE(text.find("reg [7:0] rdata [0:15];"), std::string::npos);
  EXPECT_NE(text.find("reg [7:0] plen;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MMIO backend
// ---------------------------------------------------------------------------

TEST(MmioBackend, RegisterMapLayout) {
  auto comp = Controller();
  const esi::ChannelInfo* down = comp->system().FindChannel("CTransaction", "CByte");
  const esi::ChannelInfo* up = comp->system().FindChannel("CByte", "CTransaction");
  codegen::MmioOutput out = codegen::GenerateMmio("ByteBoundary", down, up);
  // Status at 0, then data, then the handshake flags at distinct offsets
  // (Figure 7).
  EXPECT_EQ(out.map.status_offset, 0);
  ASSERT_EQ(out.map.down_data.size(), 2u);
  EXPECT_EQ(out.map.down_data[0].offset, 4);
  EXPECT_GT(out.map.down_valid_offset, out.map.down_data.back().offset);
  EXPECT_EQ(out.map.down_ready_offset, out.map.down_valid_offset + 4);
  EXPECT_GT(out.map.up_valid_offset, out.map.up_data.back().offset);
  EXPECT_EQ(out.map.DownWriteWords(), 3);  // action + wdata + valid
  EXPECT_EQ(out.map.UpReadWords(), 2);     // res + rdata
}

TEST(MmioBackend, CDriverHasPollingAndIrqVariants) {
  auto comp = Controller();
  const esi::ChannelInfo* down = comp->system().FindChannel("CTransaction", "CByte");
  const esi::ChannelInfo* up = comp->system().FindChannel("CByte", "CTransaction");
  codegen::MmioOutput out = codegen::GenerateMmio("ByteBoundary", down, up);
  EXPECT_NE(out.c_driver.find("ByteBoundary_send("), std::string::npos);
  EXPECT_NE(out.c_driver.find("ByteBoundary_recv_poll("), std::string::npos);
  EXPECT_NE(out.c_driver.find("ByteBoundary_recv_irq("), std::string::npos);
  EXPECT_NE(out.c_driver.find("efeu_mmio_wait_irq"), std::string::npos);
}

TEST(MmioBackend, VhdlImplementsAutoReset) {
  auto comp = Controller();
  const esi::ChannelInfo* down = comp->system().FindChannel("CTransaction", "CByte");
  const esi::ChannelInfo* up = comp->system().FindChannel("CByte", "CTransaction");
  codegen::MmioOutput out = codegen::GenerateMmio("ByteBoundary", down, up);
  EXPECT_NE(out.vhdl.find("entity ByteBoundary_axil"), std::string::npos);
  EXPECT_NE(out.vhdl.find("r_down_valid <= '0';  -- consumed: auto-reset"), std::string::npos);
  EXPECT_NE(out.vhdl.find("s_axi_awaddr"), std::string::npos);
}

TEST(MmioBackend, ArrayFieldsOccupyOneWordPerElement) {
  auto comp = Controller();
  const esi::ChannelInfo* down = comp->system().FindChannel("CEepDriver", "CTransaction");
  const esi::ChannelInfo* up = comp->system().FindChannel("CTransaction", "CEepDriver");
  codegen::MmioOutput out = codegen::GenerateMmio("TxnBoundary", down, up);
  // down: action + addr + length + data[16] + valid = 20 words to write.
  EXPECT_EQ(out.map.DownWriteWords(), 20);
  EXPECT_EQ(out.map.UpReadWords(), 18);
}

}  // namespace
}  // namespace efeu
