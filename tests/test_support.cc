// Unit tests for the support utilities: text handling, line counting,
// diagnostics rendering, hashing, reserved words.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <thread>

#include "src/support/diagnostics.h"
#include "src/support/hash.h"
#include "src/support/reserved_words.h"
#include "src/support/source_buffer.h"
#include "src/support/state_table.h"
#include "src/support/text.h"

namespace efeu {
namespace {

TEST(Text, SplitLinesBasic) {
  auto lines = SplitLines("a\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "c");
}

TEST(Text, SplitLinesTrailingNewline) {
  auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
}

TEST(Text, SplitLinesEmpty) { EXPECT_TRUE(SplitLines("").empty()); }

TEST(Text, SplitLinesBlankLinesPreserved) {
  auto lines = SplitLines("a\n\nb");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(Text, TrimBothEnds) { EXPECT_EQ(Trim("  \thi \n"), "hi"); }

TEST(Text, TrimAllWhitespace) { EXPECT_EQ(Trim(" \t\r\n"), ""); }

TEST(Text, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(Text, CountCodeLinesSkipsBlanksAndComments) {
  const char* source =
      "// header comment\n"
      "\n"
      "int x;\n"
      "  // indented comment\n"
      "int y; // trailing comment counts as code\n";
  EXPECT_EQ(CountCodeLines(source), 2);
}

TEST(Text, CountCodeLinesBlockComments) {
  const char* source =
      "/* one\n"
      "   two\n"
      "   three */\n"
      "code;\n"
      "/* inline */ more;\n";
  EXPECT_EQ(CountCodeLines(source), 2);
}

TEST(Text, CountCodeLinesCustomLineComment) {
  EXPECT_EQ(CountCodeLines("-- vhdl comment\nsignal x;\n", "--"), 1);
}

TEST(Text, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(Text, CodeWriterIndentation) {
  CodeWriter writer;
  writer.Line("top {");
  {
    CodeWriter::Scope scope(writer);
    writer.Line("inner;");
  }
  writer.Line("}");
  EXPECT_EQ(writer.str(), "top {\n  inner;\n}\n");
}

TEST(Text, CodeWriterBlankNeverIndented) {
  CodeWriter writer;
  writer.Indent();
  writer.Blank();
  writer.Dedent();
  EXPECT_EQ(writer.str(), "\n");
}

TEST(SourceBuffer, LineAtMiddleLine) {
  SourceBuffer buffer("test", "first\nsecond\nthird");
  SourceLocation loc{2, 3, 8};  // inside "second"
  EXPECT_EQ(buffer.LineAt(loc), "second");
}

TEST(SourceBuffer, LineAtInvalid) {
  SourceBuffer buffer("test", "abc");
  EXPECT_EQ(buffer.LineAt(SourceLocation{}), "");
}

TEST(Diagnostics, RenderIncludesCaret) {
  SourceBuffer buffer("spec.esm", "int x = 3;");
  DiagnosticEngine diag;
  diag.Error(buffer, SourceLocation{1, 7, 6}, "no initialization");
  ASSERT_EQ(diag.error_count(), 1u);
  std::string rendered = diag.RenderAll();
  EXPECT_NE(rendered.find("spec.esm:1:7: error: no initialization"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
}

TEST(Diagnostics, WarningsDoNotCountAsErrors) {
  SourceBuffer buffer("b", "x");
  DiagnosticEngine diag;
  diag.Warning(buffer, SourceLocation{1, 1, 0}, "meh");
  EXPECT_FALSE(diag.HasErrors());
  EXPECT_EQ(diag.diagnostics().size(), 1u);
}

TEST(Hash, DistinctForDifferentData) {
  std::vector<int32_t> a = {1, 2, 3};
  std::vector<int32_t> b = {1, 2, 4};
  EXPECT_NE(HashWords(a), HashWords(b));
}

TEST(Hash, StableForSameData) {
  std::vector<int32_t> a = {5, 6};
  EXPECT_EQ(HashWords(a), HashWords(a));
}

// Avalanche: flipping a single input bit should flip close to half the 64
// output bits. A weak word mix (like byte-FNV folded to 64 bits) fails this
// badly for low-entropy int32 state vectors.
TEST(Hash, SingleBitAvalanche) {
  std::vector<int32_t> base = {7, -3, 1 << 20, 0, 42};
  uint64_t h0 = HashWords(base);
  for (size_t word = 0; word < base.size(); ++word) {
    for (int bit = 0; bit < 32; ++bit) {
      std::vector<int32_t> flipped = base;
      flipped[word] ^= (int32_t{1} << bit);
      uint64_t h1 = HashWords(flipped);
      int changed = std::popcount(h0 ^ h1);
      EXPECT_GE(changed, 16) << "word " << word << " bit " << bit;
      EXPECT_LE(changed, 48) << "word " << word << " bit " << bit;
    }
  }
}

TEST(Hash, LengthIsSignificant) {
  std::vector<int32_t> a = {0, 0};
  std::vector<int32_t> b = {0, 0, 0};
  EXPECT_NE(HashWords(a), HashWords(b));
}

TEST(StateTable, ClaimOnceThenDuplicate) {
  ShardedStateTable table;
  std::vector<int32_t> s1 = {1, 2, 3};
  std::vector<int32_t> s2 = {1, 2, 4};
  EXPECT_TRUE(table.WouldClaim(s1));
  EXPECT_TRUE(table.Claim(s1));
  EXPECT_FALSE(table.Claim(s1));
  EXPECT_FALSE(table.WouldClaim(s1));
  EXPECT_TRUE(table.Claim(s2));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.payload_bytes(), 2u * 3u * sizeof(int32_t));
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.WouldClaim(s1));
}

TEST(StateTable, FingerprintOnlyStoresEightBytesPerState) {
  StateTableOptions options;
  options.fingerprint_only = true;
  ShardedStateTable table(options);
  std::vector<int32_t> s1(64, 7);
  std::vector<int32_t> s2(64, 8);
  EXPECT_TRUE(table.Claim(s1));
  EXPECT_FALSE(table.Claim(s1));
  EXPECT_TRUE(table.Claim(s2));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.payload_bytes(), 16u);  // 8 bytes each, not 256.
}

TEST(StateTable, TrackProgressReadmitsLowerCredit) {
  StateTableOptions options;
  options.track_progress = true;
  ShardedStateTable table(options);
  std::vector<int32_t> s = {9, 9};
  EXPECT_TRUE(table.Claim(s, 5));
  EXPECT_FALSE(table.Claim(s, 5));   // Same credit: pruned.
  EXPECT_FALSE(table.Claim(s, 7));   // Higher credit: pruned.
  EXPECT_TRUE(table.WouldClaim(s, 3));
  EXPECT_TRUE(table.Claim(s, 3));    // Strictly lower: re-admitted.
  EXPECT_FALSE(table.Claim(s, 4));   // Minimum is now 3.
  EXPECT_EQ(table.size(), 1u);       // Still one distinct state.
}

TEST(StateTable, ConcurrentClaimsAdmitEachStateOnce) {
  StateTableOptions options;
  options.num_shards = 16;
  ShardedStateTable table(options);
  constexpr int kThreads = 8;
  constexpr int32_t kStates = 2000;
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &admitted] {
      for (int32_t i = 0; i < kStates; ++i) {
        std::vector<int32_t> state = {i, i * 3, i ^ 0x55};
        if (table.Claim(state)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // All threads race on the same 2000 states; each must be admitted to
  // exactly one of them.
  EXPECT_EQ(admitted.load(), kStates);
  EXPECT_EQ(table.size(), static_cast<uint64_t>(kStates));
}

TEST(ReservedWords, PromelaKeywords) {
  EXPECT_TRUE(IsPromelaReservedWord("len"));
  EXPECT_TRUE(IsPromelaReservedWord("timeout"));
  EXPECT_TRUE(IsPromelaReservedWord("active"));
  EXPECT_TRUE(IsPromelaReservedWord("mtype"));
  EXPECT_FALSE(IsPromelaReservedWord("plen"));
  EXPECT_FALSE(IsPromelaReservedWord("CSymbol"));
}

}  // namespace
}  // namespace efeu
