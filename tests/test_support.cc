// Unit tests for the support utilities: text handling, line counting,
// diagnostics rendering, hashing, reserved words.

#include <gtest/gtest.h>

#include "src/support/diagnostics.h"
#include "src/support/hash.h"
#include "src/support/reserved_words.h"
#include "src/support/source_buffer.h"
#include "src/support/text.h"

namespace efeu {
namespace {

TEST(Text, SplitLinesBasic) {
  auto lines = SplitLines("a\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "c");
}

TEST(Text, SplitLinesTrailingNewline) {
  auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
}

TEST(Text, SplitLinesEmpty) { EXPECT_TRUE(SplitLines("").empty()); }

TEST(Text, SplitLinesBlankLinesPreserved) {
  auto lines = SplitLines("a\n\nb");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(Text, TrimBothEnds) { EXPECT_EQ(Trim("  \thi \n"), "hi"); }

TEST(Text, TrimAllWhitespace) { EXPECT_EQ(Trim(" \t\r\n"), ""); }

TEST(Text, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(Text, CountCodeLinesSkipsBlanksAndComments) {
  const char* source =
      "// header comment\n"
      "\n"
      "int x;\n"
      "  // indented comment\n"
      "int y; // trailing comment counts as code\n";
  EXPECT_EQ(CountCodeLines(source), 2);
}

TEST(Text, CountCodeLinesBlockComments) {
  const char* source =
      "/* one\n"
      "   two\n"
      "   three */\n"
      "code;\n"
      "/* inline */ more;\n";
  EXPECT_EQ(CountCodeLines(source), 2);
}

TEST(Text, CountCodeLinesCustomLineComment) {
  EXPECT_EQ(CountCodeLines("-- vhdl comment\nsignal x;\n", "--"), 1);
}

TEST(Text, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(Text, CodeWriterIndentation) {
  CodeWriter writer;
  writer.Line("top {");
  {
    CodeWriter::Scope scope(writer);
    writer.Line("inner;");
  }
  writer.Line("}");
  EXPECT_EQ(writer.str(), "top {\n  inner;\n}\n");
}

TEST(Text, CodeWriterBlankNeverIndented) {
  CodeWriter writer;
  writer.Indent();
  writer.Blank();
  writer.Dedent();
  EXPECT_EQ(writer.str(), "\n");
}

TEST(SourceBuffer, LineAtMiddleLine) {
  SourceBuffer buffer("test", "first\nsecond\nthird");
  SourceLocation loc{2, 3, 8};  // inside "second"
  EXPECT_EQ(buffer.LineAt(loc), "second");
}

TEST(SourceBuffer, LineAtInvalid) {
  SourceBuffer buffer("test", "abc");
  EXPECT_EQ(buffer.LineAt(SourceLocation{}), "");
}

TEST(Diagnostics, RenderIncludesCaret) {
  SourceBuffer buffer("spec.esm", "int x = 3;");
  DiagnosticEngine diag;
  diag.Error(buffer, SourceLocation{1, 7, 6}, "no initialization");
  ASSERT_EQ(diag.error_count(), 1u);
  std::string rendered = diag.RenderAll();
  EXPECT_NE(rendered.find("spec.esm:1:7: error: no initialization"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
}

TEST(Diagnostics, WarningsDoNotCountAsErrors) {
  SourceBuffer buffer("b", "x");
  DiagnosticEngine diag;
  diag.Warning(buffer, SourceLocation{1, 1, 0}, "meh");
  EXPECT_FALSE(diag.HasErrors());
  EXPECT_EQ(diag.diagnostics().size(), 1u);
}

TEST(Hash, DistinctForDifferentData) {
  std::vector<int32_t> a = {1, 2, 3};
  std::vector<int32_t> b = {1, 2, 4};
  EXPECT_NE(HashWords(a), HashWords(b));
}

TEST(Hash, StableForSameData) {
  std::vector<int32_t> a = {5, 6};
  EXPECT_EQ(HashWords(a), HashWords(a));
}

TEST(ReservedWords, PromelaKeywords) {
  EXPECT_TRUE(IsPromelaReservedWord("len"));
  EXPECT_TRUE(IsPromelaReservedWord("timeout"));
  EXPECT_TRUE(IsPromelaReservedWord("active"));
  EXPECT_TRUE(IsPromelaReservedWord("mtype"));
  EXPECT_FALSE(IsPromelaReservedWord("plen"));
  EXPECT_FALSE(IsPromelaReservedWord("CSymbol"));
}

}  // namespace
}  // namespace efeu
