// Property-style parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across whole parameter grids — EEPROM transfer
// integrity for every length, arithmetic agreement between the VM and the
// RTL interpretation of the same IR, verifier determinism, and resource-
// estimate monotonicity.

#include <gtest/gtest.h>

#include "src/driver/hybrid.h"
#include "src/driver/resources.h"
#include "src/i2c/verify.h"
#include "src/ir/compile.h"
#include "src/rtl/rtl_module.h"
#include "src/rtl/system.h"
#include "src/vm/executor.h"

namespace efeu {
namespace {

// ---------------------------------------------------------------------------
// Property: every read length 1..14 moves the exact bytes (Xilinx-fast path
// would not exercise the generated stack; use the all-hardware split).
// ---------------------------------------------------------------------------

class ReadLengthProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReadLengthProperty, TransfersExactBytes) {
  int length = GetParam();
  driver::HybridConfig config;
  config.split = driver::SplitPoint::kEepDriver;
  driver::HybridDriver hybrid(config);
  for (int i = 0; i < length; ++i) {
    hybrid.eeprom().Preload(0x300 + i, static_cast<uint8_t>(0x80 + 7 * i));
  }
  std::vector<uint8_t> data;
  ASSERT_TRUE(hybrid.Read(0x300, length, &data));
  ASSERT_EQ(static_cast<int>(data.size()), length);
  for (int i = 0; i < length; ++i) {
    EXPECT_EQ(data[i], static_cast<uint8_t>(0x80 + 7 * i)) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ReadLengthProperty, ::testing::Range(1, 15));

// ---------------------------------------------------------------------------
// Property: the VM and the RTL simulator compute identical results for the
// same IR on a sweep of operand pairs (one engine is used for software
// layers, the other for hardware layers: they must agree bit-for-bit).
// ---------------------------------------------------------------------------

class VmRtlEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VmRtlEquivalence, SameResults) {
  auto [a, b] = GetParam();
  DiagnosticEngine diag;
  auto comp = ir::Compile(
      "layer A; layer B; interface <A, B> { => { i32 x; i32 y; }, <= { i32 r[8]; } };",
      R"esm(
void B() {
  AToB q;
  int out[8];
  byte u;
  end_init:
  q = BReadA();
  out[0] = q.x + q.y;
  out[1] = q.x - q.y;
  out[2] = q.x * q.y;
  out[3] = q.x & q.y;
  out[4] = q.x | q.y;
  out[5] = q.x ^ q.y;
  out[6] = (q.x < q.y) + ((q.x >> 2) << 1);
  u = q.x;
  out[7] = u + (q.y % 7);
  end_reply:
  q = BTalkA(out);
  goto end_reply;
}
)esm",
      diag);
  ASSERT_NE(comp, nullptr) << diag.RenderAll();
  const ir::Module* module = comp->FindModule("B");
  const esi::ChannelInfo* in = comp->system().FindChannel("A", "B");
  const esi::ChannelInfo* out = comp->system().FindChannel("B", "A");

  // VM execution.
  vm::IrExecutor executor(module);
  executor.Run();
  std::vector<int32_t> request = {a, b};
  executor.CompleteRecv(request);
  executor.Run();
  ASSERT_EQ(executor.state(), vm::RunState::kBlockedSend);
  std::vector<int32_t> vm_result(executor.pending_message().begin(),
                                 executor.pending_message().end());

  // RTL execution of the same module.
  rtl::RtlSystem system;
  rtl::RtlModule hardware(module, "B");
  rtl::HsWire* down = system.CreateWire(in->flat_size);
  rtl::HsWire* up = system.CreateWire(out->flat_size);
  hardware.BindPort(hardware.module().FindPort(in, false), down);
  hardware.BindPort(hardware.module().FindPort(out, true), up);
  system.AddComponent(&hardware);
  down->data = {a, b};
  down->valid = true;
  up->ready = true;
  int guard = 0;
  while (!up->valid && guard++ < 2000) {
    system.Tick();
  }
  ASSERT_TRUE(up->valid);
  EXPECT_EQ(up->data, vm_result);
}

INSTANTIATE_TEST_SUITE_P(
    OperandGrid, VmRtlEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 7, 200, -3, 100000),
                       ::testing::Values(1, 5, 255, -17, 4096)));

// ---------------------------------------------------------------------------
// Property: verification is deterministic — repeated runs of the same
// configuration explore the identical state space.
// ---------------------------------------------------------------------------

class VerifierDeterminism
    : public ::testing::TestWithParam<std::tuple<i2c::VerifyLevel, i2c::VerifyAbstraction>> {};

TEST_P(VerifierDeterminism, SameStateCountTwice) {
  auto [level, abstraction] = GetParam();
  i2c::VerifyConfig config;
  config.level = level;
  config.abstraction = abstraction;
  config.num_ops = 1;
  config.max_len = 1;
  uint64_t states[2];
  for (int round = 0; round < 2; ++round) {
    DiagnosticEngine diag;
    auto vs = i2c::BuildVerifier(config, diag);
    ASSERT_NE(vs, nullptr) << diag.RenderAll();
    check::CheckResult result = vs->system().Check();
    ASSERT_TRUE(result.ok);
    states[round] = result.states_stored;
  }
  EXPECT_EQ(states[0], states[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VerifierDeterminism,
    ::testing::Values(
        std::make_tuple(i2c::VerifyLevel::kByte, i2c::VerifyAbstraction::kNone),
        std::make_tuple(i2c::VerifyLevel::kByte, i2c::VerifyAbstraction::kSymbol),
        std::make_tuple(i2c::VerifyLevel::kTransaction, i2c::VerifyAbstraction::kByte),
        std::make_tuple(i2c::VerifyLevel::kEepDriver, i2c::VerifyAbstraction::kTransaction)));

// ---------------------------------------------------------------------------
// Property: payload growth only ever grows the verified state space.
// ---------------------------------------------------------------------------

TEST(VerifierMonotonicity, StatesGrowWithPayloadLength) {
  uint64_t previous = 0;
  for (int len = 1; len <= 4; ++len) {
    i2c::VerifyConfig config;
    config.level = i2c::VerifyLevel::kEepDriver;
    config.abstraction = i2c::VerifyAbstraction::kTransaction;
    config.num_ops = 2;
    config.max_len = len;
    DiagnosticEngine diag;
    auto vs = i2c::BuildVerifier(config, diag);
    ASSERT_NE(vs, nullptr);
    check::CheckResult result = vs->system().Check();
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.states_stored, previous) << "len " << len;
    previous = result.states_stored;
  }
}

TEST(VerifierMonotonicity, StatesGrowWithResponderCount) {
  uint64_t previous = 0;
  for (int eeproms = 1; eeproms <= 3; ++eeproms) {
    i2c::VerifyConfig config;
    config.level = i2c::VerifyLevel::kEepDriver;
    config.abstraction = i2c::VerifyAbstraction::kTransaction;
    config.num_ops = 2;
    config.max_len = 2;
    config.num_eeproms = eeproms;
    DiagnosticEngine diag;
    auto vs = i2c::BuildVerifier(config, diag);
    ASSERT_NE(vs, nullptr);
    check::CheckResult result = vs->system().Check();
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.states_stored, previous) << eeproms << " EEPROMs";
    previous = result.states_stored;
  }
}

// ---------------------------------------------------------------------------
// Property: resource estimates are positive and grow with the hardware set.
// ---------------------------------------------------------------------------

TEST(Resources, MonotoneAcrossSplits) {
  int previous_luts = 0;
  int previous_ffs = 0;
  for (driver::SplitPoint split :
       {driver::SplitPoint::kElectrical, driver::SplitPoint::kSymbol,
        driver::SplitPoint::kByte, driver::SplitPoint::kTransaction,
        driver::SplitPoint::kEepDriver}) {
    driver::HybridConfig config;
    config.split = split;
    driver::HybridDriver hybrid(config);
    driver::ResourceEstimate total;
    for (const ir::Module* module : hybrid.HardwareModules()) {
      total += driver::EstimateModule(*module);
    }
    total += driver::EstimateBusAdapter();
    total += driver::EstimateAxiLiteDriver(hybrid.down_words(), hybrid.up_words());
    EXPECT_GT(total.luts, previous_luts) << driver::SplitPointName(split);
    EXPECT_GT(total.ffs, previous_ffs) << driver::SplitPointName(split);
    previous_luts = total.luts;
    previous_ffs = total.ffs;
  }
}

}  // namespace
}  // namespace efeu
